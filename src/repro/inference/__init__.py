"""Exact inference kernels for discrete Bayesian networks.

``repro.inference`` is the factor-graph variable-elimination engine that
backs the general Markov Quilt Mechanism's hot path (and any other caller
that needs marginals or conditionals of a
:class:`~repro.distributions.bayesnet.DiscreteBayesianNetwork`):

* :class:`~repro.inference.factor.Factor` — an ndarray over named axes;
* :func:`~repro.inference.factor.contract` — einsum product + sum-out;
* :class:`~repro.inference.engine.InferenceEngine` — min-fill variable
  elimination with ``marginal_of`` / ``marginals_given`` /
  ``conditional_table`` / batched ``conditional_tables``;
* :func:`~repro.inference.engine.engine_for` — the per-process registry,
  memoized by network content fingerprint.

See ``docs/architecture.md`` ("ADR: einsum variable elimination") for the
design rationale and the exactness contract versus the enumeration oracle.
"""

from repro.inference.engine import (
    InferenceEngine,
    clear_engine_registry,
    engine_for,
    engine_registry_size,
    invalidate_engine,
)
from repro.inference.factor import Factor, contract

__all__ = [
    "Factor",
    "InferenceEngine",
    "clear_engine_registry",
    "contract",
    "engine_for",
    "engine_registry_size",
    "invalidate_engine",
]
