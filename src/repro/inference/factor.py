"""Factors over named discrete axes, contracted with ``np.einsum``.

A :class:`Factor` is an ndarray whose axes are labelled by variable names —
the representation the variable-elimination engine
(:mod:`repro.inference.engine`) manipulates.  A Bayesian-network CPD
``P(X | parents)`` is the factor ``Factor(parents + (X,), cpd_table)``; the
joint distribution is the (implicit, never materialized) product of all of
them.

The two primitives here are:

* :meth:`Factor.restrict` — condition on evidence by slicing one axis, and
* :func:`contract` — multiply a list of factors and sum out every variable
  not requested, in one ``np.einsum`` call (with a greedy contraction path),
  which is where the per-shard Python loops of the enumeration era became
  vectorized kernels.

``np.einsum``'s integer-subscript interface only admits labels in
``range(0, 52)``, so :func:`contract` maps the variables of each call to
dense local ids.  A single contraction therefore supports at most 52
*distinct* variables — far beyond any elimination bucket a sane network
produces; :func:`contract` raises :class:`~repro.exceptions.EnumerationError`
instead of failing cryptically if a caller exceeds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import EnumerationError, ValidationError

#: ``np.einsum`` integer subscripts must lie in ``range(0, 52)``.
MAX_EINSUM_LABELS = 52

#: Maximum operands per einsum call (numpy's NPY_MAXARGS is 32 on older
#: releases; stay safely below and fold longer products pairwise).
MAX_EINSUM_OPERANDS = 24


@dataclass(frozen=True)
class Factor:
    """An ndarray over named axes: ``table[i_1, ..., i_m]`` is the factor
    value at ``variables[0] = i_1, ..., variables[m-1] = i_m``.

    A factor with no variables is a scalar (0-d table).
    """

    variables: tuple[str, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=float)
        if table.ndim != len(self.variables):
            raise ValidationError(
                f"factor over {self.variables!r} needs a {len(self.variables)}-d "
                f"table, got shape {table.shape}"
            )
        if len(set(self.variables)) != len(self.variables):
            raise ValidationError(f"factor variables must be distinct, got {self.variables!r}")
        object.__setattr__(self, "table", table)

    @property
    def is_scalar(self) -> bool:
        """True when the factor carries no axes (a plain number)."""
        return not self.variables

    def scalar(self) -> float:
        """The value of a 0-d factor."""
        if self.variables:
            raise ValidationError(f"factor over {self.variables!r} is not a scalar")
        return float(self.table)

    def restrict(self, var: str, value: int) -> "Factor":
        """Condition on ``var = value``: slice that axis away.

        The caller is responsible for ``value`` being a valid state index —
        the engine validates evidence against node cardinalities before any
        factor is touched.
        """
        axis = self.variables.index(var)
        remaining = self.variables[:axis] + self.variables[axis + 1 :]
        return Factor(remaining, np.take(self.table, int(value), axis=axis))


def contract(factors: Sequence[Factor], keep: Sequence[str]) -> Factor:
    """Multiply ``factors`` and sum out every variable not in ``keep``.

    Returns a factor whose axes are exactly ``keep`` in the given order
    (variables in ``keep`` that appear in no input factor are disallowed —
    the engine guarantees every kept variable owns at least its own CPD
    factor).  The product-and-sum runs as one ``np.einsum`` with a greedy
    contraction path; calls with more than :data:`MAX_EINSUM_OPERANDS`
    operands are folded in chunks (each chunk keeps the variables any later
    factor or the output still needs, so no sum is taken too early).
    """
    keep = tuple(keep)
    factors = [f for f in factors if not f.is_scalar]
    scalar = 1.0
    if not factors:
        if keep:
            raise ValidationError(f"no factor mentions kept variables {keep!r}")
        return Factor((), np.asarray(scalar))
    present = set()
    for factor in factors:
        present.update(factor.variables)
    missing = [v for v in keep if v not in present]
    if missing:
        raise ValidationError(f"kept variables {missing!r} appear in no factor")
    while len(factors) > MAX_EINSUM_OPERANDS:
        chunk, rest = factors[:MAX_EINSUM_OPERANDS], factors[MAX_EINSUM_OPERANDS:]
        needed = set(keep)
        for factor in rest:
            needed.update(factor.variables)
        chunk_vars = set()
        for factor in chunk:
            chunk_vars.update(factor.variables)
        partial = _einsum(chunk, tuple(v for v in sorted(chunk_vars & needed)))
        factors = [partial] + rest
    return _einsum(factors, keep)


def _einsum(factors: Sequence[Factor], keep: tuple[str, ...]) -> Factor:
    """One einsum call: product of ``factors`` summed down to ``keep``."""
    labels: dict[str, int] = {}
    for factor in factors:
        for var in factor.variables:
            if var not in labels:
                labels[var] = len(labels)
    if len(labels) > MAX_EINSUM_LABELS:
        raise EnumerationError(
            f"contraction involves {len(labels)} distinct variables "
            f"(> {MAX_EINSUM_LABELS}, the np.einsum subscript limit); "
            "the elimination bucket is too wide for this engine"
        )
    operands: list = []
    for factor in factors:
        operands.append(factor.table)
        operands.append([labels[v] for v in factor.variables])
    operands.append([labels[v] for v in keep])
    table = np.einsum(*operands, optimize="greedy")
    return Factor(keep, np.asarray(table, dtype=float))
