"""Variable-elimination engine for discrete Bayesian networks.

The general Markov Quilt Mechanism (Algorithm 2) needs ``P(X_Q | X_i = a)``
for every quilt candidate and every secret value — at the seed this was
computed by enumerating the full joint (capped at
:data:`~repro.distributions.bayesnet.MAX_JOINT_SIZE` assignments) in Python
loops, once per conditioning value.  This engine replaces enumeration with
**sum-product variable elimination** over the network's CPD factors:

* each query touches only the factors relevant to it (evidence is sliced in
  before any multiplication),
* elimination follows a **min-fill** order over the moralized factor graph,
  memoized per query shape,
* all products and marginalizations run as ``np.einsum`` contractions
  (:func:`repro.inference.factor.contract`),
* :meth:`InferenceEngine.conditional_tables` answers the mechanism's inner
  loop *batched*: one ``(k_node, *target_shape)`` tensor holding
  ``P(targets | node = v)`` for every ``v`` at once, from a single
  elimination run — instead of one dict per conditioning value.

Cost scales with the induced width of the elimination order, not the joint
size, so networks far beyond the enumeration cap are exact-inference
feasible (a 2^24-assignment chain runs in milliseconds).

Engines are memoized per network **content fingerprint** through
:func:`engine_for` — the same keying discipline as the serving layer's
calibration cache — so repeated queries against equal networks (including a
pickled copy in a parallel-calibration worker: shards carry networks, and
the worker's registry rebuilds the engine plan on first use) share factors,
orders, and cached marginals.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.inference.factor import Factor, contract

#: Engines retained in the per-process registry (LRU by network fingerprint).
MAX_CACHED_ENGINES = 64

#: Batched conditional tensors retained per engine (LRU by query shape).
MAX_CACHED_TABLES = 128


class InferenceEngine:
    """Sum-product inference over one fixed network.

    The engine reads the network's structure and CPDs once at construction;
    it never mutates the network and is unaffected by (and unaware of) later
    ``add_node`` calls — :func:`engine_for` keys on the content fingerprint,
    so a grown network simply resolves to a fresh engine.
    """

    def __init__(self, network) -> None:
        self.nodes: tuple[str, ...] = tuple(network.nodes)
        self._states: dict[str, int] = {n: int(network.n_states(n)) for n in self.nodes}
        self._position: dict[str, int] = {n: i for i, n in enumerate(self.nodes)}
        self._parents: dict[str, tuple[str, ...]] = {
            n: tuple(network.parents(n)) for n in self.nodes
        }
        self._factors: tuple[Factor, ...] = tuple(
            Factor(self._parents[n] + (n,), network.cpd(n)) for n in self.nodes
        )
        self._factor_of: dict[str, Factor] = dict(zip(self.nodes, self._factors))
        self.fingerprint: str = network.fingerprint()
        self._order_cache: dict[tuple[frozenset, frozenset], tuple[str, ...]] = {}
        self._closure_cache: dict[frozenset, frozenset] = {}
        self._marginal_cache: dict[str, np.ndarray] = {}
        self._table_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def n_states(self, name: str) -> int:
        """Number of states of ``name``."""
        return self._states[name]

    def marginal_of(self, node: str) -> np.ndarray:
        """Marginal distribution of one node (cached).

        Matches the enumeration oracle's convention: the returned vector is
        the summed joint mass, not re-normalized (it sums to 1 up to float
        round-off because every CPD row does).
        """
        if node not in self._marginal_cache:
            self._check_nodes((node,))
            self._marginal_cache[node] = self._eliminate((node,), {}).table.copy()
        return self._marginal_cache[node].copy()

    def marginals_given(
        self, targets: Sequence[str], given: Mapping[str, int]
    ) -> np.ndarray:
        """``P(targets | given)`` as a tensor over the target axes.

        ``targets`` must be distinct and disjoint from ``given``.  Raises
        :class:`~repro.exceptions.ValidationError` when the conditioning
        event has zero probability — the same error (and message shape) the
        enumeration path produced.
        """
        targets = tuple(targets)
        if len(set(targets)) != len(targets):
            raise ValidationError(f"targets must be distinct, got {targets!r}")
        overlap = [t for t in targets if t in given]
        if overlap:
            raise ValidationError(
                f"targets {overlap!r} also appear in the evidence; "
                "condition on them via `given` only"
            )
        self._check_nodes(targets)
        self._check_evidence(given)
        joint = self._eliminate(targets, given).table
        total = float(joint.sum())
        if total <= 0.0:
            raise ValidationError(
                f"conditioning event {dict(given)!r} has zero probability"
            )
        return joint / total

    def conditional_table(
        self, targets: Sequence[str], given: Mapping[str, int]
    ) -> dict[tuple[int, ...], float]:
        """``P(targets = . | given)`` in the enumeration oracle's dict shape.

        Target names may repeat and may appear in ``given`` (their value is
        then pinned), exactly as the legacy
        ``DiscreteBayesianNetwork.conditional_table`` accepted; every
        evidence-consistent target combination is present as a key, including
        zero-probability ones.
        """
        targets = tuple(targets)
        free = tuple(dict.fromkeys(t for t in targets if t not in given))
        tensor = self.marginals_given(free, given)
        free_index = {name: axis for axis, name in enumerate(free)}
        table: dict[tuple[int, ...], float] = {}
        for idx in np.ndindex(tensor.shape):
            key = tuple(
                int(given[t]) if t in given else int(idx[free_index[t]]) for t in targets
            )
            table[key] = float(tensor[idx])
        return table

    def conditional_tables(self, targets: Sequence[str], node: str) -> np.ndarray:
        """Batched conditionals: ``out[v]`` is ``P(targets | node = v)``.

        One elimination run produces the whole ``(k_node, *target_shape)``
        tensor — the kernel behind :func:`repro.core.markov_quilt.
        max_influence`.  Rows for node values with zero marginal probability
        (conditional undefined) are filled with ``np.nan``; callers restrict
        to the supported values, as Definition 2.1 does.
        """
        targets = tuple(targets)
        if node in targets:
            raise ValidationError(f"conditioning node {node!r} cannot be a target")
        if len(set(targets)) != len(targets):
            raise ValidationError(f"targets must be distinct, got {targets!r}")
        key = (targets, node)
        cached = self._table_cache.get(key)
        if cached is not None:
            self._table_cache.move_to_end(key)
            return cached
        self._check_nodes(targets + (node,))
        joint = self._eliminate(targets + (node,), {}).table
        # Move the node axis first: joint axes are (targets..., node).
        joint = np.moveaxis(joint, -1, 0)
        totals = joint.reshape(joint.shape[0], -1).sum(axis=1)
        out = np.full(joint.shape, np.nan)
        positive = totals > 0.0
        out[positive] = joint[positive] / totals[positive].reshape(
            (-1,) + (1,) * (joint.ndim - 1)
        )
        # The cached tensor is handed out without copying (it can be large
        # and every consumer only reads it); freeze it so an accidental
        # caller mutation raises instead of corrupting the registry-shared
        # engine — a silently wrong conditional here would mis-calibrate
        # every later max_influence on an equal-content network.
        out.flags.writeable = False
        self._table_cache[key] = out
        while len(self._table_cache) > MAX_CACHED_TABLES:
            self._table_cache.popitem(last=False)
        return out

    # ------------------------------------------------------------------
    # Elimination core
    # ------------------------------------------------------------------
    def _check_nodes(self, names: Sequence[str]) -> None:
        unknown = [n for n in names if n not in self._states]
        if unknown:
            raise ValidationError(f"unknown node(s) {unknown!r}")

    def _check_evidence(self, given: Mapping[str, int]) -> None:
        self._check_nodes(tuple(given))
        for name, value in given.items():
            if not 0 <= int(value) < self._states[name]:
                # An out-of-range state has probability zero by definition —
                # surface it as the zero-probability conditioning error the
                # enumeration path raised for the same input.
                raise ValidationError(
                    f"conditioning event {dict(given)!r} has zero probability"
                )

    def _ancestral_closure(self, seed: frozenset) -> frozenset:
        """``seed`` plus every DAG ancestor of a seed node (memoized).

        Nodes outside this closure are *barren* for a query over ``seed``:
        marginalizing them out contributes an exact factor of 1.  Pruning
        them before elimination means a query's float result depends only
        on the CPDs of the closure — so an edit anywhere else in the network
        leaves the query's answer **bit-identical**, which is the invariant
        the temporal incremental-recalibration path relies on.
        """
        cached = self._closure_cache.get(seed)
        if cached is not None:
            return cached
        closure = set(seed)
        frontier = list(seed)
        while frontier:
            for parent in self._parents[frontier.pop()]:
                if parent not in closure:
                    closure.add(parent)
                    frontier.append(parent)
        result = frozenset(closure)
        self._closure_cache[seed] = result
        return result

    def _eliminate(self, keep: tuple[str, ...], given: Mapping[str, int]) -> Factor:
        """Unnormalized ``sum_{others} P(X) * 1[given]`` over the kept axes."""
        evidence = {name: int(value) for name, value in given.items()}
        relevant = self._ancestral_closure(frozenset(keep) | frozenset(evidence))
        factors: list[Factor] = []
        scalar = 1.0
        for name in self.nodes:
            if name not in relevant:
                continue  # barren: sums out to exactly 1
            factor = self._factor_of[name]
            for var in factor.variables:
                if var in evidence:
                    factor = factor.restrict(var, evidence[var])
            if factor.is_scalar:
                scalar *= factor.scalar()
            else:
                factors.append(factor)
        for var in self._elimination_order(
            frozenset(keep), frozenset(evidence), factors
        ):
            bucket = [f for f in factors if var in f.variables]
            if not bucket:
                continue
            factors = [f for f in factors if var not in f.variables]
            scope: set[str] = set()
            for factor in bucket:
                scope.update(factor.variables)
            scope.discard(var)
            reduced = contract(bucket, sorted(scope, key=self._position.__getitem__))
            if reduced.is_scalar:
                scalar *= reduced.scalar()
            else:
                factors.append(reduced)
        if not factors:
            return Factor((), np.asarray(scalar))
        result = contract(factors, keep)
        return Factor(keep, result.table * scalar)

    def _elimination_order(
        self, keep: frozenset, removed: frozenset, factors: Sequence[Factor]
    ) -> tuple[str, ...]:
        """Min-fill order over the moralized factor graph (memoized).

        ``removed`` is the evidence set (its variables are sliced out of
        every scope before elimination, so they never appear in the graph).
        ``factors`` is the barren-pruned, evidence-restricted factor list —
        the memo key stays ``(keep, removed)`` because the pruned set is a
        pure function of it.  Ties break by current degree, then by
        topological position, making the order — and therefore the exact
        float reassociation of every contraction — deterministic across
        runs and processes.
        """
        cache_key = (keep, removed)
        cached = self._order_cache.get(cache_key)
        if cached is not None:
            return cached
        neighbors: dict[str, set[str]] = {}
        for factor in factors:
            scope = [v for v in factor.variables if v not in removed]
            for var in scope:
                neighbors.setdefault(var, set()).update(scope)
        for var, adjacent in neighbors.items():
            adjacent.discard(var)
        to_eliminate = set(neighbors) - keep

        def fill_in(var: str) -> int:
            adjacent = tuple(neighbors[var])
            return sum(
                1
                for i, a in enumerate(adjacent)
                for b in adjacent[i + 1 :]
                if b not in neighbors[a]
            )

        order: list[str] = []
        while to_eliminate:
            best = min(
                to_eliminate,
                key=lambda v: (fill_in(v), len(neighbors[v]), self._position[v]),
            )
            adjacent = neighbors.pop(best)
            for a in adjacent:
                neighbors[a].discard(best)
                neighbors[a].update(adjacent - {a})
            to_eliminate.remove(best)
            order.append(best)
        result = tuple(order)
        self._order_cache[cache_key] = result
        return result


#: Per-process engine registry, LRU by network content fingerprint.
_ENGINES: "OrderedDict[str, InferenceEngine]" = OrderedDict()


def engine_for(network) -> InferenceEngine:
    """The (memoized) engine for a network.

    Keyed by :meth:`~repro.distributions.bayesnet.DiscreteBayesianNetwork.
    fingerprint`, so numerically identical networks — including copies that
    crossed a process boundary inside a calibration shard — share one engine
    with all its cached factors, elimination orders, and marginals.  A
    network mutated after use re-fingerprints and resolves to a new engine.
    """
    fingerprint = network.fingerprint()
    engine = _ENGINES.get(fingerprint)
    if engine is None:
        engine = InferenceEngine(network)
        _ENGINES[fingerprint] = engine
        while len(_ENGINES) > MAX_CACHED_ENGINES:
            _ENGINES.popitem(last=False)
    else:
        _ENGINES.move_to_end(fingerprint)
    return engine


def invalidate_engine(fingerprint: str) -> bool:
    """Drop one cached engine by fingerprint; ``True`` if it was present.

    The LRU bound alone keeps the registry finite, but an *editing* workload
    (``repro.distributions.temporal``) mints a fresh fingerprint per edit and
    never queries the old one again — without eager invalidation each edit
    pins a dead engine plan (factors, orders, cached marginals) until 64
    later networks happen to push it out.  Eviction is always safe: an
    equal-content network simply rebuilds its engine on next use.
    """
    return _ENGINES.pop(fingerprint, None) is not None


def engine_registry_size() -> int:
    """Number of engines currently pinned by the registry."""
    return len(_ENGINES)


def clear_engine_registry() -> None:
    """Drop every cached engine (test isolation helper)."""
    _ENGINES.clear()
