"""Durable tenant-ledger stores: one atomic check-then-record per tenant.

A ledger store persists, per tenant, the full accounting state the service
enforces budgets with (:meth:`~repro.core.accounting.BaseAccountant.
state_dict` — including Rényi running curves — plus outstanding
reservations).  Its one non-negotiable primitive is :meth:`LedgerStore.
transact`: an **exclusive read-modify-write transaction** on one tenant's
state, atomic across threads *and* processes.  Every budget decision the
service makes happens inside one — which is exactly why a thundering herd
of concurrent sessions can never jointly over-commit a tenant budget: two
admissions cannot interleave between the read and the write.

This is deliberately *not* the merge-on-write discipline of
:class:`~repro.serving.cache.JSONFileCache`.  Cache entries are
content-keyed and deterministic, so concurrent writers can be reconciled
after the fact by merging; a budget ledger is a counter — merging two
states that both spent the last epsilon would mint budget out of thin air.
Ledger writers therefore hold the exclusion for the whole
read-decide-write cycle, never just the write.

Three backends:

* :class:`InMemoryLedgerStore` — process-local; the default for tests and
  single-process serving without durability.
* :class:`JSONFileLedgerStore` — one JSON file, transactions serialized by
  an :class:`~repro.utils.filelock.InterProcessLock` on a ``<path>.lock``
  sidecar (flock where available, portable ``O_EXCL`` fallback elsewhere),
  writes through an atomic temp-file replace.  Zero-dependency and
  human-inspectable; every transaction rewrites the whole file, so it suits
  tens of tenants, not thousands.
* :class:`SQLiteLedgerStore` — a WAL-mode SQLite database, one row per
  tenant, each transaction a ``BEGIN IMMEDIATE`` cycle so concurrent
  writers queue on SQLite's own cross-process locking.  The natural
  production default.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import tempfile
import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ValidationError
from repro.faults import fire
from repro.utils.filelock import InterProcessLock

from typing import Callable


class LedgerTransaction:
    """One tenant's state inside an open transaction.

    ``state`` is the tenant's current persisted state (``None`` when the
    tenant does not exist yet).  Handlers mutate it in place or assign a
    new dict; on clean exit from :meth:`LedgerStore.transact` the final
    value is persisted atomically.  Raising inside the ``with`` block
    abandons every change — refusals (budget exhausted, reservation
    conflicts) are exceptions, so a refused transaction leaves the ledger
    bit-for-bit where it was.
    """

    def __init__(self, tenant: str, state: "dict[str, Any] | None") -> None:
        self.tenant = tenant
        self.state = state


class LedgerStore(ABC):
    """Durable per-tenant ledger state with exclusive transactions."""

    @abstractmethod
    def transact(self, tenant: str) -> "contextlib.AbstractContextManager[LedgerTransaction]":
        """Open an exclusive read-modify-write transaction on one tenant.

        The returned context manager yields a :class:`LedgerTransaction`;
        no other transaction on the same store — in this thread, another
        thread, or another process — can interleave between the read and
        the commit.  On exception nothing is written.
        """

    @abstractmethod
    def peek(self, tenant: str) -> "dict[str, Any] | None":
        """A read-only snapshot of one tenant's state (``None`` if absent).

        May run lock-free: it sees some committed state, never a torn one,
        but a concurrent transaction may commit right after.  Never use a
        peek to make a budget decision — that is what :meth:`transact` is
        for.
        """

    @abstractmethod
    def tenants(self) -> list[str]:
        """Sorted names of every tenant with persisted state."""

    def run(self, tenant: str, fn: "Callable[[LedgerTransaction], Any]") -> Any:
        """Run ``fn`` inside one :meth:`transact` cycle; return its result.

        The functional twin of :meth:`transact` — and the retryable one:
        because the whole read-decide-write cycle is a closure, a wrapper
        (:class:`~repro.service.retry.RetryingLedgerStore`) can re-run it
        after a transient failure, which a ``with`` block's inline body
        cannot be.  ``fn`` must therefore tolerate re-execution from a
        fresh read; ledger handlers do (their effects are pure functions
        of the state they are handed, and the exactly-once protections —
        idempotency keys, reservation ids — live *in* that state).
        """
        with self.transact(tenant) as txn:
            return fn(txn)

    def close(self) -> None:
        """Release backend resources (connections, handles).  Idempotent."""


class InMemoryLedgerStore(LedgerStore):
    """Process-local store: a dict behind one lock.

    The transaction lock is global (not per tenant) — contention is
    irrelevant at in-memory speeds and a single lock cannot deadlock.
    States are deep-copied through JSON on the way in and out, so a
    handler mutating a peeked state cannot corrupt the store and the
    store behaves byte-for-byte like its durable siblings.
    """

    def __init__(self) -> None:
        self._states: dict[str, str] = {}  # tenant -> JSON text
        self._lock = threading.RLock()

    @contextlib.contextmanager
    def transact(self, tenant: str) -> Iterator[LedgerTransaction]:
        with self._lock:
            fire("ledger.memory.read", tenant=tenant)
            raw = self._states.get(tenant)
            txn = LedgerTransaction(tenant, None if raw is None else json.loads(raw))
            yield txn
            if txn.state is not None:
                fire("ledger.memory.commit", tenant=tenant)
                self._states[tenant] = json.dumps(txn.state)
                fire("ledger.memory.commit.after", tenant=tenant)

    def peek(self, tenant: str) -> "dict[str, Any] | None":
        with self._lock:
            raw = self._states.get(tenant)
            return None if raw is None else json.loads(raw)

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._states)


class JSONFileLedgerStore(LedgerStore):
    """One JSON file ``{tenant: state}`` with lock-held transactions.

    Unlike the calibration cache's merge-on-write, the inter-process lock
    is held for the **entire** read-modify-write cycle (ledger states do
    not merge; see the module docstring), and the in-memory copy is never
    trusted across transactions — every transaction re-reads the file, so
    any number of processes sharing the path see one serialized history.
    The commit is an atomic temp-file ``os.replace``, so a crash mid-write
    leaves the previous state intact.
    """

    def __init__(self, path: str | Path, *, lock_timeout: float = 60.0) -> None:
        self.path = Path(path)
        self._lock_path = Path(str(self.path) + ".lock")
        self._lock_timeout = float(lock_timeout)
        self._thread_lock = threading.RLock()
        self._closed = False

    @property
    def lock_timeout(self) -> float:
        return self._lock_timeout

    def _read(self) -> dict[str, Any]:
        try:
            text = self.path.read_text()
        except OSError:
            return {}
        try:
            loaded = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"ledger store file {self.path} is corrupt: {error}"
            ) from error
        if not isinstance(loaded, dict):
            raise ValidationError(
                f"ledger store file {self.path} must hold a JSON object"
            )
        return loaded

    def _write(self, states: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Any temp file matching our prefix belongs to a *dead* transaction
        # (live writers hold the inter-process lock we are inside), so a
        # crash between mkstemp and os.replace never accumulates garbage
        # past the next successful commit.
        self._sweep_orphans()
        handle, temp_path = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(states, stream)
            fire("ledger.json.commit.replace", path=str(self.path))
            os.replace(temp_path, self.path)
        except BaseException as error:
            # A *simulated crash* must leave the temp file behind exactly
            # as a power loss would — the orphan sweep above is what cleans
            # it up; unlinking here would untest that path.
            if not getattr(error, "simulates_crash", False):
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
            raise

    def _sweep_orphans(self) -> None:
        """Unlink temp files crashed writers left beside the store (called
        with the inter-process lock held)."""
        for orphan in self.path.parent.glob(f"{self.path.name}*.tmp"):
            with contextlib.suppress(OSError):
                orphan.unlink()

    @contextlib.contextmanager
    def transact(self, tenant: str) -> Iterator[LedgerTransaction]:
        with self._thread_lock:
            if self._closed:
                raise ValidationError(
                    f"ledger store {self.path} is closed; open a new store"
                )
            fire("ledger.json.read", tenant=tenant, path=str(self.path))
            with InterProcessLock(
                self._lock_path, timeout=self._lock_timeout
            ):
                states = self._read()
                txn = LedgerTransaction(tenant, states.get(tenant))
                yield txn
                if txn.state is not None:
                    fire("ledger.json.commit", tenant=tenant, path=str(self.path))
                    states[tenant] = txn.state
                    self._write(states)
                    fire(
                        "ledger.json.commit.after",
                        tenant=tenant,
                        path=str(self.path),
                    )

    def close(self) -> None:
        """Refuse new transactions; in-flight ones finish normally.

        Safe with a transaction in flight: callers on other threads are
        waited out (the thread lock serializes us behind them), a caller on
        *this* thread (the lock is reentrant) keeps its already-admitted
        transaction, and either way the per-transaction
        :class:`~repro.utils.filelock.InterProcessLock` is released by its
        own ``with`` block — never stranding the lock sidecar for other
        processes to wait out.  Idempotent.
        """
        with self._thread_lock:
            self._closed = True

    def peek(self, tenant: str) -> "dict[str, Any] | None":
        # Lock-free: os.replace is atomic, so this sees a committed file.
        return self._read().get(tenant)

    def tenants(self) -> list[str]:
        return sorted(self._read())


class SQLiteLedgerStore(LedgerStore):
    """A WAL-mode SQLite database, one state row per tenant.

    ``BEGIN IMMEDIATE`` takes SQLite's write lock at transaction *start*
    (not first write), so the whole read-decide-write cycle is exclusive
    across processes; concurrent writers queue on ``busy_timeout`` instead
    of failing.  WAL mode keeps readers unblocked and makes single-row
    commits cheap.  One connection per store instance, serialized by a
    thread lock — open one store per thread or share one; both are safe.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS tenant_ledgers (
            tenant TEXT PRIMARY KEY,
            state  TEXT NOT NULL
        )
    """

    def __init__(
        self, path: str | Path, *, busy_timeout_s: float = 60.0
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._thread_lock = threading.RLock()
        self._closed = False
        self._close_pending = False
        self._txn_depth = 0
        self.busy_timeout_s = float(busy_timeout_s)
        # Autocommit mode: transaction boundaries are explicit BEGIN/COMMIT,
        # never implicitly opened by the driver mid-cycle.
        self._conn = sqlite3.connect(
            str(self.path), isolation_level=None, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}")
        self._conn.execute(self._SCHEMA)

    @contextlib.contextmanager
    def transact(self, tenant: str) -> Iterator[LedgerTransaction]:
        with self._thread_lock:
            if self._closed or self._close_pending:
                raise ValidationError(
                    f"ledger store {self.path} is closed; open a new store"
                )
            self._txn_depth += 1
            try:
                fire("ledger.sqlite.begin", tenant=tenant, path=str(self.path))
                self._conn.execute("BEGIN IMMEDIATE")
                committed = False
                try:
                    row = self._conn.execute(
                        "SELECT state FROM tenant_ledgers WHERE tenant = ?",
                        (tenant,),
                    ).fetchone()
                    txn = LedgerTransaction(
                        tenant, None if row is None else json.loads(row[0])
                    )
                    yield txn
                    if txn.state is not None:
                        fire(
                            "ledger.sqlite.commit",
                            tenant=tenant,
                            path=str(self.path),
                        )
                        self._conn.execute(
                            "INSERT INTO tenant_ledgers (tenant, state) VALUES (?, ?) "
                            "ON CONFLICT (tenant) DO UPDATE SET state = excluded.state",
                            (tenant, json.dumps(txn.state)),
                        )
                    self._conn.execute("COMMIT")
                    committed = True
                    fire(
                        "ledger.sqlite.commit.after",
                        tenant=tenant,
                        path=str(self.path),
                    )
                except BaseException:
                    # Roll back only an open transaction: a post-COMMIT
                    # fault (or a close()d connection) must not shadow the
                    # real error with "no transaction is active".
                    if not committed:
                        with contextlib.suppress(sqlite3.Error):
                            self._conn.execute("ROLLBACK")
                    raise
            finally:
                self._txn_depth -= 1
                if self._close_pending and self._txn_depth == 0:
                    self._close_pending = False
                    self._closed = True
                    self._conn.close()

    def peek(self, tenant: str) -> "dict[str, Any] | None":
        with self._thread_lock:
            row = self._conn.execute(
                "SELECT state FROM tenant_ledgers WHERE tenant = ?", (tenant,)
            ).fetchone()
            return None if row is None else json.loads(row[0])

    def tenants(self) -> list[str]:
        with self._thread_lock:
            rows = self._conn.execute(
                "SELECT tenant FROM tenant_ledgers ORDER BY tenant"
            ).fetchall()
            return [row[0] for row in rows]

    def close(self) -> None:
        """Close the connection; idempotent and safe mid-transact.

        A close racing an in-flight transaction on another thread would
        normally poison that transaction's COMMIT/ROLLBACK with
        ``ProgrammingError: Cannot operate on a closed database``.  Instead
        the close is *deferred*: new transactions are refused immediately,
        and the connection is actually closed by the last in-flight
        transaction on its way out (see :meth:`transact`'s ``finally``).
        """
        with self._thread_lock:
            if self._closed or self._close_pending:
                return
            if self._txn_depth > 0:
                self._close_pending = True
                return
            self._closed = True
            self._conn.close()


def ledger_store_from_path(path: "str | Path | None") -> LedgerStore:
    """A store for a path: SQLite for ``.sqlite``/``.sqlite3``/``.db``
    suffixes, the JSON file store otherwise, in-memory for ``None``."""
    if path is None:
        return InMemoryLedgerStore()
    path = Path(path)
    if path.suffix.lower() in (".sqlite", ".sqlite3", ".db"):
        return SQLiteLedgerStore(path)
    return JSONFileLedgerStore(path)
