"""Transient-failure retry for ledger stores: bounded backoff with jitter.

A durable store under load throws *transient* errors — the JSON store's
lock sidecar times out (:class:`~repro.utils.filelock.LockTimeoutError`),
SQLite reports ``database is locked`` past its busy timeout, a network
filesystem hiccups an ``EIO`` — none of which mean the operation cannot
succeed, only that it could not succeed *now*.  Surfacing every one as a
503 wastes work the client will simply retry over HTTP (more load, more
contention); hanging forever violates request deadlines.

:class:`RetryingLedgerStore` wraps any
:class:`~repro.service.stores.LedgerStore` and retries the **acquisition
phase** of a transaction (entering :meth:`~repro.service.stores.
LedgerStore.transact` — where lock timeouts and busy errors live) plus
whole :meth:`~repro.service.stores.LedgerStore.run` cycles and reads,
under a :class:`RetryPolicy`: bounded exponential backoff, full seeded
jitter (so a thundering herd decorrelates deterministically in tests),
and a hard wall-clock deadline.

What is deliberately **not** retried:

* Domain refusals (:class:`~repro.exceptions.ReproError` except the lock
  timeout) — a budget refusal does not become grantable by retrying.
* A *commit* failure inside an open ``with store.transact(...)`` block —
  the caller's inline body cannot be re-run by a wrapper.  Commit-phase
  retry requires the closure form (:meth:`~repro.service.stores.
  LedgerStore.run`), and re-running a cycle whose commit may or may not
  have landed is only exactly-once when the handler is idempotent — which
  is precisely what the ledger's idempotency keys provide (see
  ``docs/architecture.md``).
"""

from __future__ import annotations

import contextlib
import random
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.exceptions import ReproError, ValidationError
from repro.faults import fire
from repro.service.stores import LedgerStore, LedgerTransaction
from repro.utils.filelock import LockTimeoutError


def is_transient_store_error(error: BaseException) -> bool:
    """The default retry predicate.

    Transient: lock-sidecar timeouts, SQLite busy/locked, and plain
    ``OSError`` (EIO and friends — the disk blipped, not the logic).
    Never transient: every other :class:`~repro.exceptions.ReproError`
    (refusals and validation are deterministic) and anything else.
    """
    if isinstance(error, LockTimeoutError):
        return True
    if isinstance(error, ReproError):
        return False
    if isinstance(error, sqlite3.OperationalError):
        text = str(error).lower()
        return "locked" in text or "busy" in text
    return isinstance(error, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with full jitter, under a deadline.

    Attempt ``k`` (0-based) sleeps ``uniform(0, min(max_delay, base_delay
    * 2**k))`` — "full jitter", which decorrelates competing retriers
    better than fixed fractions.  Retrying stops when ``max_attempts``
    cycles failed or the next sleep would cross ``deadline`` seconds of
    total elapsed time, whichever is sooner; the last error is re-raised
    unchanged (with its original type, status mapping, and payload).

    ``seed`` makes the jitter sequence reproducible; ``sleep`` is
    injectable so tests assert schedules without waiting them out.
    """

    max_attempts: int = 5
    base_delay: float = 0.01
    max_delay: float = 0.5
    deadline: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValidationError(
                "need 0 <= base_delay <= max_delay, got "
                f"base_delay={self.base_delay}, max_delay={self.max_delay}"
            )
        if self.deadline <= 0:
            raise ValidationError(
                f"deadline must be positive, got {self.deadline}"
            )

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """The jittered sleep before retry number ``attempt`` (1-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return rng.uniform(0.0, ceiling)


class RetryingLedgerStore(LedgerStore):
    """A :class:`~repro.service.stores.LedgerStore` that absorbs transient
    backend errors with seeded backoff.

    Parameters
    ----------
    inner:
        The real store.  Exposed as :attr:`inner` for introspection.
    policy:
        The :class:`RetryPolicy`; defaults are serving-sane (5 attempts,
        10 ms base, 0.5 s cap, 10 s deadline).
    classify:
        Predicate deciding which errors are transient; defaults to
        :func:`is_transient_store_error`.
    sleep:
        Injectable sleep (tests pass a recorder).
    """

    def __init__(
        self,
        inner: LedgerStore,
        policy: "RetryPolicy | None" = None,
        *,
        classify: "Callable[[BaseException], bool]" = is_transient_store_error,
        sleep: "Callable[[float], None]" = time.sleep,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.classify = classify
        self._sleep = sleep
        self._rng = random.Random(self.policy.seed)
        self.retries = 0  # total sleeps taken, for diagnostics

    # -- the retry loop ----------------------------------------------------
    def _attempt(self, op: "Callable[[], Any]") -> Any:
        started = time.monotonic()
        attempt = 0
        while True:
            try:
                return op()
            except BaseException as error:
                attempt += 1
                if not self.classify(error):
                    raise
                if attempt >= self.policy.max_attempts:
                    raise
                delay = self.policy.delay_for(attempt, self._rng)
                if time.monotonic() - started + delay > self.policy.deadline:
                    raise
                fire("store.retry", attempt=attempt, delay=delay)
                self.retries += 1
                self._sleep(delay)

    # -- LedgerStore -------------------------------------------------------
    @contextlib.contextmanager
    def transact(self, tenant: str) -> Iterator[LedgerTransaction]:
        # Retry only the enter (read/lock) phase; the caller's inline body
        # and the commit run once.  Exactly-once across commit failures is
        # the idempotency layer's job, not this one's.
        entered: "list[Any]" = []

        def enter() -> LedgerTransaction:
            manager = self.inner.transact(tenant)
            txn = manager.__enter__()
            entered.append(manager)
            return txn

        txn = self._attempt(enter)
        manager = entered[-1]
        try:
            yield txn
        except BaseException:
            import sys

            if not manager.__exit__(*sys.exc_info()):
                raise
        else:
            manager.__exit__(None, None, None)

    def run(self, tenant: str, fn: "Callable[[LedgerTransaction], Any]") -> Any:
        # The closure form retries the WHOLE cycle — enter, fn, commit.
        return self._attempt(lambda: self.inner.run(tenant, fn))

    def peek(self, tenant: str) -> "dict[str, Any] | None":
        return self._attempt(lambda: self.inner.peek(tenant))

    def tenants(self) -> list[str]:
        return self._attempt(lambda: self.inner.tenants())

    def close(self) -> None:
        self.inner.close()


def with_retries(
    store: LedgerStore, policy: "RetryPolicy | None" = None
) -> LedgerStore:
    """Wrap ``store`` in retries unless it already is (idempotent)."""
    if isinstance(store, RetryingLedgerStore):
        return store
    return RetryingLedgerStore(store, policy)
