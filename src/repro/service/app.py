"""The multi-tenant privacy service: ASGI app over durable tenant ledgers.

:class:`PrivacyService` hosts named *workloads* (a mechanism plus the data
and query it answers) behind three families of endpoints — ``calibrate``,
``release``, and ``stream`` — with every release debited against the
calling tenant's durable :class:`~repro.service.ledger.TenantLedger`:

========  ===================================  =================================
Method    Path                                 Action
========  ===================================  =================================
GET       ``/health``                          liveness + inventory
GET       ``/workloads``                       hosted workloads
GET       ``/tenants``                         known tenants
POST      ``/tenants/{tenant}``                create a tenant ledger
GET       ``/tenants/{tenant}``                ledger snapshot
POST      ``/tenants/{tenant}/calibrate``      warm a workload's calibration
POST      ``/tenants/{tenant}/release``        n budgeted releases (atomic)
POST      ``/tenants/{tenant}/stream``         open a streaming session
POST      ``/sessions/{session_id}/next``      draw a chunk from a session
DELETE    ``/sessions/{session_id}``           close; return unused budget
========  ===================================  =================================

**Admission is reservation-style** (see :mod:`repro.service.ledger`): a
``release`` call reserves its whole sub-budget in one store transaction,
serves, then returns any unused remainder; a ``stream`` session holds its
reservation until closed.  Tenant budgets therefore hold across concurrent
requests, concurrent *service processes* sharing one store, and restarts —
the store is the source of truth, rehydrated per transaction.

**Engines are shared, budgets are not.**  One warm
:class:`~repro.serving.engine.PrivacyEngine` per workload owns the
calibration cache; each request gets a
:meth:`~repro.serving.engine.PrivacyEngine.with_accountant` clone bound to
a :class:`~repro.service.ledger.ReservationAccountant`, so tenants share
the expensive (tenant-agnostic) calibrations while every debit lands in
their own ledger.

**Errors are structured.**  Every refusal maps an exception's
``http_status`` — 400 validation, 404 unknown tenant/session, 409
reservation conflicts, 410 dead reservations, 429 budget exhausted (with
the exact ``spent`` / ``remaining`` ledger in the body), 503 lock
timeouts.  Handlers never return partial work: a refused release records
and returns nothing.

The app itself (:class:`AsgiApp`) is a dependency-free ASGI 3 callable —
serve it with :mod:`repro.service.server` (stdlib asyncio), any external
ASGI server, or in-process via :class:`repro.service.testing.TestClient`.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import math
import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.composition import CompositionAccountant
from repro.core.laplace import Mechanism, PrivateRelease
from repro.core.queries import Query
from repro.exceptions import (
    ReproError,
    UnknownSessionError,
    ValidationError,
)
from repro.faults import current as current_injector
from repro.faults import fire
from repro.serving.engine import PrivacyEngine
from repro.service.ledger import ReservationAccountant, TenantLedger
from repro.service.retry import RetryPolicy, RetryingLedgerStore, with_retries
from repro.service.schemas import (
    get_bool,
    get_float,
    get_int,
    get_str,
    require_object,
)
from repro.service.stores import LedgerStore, ledger_store_from_path

#: Per-request cap on batched/streamed chunk sizes — a service-side sanity
#: bound (memory, response size), not a privacy parameter.
MAX_RELEASES_PER_CALL = 100_000


@dataclass(frozen=True)
class Workload:
    """One hosted release workload: a mechanism answering one query.

    The service is a *release* front-end: data and query are fixed
    server-side (the sensitive data never rides in on requests), clients
    choose a workload by name and spend their tenant budget on it.
    """

    name: str
    mechanism: Mechanism
    data: Any
    query: Query
    description: str = ""


def default_workloads() -> "dict[str, Workload]":
    """The built-in demo workloads: Laplace and Gaussian MQM over the
    hub-and-spoke network used by the ``accounting`` CLI demo.

    Small enough to calibrate in milliseconds, real enough to exercise the
    full quilt search, both noise kinds, and (for the Gaussian) the
    mechanism-supplied Rényi curve through the durable ledger.
    """
    from repro.core import GaussianMarkovQuiltMechanism, MarkovQuiltMechanism
    from repro.core.queries import CountQuery
    from repro.distributions.structured import hub_and_spoke_network

    network = hub_and_spoke_network(3, 2)
    data = np.ones(len(network.nodes))
    query = CountQuery()
    return {
        "hub-laplace": Workload(
            "hub-laplace",
            MarkovQuiltMechanism([network], 0.5),
            data,
            query,
            "Laplace MQM, hub_and_spoke(3, 2), CountQuery, epsilon=0.5",
        ),
        "hub-gaussian": Workload(
            "hub-gaussian",
            GaussianMarkovQuiltMechanism([network], 0.5, delta=1e-5),
            data,
            query,
            "Gaussian MQM (supplies its own RDP curve), epsilon=0.5",
        ),
    }


@dataclass
class _StreamState:
    """Server-side state of one open streaming session."""

    session: Any  # ReleaseSession
    ledger: TenantLedger
    accountant: ReservationAccountant
    workload: str
    lock: threading.Lock = field(default_factory=threading.Lock)


class PrivacyService:
    """The service core: workloads, tenant ledgers, streaming sessions.

    All handlers are synchronous (store transactions are blocking file or
    SQLite work); :class:`AsgiApp` runs them on worker threads.

    Parameters
    ----------
    store:
        A :class:`~repro.service.stores.LedgerStore`, a path (``.sqlite`` /
        ``.db`` suffixes select SQLite, anything else the JSON file store),
        or ``None`` for in-memory (no durability; tests and demos).
    workloads:
        Hosted workloads by name; defaults to :func:`default_workloads`.
    reservation_ttl:
        Abandoned-reservation TTL forwarded to every
        :class:`~repro.service.ledger.TenantLedger`.
    retry_policy:
        Transient store errors (lock timeouts, SQLite busy, EIO) are
        absorbed by wrapping the store in a
        :class:`~repro.service.retry.RetryingLedgerStore` — pass a
        :class:`~repro.service.retry.RetryPolicy` to tune, ``None`` for
        defaults, or ``False`` to use the store raw.
    recover_on_start:
        Run :meth:`recover` at construction so a restarted replica
        reconciles stranded state (expired reservations of a killed
        predecessor) before serving its first request.
    """

    def __init__(
        self,
        store: "LedgerStore | str | None" = None,
        *,
        workloads: "Mapping[str, Workload] | None" = None,
        reservation_ttl: "float | None" = 3600.0,
        retry_policy: "RetryPolicy | None | bool" = None,
        recover_on_start: bool = True,
    ) -> None:
        if isinstance(store, LedgerStore):
            self.store = store
        else:
            self.store = ledger_store_from_path(store)
        if retry_policy is not False:
            policy = retry_policy if isinstance(retry_policy, RetryPolicy) else None
            self.store = with_retries(self.store, policy)
        self.workloads = dict(
            workloads if workloads is not None else default_workloads()
        )
        self.reservation_ttl = reservation_ttl
        # One warm engine per workload: owns the shared calibration cache;
        # requests get with_accountant() clones against tenant ledgers.
        self._engines = {
            name: PrivacyEngine(w.mechanism) for name, w in self.workloads.items()
        }
        self._streams: dict[str, _StreamState] = {}
        self._streams_lock = threading.Lock()
        if recover_on_start:
            self.recover()

    def close(self) -> None:
        with self._streams_lock:
            states = list(self._streams.values())
            self._streams.clear()
        for state in states:
            state.session.close()
            state.ledger.release_unused(state.accountant.reservation_id)
        self.store.close()

    # -- plumbing ---------------------------------------------------------
    def ledger(self, tenant: str) -> TenantLedger:
        return TenantLedger(
            self.store, tenant, reservation_ttl=self.reservation_ttl
        )

    def _workload(self, name: "str | None") -> tuple[Workload, PrivacyEngine]:
        if name is None:
            raise ValidationError("missing required field 'workload'")
        try:
            return self.workloads[name], self._engines[name]
        except KeyError:
            raise ValidationError(
                f"unknown workload {name!r}; hosted: {sorted(self.workloads)}"
            ) from None

    @staticmethod
    def _encode_release(release: PrivateRelease) -> "float | list":
        value = release.value
        if isinstance(value, np.ndarray):
            return [float(v) for v in value.tolist()]
        return float(value)

    # -- handlers ---------------------------------------------------------
    def health(self) -> dict:
        store = self.store
        if isinstance(store, RetryingLedgerStore):
            store = store.inner
        return {
            "status": "ok",
            "store": type(store).__name__,
            "workloads": sorted(self.workloads),
            "tenants": self.store.tenants(),
            "open_sessions": len(self._streams),
        }

    def list_workloads(self) -> dict:
        return {
            "workloads": [
                {
                    "name": w.name,
                    "mechanism": w.mechanism.name,
                    "epsilon": w.mechanism.epsilon,
                    "output_dim": w.query.output_dim,
                    "description": w.description,
                }
                for w in self.workloads.values()
            ]
        }

    def list_tenants(self) -> dict:
        return {"tenants": self.store.tenants()}

    def create_tenant(self, tenant: str, body: Mapping) -> dict:
        body = require_object(body)
        return self.ledger(tenant).create(
            budget=get_float(body, "budget", positive=True),
            accountant=get_str(
                body,
                "accountant",
                default="linear",
                choices=("linear", "renyi", "sliding"),
            ),
            delta=get_float(body, "delta", default=1e-6, positive=True),
            window_span=get_int(body, "window_span", default=1, minimum=1),
            audit_trail=get_bool(body, "audit_trail", default=True),
        )

    def get_tenant(self, tenant: str) -> dict:
        return self.ledger(tenant).snapshot()

    def advance_window(self, tenant: str, body: Mapping) -> dict:
        """Advance a sliding-window tenant's logical clock (the windowed
        reclamation sweep): expired windows' epsilon returns to the budget
        exactly, and stale reservations are reclaimed in the same
        transaction.  Only valid for tenants created with
        ``accountant="sliding"``."""
        body = require_object(body)
        window = get_int(body, "window", minimum=0)
        steps = get_int(body, "steps", default=1, minimum=1)
        return self.ledger(tenant).advance_window(steps=steps, window=window)

    def calibrate(self, tenant: str, body: Mapping) -> dict:
        """Warm one workload's calibration.  Budget-free (calibration never
        reads record values), but still tenant-scoped: unknown tenants are
        refused before any work happens."""
        body = require_object(body)
        ledger = self.ledger(tenant)
        ledger.snapshot()  # 404 for unknown tenants
        workload, engine = self._workload(get_str(body, "workload"))
        calibration = engine.calibrate(workload.query, workload.data)
        return {
            "tenant": tenant,
            "workload": workload.name,
            "mechanism": workload.mechanism.name,
            "epsilon": workload.mechanism.epsilon,
            "noise_scale": calibration.scale,
            "cache": {
                "hits": engine.cache.hits,
                "misses": engine.cache.misses,
                "entries": len(engine.cache),
            },
        }

    def release(self, tenant: str, body: Mapping) -> dict:
        """``n`` budgeted releases, atomically admitted and exactly-once
        debited.

        The crash-safe lifecycle: **reserve** the sub-budget (one store
        transaction), **draw** every noisy value locally against the
        reservation envelope (nothing durable, nothing visible to the
        client yet), then **commit** values and debit in one final store
        transaction, and return the unused remainder.  A crash anywhere
        before the commit debits nothing and releases nothing; a crash
        after the commit lost only the response — which is what the
        optional ``idempotency_key`` recovers: the key and the response
        payload are persisted *with* the debit, so a retried request
        replays the original values instead of spending again (the reply
        carries ``"replayed": true``).
        """
        body = require_object(body)
        workload, engine = self._workload(get_str(body, "workload"))
        n = get_int(body, "n", default=1, minimum=1, maximum=MAX_RELEASES_PER_CALL)
        seed = get_int(body, "seed")
        idempotency_key = get_str(body, "idempotency_key")
        ledger = self.ledger(tenant)
        if idempotency_key is not None:
            # Fast path: an obvious replay skips reserve/draw entirely.
            # Not authoritative (consume_idempotent re-checks in its own
            # transaction); just saves work on the common retry.
            stored = ledger.idempotent_response(idempotency_key)
            if stored is not None:
                return {**stored, "ledger": ledger.snapshot(), "replayed": True}
        reservation = ledger.reserve(n, workload.mechanism.epsilon)
        replayed = False
        try:
            # Draw against a local accountant bounded by the reservation
            # envelope — no durable writes between reserve and commit.
            local = CompositionAccountant(
                budget=reservation.epsilon_total, audit_trail=False
            )
            clone = engine.with_accountant(local, tenant=tenant, rng=seed)
            releases = clone.release_repeated(workload.data, workload.query, n)
            response = {
                "tenant": tenant,
                "workload": workload.name,
                "mechanism": workload.mechanism.name,
                "epsilon_each": workload.mechanism.epsilon,
                "n": len(releases),
                "values": [self._encode_release(r) for r in releases],
                "noise_scale": releases[0].noise_scale,
            }
            if idempotency_key is not None:
                response["idempotency_key"] = idempotency_key
                response, replayed = ledger.consume_idempotent(
                    reservation.reservation_id,
                    len(releases),
                    epsilon=workload.mechanism.epsilon,
                    idempotency_key=idempotency_key,
                    response=response,
                    mechanism=workload.mechanism.name,
                    quilt_signature=clone._quilt_signature(),
                    rdp_curve=clone._rdp_curve(),
                )
            else:
                ledger.consume(
                    reservation.reservation_id,
                    len(releases),
                    epsilon=workload.mechanism.epsilon,
                    mechanism=workload.mechanism.name,
                    quilt_signature=clone._quilt_signature(),
                    rdp_curve=clone._rdp_curve(),
                )
        finally:
            ledger.release_unused(reservation.reservation_id)
        return {**response, "ledger": ledger.snapshot(), "replayed": replayed}

    def open_stream(self, tenant: str, body: Mapping) -> dict:
        """Open a streaming session holding a reservation of ``n_reserved``
        releases; draw with ``POST /sessions/{id}/next``, close with
        ``DELETE /sessions/{id}`` to return the remainder."""
        body = require_object(body)
        workload, engine = self._workload(get_str(body, "workload"))
        n_reserved = get_int(
            body,
            "n_reserved",
            required=True,
            minimum=1,
            maximum=MAX_RELEASES_PER_CALL,
        )
        seed = get_int(body, "seed")
        block_size = get_int(body, "block_size", default=64, minimum=1)
        ledger = self.ledger(tenant)
        reservation = ledger.reserve(n_reserved, workload.mechanism.epsilon)
        try:
            accountant = ReservationAccountant(ledger, reservation)
            clone = engine.with_accountant(accountant, tenant=tenant, rng=seed)
            session = clone.stream(
                workload.data,
                workload.query,
                block_size=block_size,
                max_releases=n_reserved,
            )
        except BaseException:
            ledger.release_unused(reservation.reservation_id)
            raise
        session_id = uuid.uuid4().hex
        with self._streams_lock:
            self._streams[session_id] = _StreamState(
                session, ledger, accountant, workload.name
            )
        return {
            "session_id": session_id,
            "tenant": tenant,
            "workload": workload.name,
            "epsilon_each": workload.mechanism.epsilon,
            "n_reserved": reservation.n_reserved,
            "reservation_id": reservation.reservation_id,
        }

    def _stream_state(self, session_id: str) -> _StreamState:
        with self._streams_lock:
            state = self._streams.get(session_id)
        if state is None:
            raise UnknownSessionError(
                f"no open streaming session {session_id!r} (closed, or "
                f"opened by another service process)"
            )
        return state

    def stream_next(self, session_id: str, body: Mapping) -> dict:
        body = require_object(body)
        n = get_int(body, "n", default=1, minimum=1, maximum=MAX_RELEASES_PER_CALL)
        state = self._stream_state(session_id)
        with state.lock:
            chunk = state.session.take(n)
            return {
                "session_id": session_id,
                "values": [self._encode_release(r) for r in chunk],
                "n": len(chunk),
                "n_yielded": state.session.n_yielded,
                "n_remaining": state.accountant.n_remaining,
                "exhausted": state.session.exhausted,
            }

    def close_stream(self, session_id: str) -> dict:
        with self._streams_lock:
            state = self._streams.pop(session_id, None)
        if state is None:
            raise UnknownSessionError(
                f"no open streaming session {session_id!r} (closed, or "
                f"opened by another service process)"
            )
        with state.lock:
            stats = state.session.close()
            returned = state.ledger.release_unused(
                state.accountant.reservation_id
            )
        return {
            "session_id": session_id,
            "n_yielded": stats["n_yielded"],
            "n_returned": returned,
            "ledger": state.ledger.snapshot(),
        }

    # -- recovery and observability ---------------------------------------
    def recover(self) -> dict:
        """The recovery sweep: reconcile every tenant's ledger.

        Runs :meth:`~repro.service.ledger.TenantLedger.sweep` per tenant —
        reclaiming reservations stranded by killed workers once past their
        TTL, pruning stale idempotency records — and reports totals.
        Invoked at service construction and via ``POST /admin/recover``;
        safe to run any time (sweeping is idempotent and only ever
        *returns* unspent budget).
        """
        tenants: dict[str, dict] = {}
        for tenant in self.store.tenants():
            tenants[tenant] = self.ledger(tenant).sweep()
        return {
            "tenants": tenants,
            "expired_reservations": sum(
                t["expired_reservations"] for t in tenants.values()
            ),
            "reclaimed_releases": sum(
                t["reclaimed_releases"] for t in tenants.values()
            ),
            "pruned_idempotency_records": sum(
                t["pruned_idempotency_records"] for t in tenants.values()
            ),
        }

    def faults_status(self) -> dict:
        """What the process-global fault injector (if any) has been doing —
        chaos-run observability, not a production surface.

        Beyond the per-rule counters, reports chaos *coverage*: which
        points from the canonical registry (:mod:`repro.faults.points`)
        have never fired this process, and which armed rule patterns
        match no declared point at all (a typo'd plan arms forever and
        proves nothing).
        """
        from repro.faults import never_fired

        injector = current_injector()
        if injector is None:
            return {"installed": False}
        return {
            "installed": True,
            **injector.stats(),
            "coverage": {
                "never_fired": list(never_fired(injector.fired_per_point())),
                "unmatched_rules": list(injector.unmatched_rules()),
            },
        }


# --------------------------------------------------------------------------
# The ASGI layer: routing, JSON codec, exception -> status mapping.
# --------------------------------------------------------------------------

_Route = tuple[str, tuple[str, ...], Callable[..., Any], bool]


class AsgiApp:
    """A dependency-free ASGI 3 application over a :class:`PrivacyService`.

    Handlers are synchronous; each request runs on a worker thread from
    the app's own pool, so slow store transactions never stall the event
    loop.  The pool is sized to ``max_concurrency`` — one worker per
    admission slot — so an *admitted* request always has a worker and
    never sits queued behind the pool (queued work is where a deadline
    could cancel it before it starts and strand its slot).  Route
    patterns use ``{name}`` placeholders matched one path segment each.

    Two resource guards make overload explicit instead of cascading:

    * **Deadlines** — each handler gets ``request_timeout`` seconds of
      wall clock (``asyncio.wait_for``); past it the client receives a
      503 ``RequestTimeout`` with ``Retry-After`` (the worker thread runs
      to completion in the background — its store transaction stays
      atomic — but its slot stays held, which is exactly the
      backpressure a stuck store should exert).
    * **Backpressure** — at most ``max_concurrency`` handlers in flight;
      beyond that, requests are refused *immediately* with a 503
      ``ServiceSaturated`` + ``Retry-After`` instead of queueing into a
      latency spiral.  The semaphore is a :class:`threading` one on
      purpose: request loops may differ (the test client runs one loop
      per request), the thread pool is the actual shared resource.
    """

    def __init__(
        self,
        service: PrivacyService,
        *,
        request_timeout: "float | None" = 30.0,
        max_concurrency: "int | None" = 64,
    ) -> None:
        if request_timeout is not None and request_timeout <= 0:
            raise ValidationError(
                f"request_timeout must be positive or None, got {request_timeout}"
            )
        if max_concurrency is not None and max_concurrency < 1:
            raise ValidationError(
                f"max_concurrency must be >= 1 or None, got {max_concurrency}"
            )
        self.service = service
        self.request_timeout = request_timeout
        self.max_concurrency = max_concurrency
        self._slots = (
            threading.BoundedSemaphore(max_concurrency)
            if max_concurrency is not None
            else None
        )
        # One worker per slot: admitted work can never be queued behind
        # the pool, where a deadline could cancel it before it starts.
        self._executor = (
            concurrent.futures.ThreadPoolExecutor(
                max_workers=max_concurrency,
                thread_name_prefix="repro-service",
            )
            if max_concurrency is not None
            else None
        )
        s = service
        # (method, pattern segments, handler, takes_body)
        self._routes: list[_Route] = [
            ("GET", ("health",), s.health, False),
            ("GET", ("workloads",), s.list_workloads, False),
            ("GET", ("tenants",), s.list_tenants, False),
            ("POST", ("tenants", "{tenant}"), s.create_tenant, True),
            ("GET", ("tenants", "{tenant}"), s.get_tenant, False),
            ("POST", ("tenants", "{tenant}", "advance-window"), s.advance_window, True),
            ("POST", ("tenants", "{tenant}", "calibrate"), s.calibrate, True),
            ("POST", ("tenants", "{tenant}", "release"), s.release, True),
            ("POST", ("tenants", "{tenant}", "stream"), s.open_stream, True),
            ("POST", ("sessions", "{session_id}", "next"), s.stream_next, True),
            ("DELETE", ("sessions", "{session_id}"), s.close_stream, False),
            ("POST", ("admin", "recover"), s.recover, False),
            ("GET", ("admin", "faults"), s.faults_status, False),
        ]

    # -- routing ----------------------------------------------------------
    def _match(
        self, method: str, path: str
    ) -> "tuple[Callable[..., Any], list[str], bool] | None":
        segments = tuple(p for p in path.split("/") if p)
        saw_path = False
        for route_method, pattern, handler, takes_body in self._routes:
            if len(pattern) != len(segments):
                continue
            params: list[str] = []
            for expected, actual in zip(pattern, segments):
                if expected.startswith("{"):
                    params.append(actual)
                elif expected != actual:
                    break
            else:
                saw_path = True
                if route_method == method:
                    return handler, params, takes_body
        if saw_path:
            raise _MethodNotAllowed(method, path)
        return None

    # -- ASGI entry point --------------------------------------------------
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise NotImplementedError(f"unsupported scope {scope['type']!r}")
        status, payload, extra_headers = await self._dispatch(scope, receive)
        body = json.dumps(payload).encode()
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", b"application/json"),
                    (b"content-length", str(len(body)).encode()),
                    *extra_headers,
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})

    async def _dispatch(
        self, scope, receive
    ) -> "tuple[int, Any, list[tuple[bytes, bytes]]]":
        method = scope["method"].upper()
        path = scope["path"]
        try:
            match = self._match(method, path)
            if match is None:
                return (
                    404,
                    {
                        "error": "NotFound",
                        "message": f"no route for {method} {path}",
                    },
                    [],
                )
            handler, params, takes_body = match
            if takes_body:
                raw = await _read_body(receive)
                if raw:
                    try:
                        body = json.loads(raw)
                    except json.JSONDecodeError as error:
                        raise ValidationError(
                            f"request body is not valid JSON: {error}"
                        ) from error
                else:
                    body = {}
                args = (*params, body)
            else:
                await _read_body(receive)  # drain
                args = tuple(params)
            if self._slots is not None and not self._slots.acquire(blocking=False):
                return (
                    503,
                    {
                        "error": "ServiceSaturated",
                        "message": (
                            f"{self.max_concurrency} requests already in "
                            f"flight; retry shortly"
                        ),
                        "retry_after": 1,
                    },
                    [(b"retry-after", b"1")],
                )

            def guarded(*call_args: Any) -> Any:
                # Runs on the worker thread: the slot is held for as long
                # as the handler actually occupies the pool — including
                # after a deadline abandons the awaiting coroutine.
                try:
                    fire("app.request", method=method, path=path)
                    return handler(*call_args)
                finally:
                    if self._slots is not None:
                        self._slots.release()

            if self._executor is not None:
                try:
                    work = self._executor.submit(guarded, *args)
                except RuntimeError:
                    # Pool shutting down: the work never ran, so guarded's
                    # finally cannot give the slot back — do it here.
                    if self._slots is not None:
                        self._slots.release()
                    raise
                # Exactly one of two paths releases the slot: guarded's
                # finally (the work ran), or this callback (the work was
                # cancelled before a worker picked it up, so guarded never
                # began — a future that ran is never in the cancelled
                # state, and a cancelled one never runs).
                work.add_done_callback(self._release_if_never_started)
                coroutine = asyncio.wrap_future(work)
            else:
                coroutine = asyncio.to_thread(guarded, *args)
            if self.request_timeout is not None:
                result = await asyncio.wait_for(coroutine, self.request_timeout)
            else:
                result = await coroutine
            return 200, result, []
        except _MethodNotAllowed as error:
            return 405, {"error": "MethodNotAllowed", "message": str(error)}, []
        # ReproError before asyncio.TimeoutError: LockTimeoutError subclasses
        # both (TimeoutError IS asyncio.TimeoutError on 3.11+), and a store
        # lock timeout must map to its own 503, not the deadline's.
        except ReproError as error:
            headers: list[tuple[bytes, bytes]] = []
            if error.retry_after is not None:
                seconds = max(1, math.ceil(error.retry_after))
                headers.append((b"retry-after", str(seconds).encode()))
            return error.http_status, error.payload(), headers
        except asyncio.TimeoutError:
            retry_after = max(1, math.ceil(self.request_timeout or 1))
            return (
                503,
                {
                    "error": "RequestTimeout",
                    "message": (
                        f"request exceeded the {self.request_timeout}s "
                        f"deadline; it was abandoned (any ledger transaction "
                        f"still commits or rolls back atomically)"
                    ),
                    "retry_after": retry_after,
                },
                [(b"retry-after", str(retry_after).encode())],
            )
        except Exception as error:
            # A real bug, not a refusal: fail the request, not the server.
            # (SimulatedCrashError is a BaseException and deliberately NOT
            # caught — a simulated crash must escape like a real one.)
            return (
                500,
                {
                    "error": "InternalError",
                    "message": f"{type(error).__name__}: {error}",
                },
                [],
            )

    def _release_if_never_started(self, work: "concurrent.futures.Future") -> None:
        if work.cancelled() and self._slots is not None:
            self._slots.release()

    def close(self) -> None:
        """Shut down the app-owned worker pool (idempotent).

        Queued-but-unstarted work is cancelled (its slots come back via
        the done-callback); running handlers finish on their threads.
        Does *not* close the underlying service — that stays the owner's
        call, as in the lifespan shutdown path.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.close()
                self.service.close()
                await send({"type": "lifespan.shutdown.complete"})
                return


class _MethodNotAllowed(Exception):
    def __init__(self, method: str, path: str) -> None:
        super().__init__(f"method {method} not allowed on {path}")


async def _read_body(receive) -> bytes:
    chunks: list[bytes] = []
    while True:
        message = await receive()
        if message["type"] != "http.request":  # pragma: no cover - disconnect
            break
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            break
    return b"".join(chunks)


def create_app(
    store: "LedgerStore | str | None" = None,
    *,
    workloads: "Mapping[str, Workload] | None" = None,
    reservation_ttl: "float | None" = 3600.0,
    retry_policy: "RetryPolicy | None | bool" = None,
    recover_on_start: bool = True,
    request_timeout: "float | None" = 30.0,
    max_concurrency: "int | None" = 64,
) -> AsgiApp:
    """Build the service and its ASGI app in one call (the usual entry
    point for servers and tests)."""
    return AsgiApp(
        PrivacyService(
            store,
            workloads=workloads,
            reservation_ttl=reservation_ttl,
            retry_policy=retry_policy,
            recover_on_start=recover_on_start,
        ),
        request_timeout=request_timeout,
        max_concurrency=max_concurrency,
    )
