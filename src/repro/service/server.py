"""A minimal stdlib asyncio HTTP/1.1 server for the service's ASGI app.

The environment ships no ASGI server (no uvicorn/hypercorn), so this is
the smallest correct bridge: parse one request per connection (request
line, headers, ``Content-Length`` body), translate it to an ASGI ``http``
scope, run the app, write the response, close.  ``Connection: close``
semantics keep the parser trivial; the service's throughput profile is
dominated by store transactions and noise draws, not connection reuse.

Not exposed to hostile networks by default — bind to localhost and put a
real reverse proxy in front for anything else.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.service.app import AsgiApp

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024
#: Cap on how much of a refused request's unsent body we read-and-discard
#: before closing (see :func:`_refuse`); a hair above the body limit so a
#: just-oversized upload is fully drained.
_MAX_DISCARD_BYTES = 2 * _MAX_BODY_BYTES
#: How long to wait for a slow client's trailing body bytes while draining.
_DISCARD_TIMEOUT_S = 0.5
#: How long the client gets to deliver the full header block (slowloris
#: guard); generous, because legitimate clients send headers in one write.
_HEADER_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def _refuse(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
) -> None:
    """Refuse a request so the client actually *sees* the refusal.

    Early-error paths (bad request line, oversized body/headers) respond
    before reading the request body.  Writing the error and closing
    immediately is not enough: unread bytes pending in the socket make the
    kernel reset the connection (RST) on close, which can discard the
    response before the client reads it — the client then reports a broken
    pipe instead of the 413 we sent.  So: write, drain, then read-and-
    discard the remaining request bytes (bounded in size and time) before
    the caller closes the connection.
    """
    writer.write(_plain_response(status, body))
    try:
        await writer.drain()
        discarded = 0
        while discarded < _MAX_DISCARD_BYTES:
            chunk = await asyncio.wait_for(
                reader.read(64 * 1024), _DISCARD_TIMEOUT_S
            )
            if not chunk:
                break
            discarded += len(chunk)
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass  # peer vanished or stalled; nothing further owed


async def _handle_connection(
    app: AsgiApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    header_timeout: "float | None" = _HEADER_TIMEOUT_S,
) -> None:
    try:
        try:
            head_read = reader.readuntil(b"\r\n\r\n")
            if header_timeout is not None:
                head = await asyncio.wait_for(head_read, header_timeout)
            else:
                head = await head_read
        except asyncio.TimeoutError:
            await _refuse(
                reader, writer, 408, b'{"error": "HeaderReadTimeout"}'
            )
            return
        except asyncio.LimitOverrunError:
            # Headers overran the stream buffer limit (64 KiB by default):
            # same refusal as an explicitly oversized header block.
            await _refuse(reader, writer, 431, b'{"error": "HeadersTooLarge"}')
            return
        except asyncio.IncompleteReadError:
            return  # client hung up mid-headers; nothing to answer
        if len(head) > _MAX_HEADER_BYTES:
            await _refuse(reader, writer, 431, b'{"error": "HeadersTooLarge"}')
            return
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            await _refuse(reader, writer, 400, b'{"error": "BadRequestLine"}')
            return
        headers: list[tuple[bytes, bytes]] = []
        content_length = 0
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers.append(
                (name.strip().lower().encode("latin-1"), value.strip().encode("latin-1"))
            )
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    await _refuse(
                        reader, writer, 400, b'{"error": "BadContentLength"}'
                    )
                    return
        if content_length > _MAX_BODY_BYTES:
            await _refuse(reader, writer, 413, b'{"error": "BodyTooLarge"}')
            return
        try:
            body = (
                await reader.readexactly(content_length)
                if content_length
                else b""
            )
        except asyncio.IncompleteReadError:
            return  # client hung up mid-body; nothing to answer

        path, _, query = target.partition("?")
        peer = writer.get_extra_info("peername") or ("", 0)
        scope: dict[str, Any] = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": headers,
            "client": (peer[0], peer[1]) if len(peer) >= 2 else None,
            "server": writer.get_extra_info("sockname"),
            "scheme": "http",
        }

        delivered = False

        async def receive() -> dict:
            nonlocal delivered
            if delivered:
                return {"type": "http.disconnect"}
            delivered = True
            return {"type": "http.request", "body": body, "more_body": False}

        response_started = False

        async def send(message: dict) -> None:
            nonlocal response_started
            if message["type"] == "http.response.start":
                response_started = True
                status = message["status"]
                reason = _REASONS.get(status, "Unknown")
                writer.write(f"HTTP/1.1 {status} {reason}\r\n".encode())
                for name, value in message.get("headers", []):
                    writer.write(name + b": " + value + b"\r\n")
                writer.write(b"connection: close\r\n\r\n")
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))
                await writer.drain()

        try:
            await app(scope, receive, send)
        except Exception:  # noqa: BLE001 - last-resort 500, never a hang
            if not response_started:
                writer.write(_plain_response(500, b'{"error": "InternalError"}'))
    finally:
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - peer vanished
            pass


def _plain_response(status: int, body: bytes) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"content-type: application/json\r\n"
        f"content-length: {len(body)}\r\n"
        f"connection: close\r\n\r\n"
    ).encode() + body


async def serve_async(
    app: AsgiApp,
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    header_timeout: "float | None" = _HEADER_TIMEOUT_S,
) -> "asyncio.AbstractServer":
    """Start serving and return the listening server (caller owns the loop)."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(
            app, r, w, header_timeout=header_timeout
        ),
        host,
        port,
    )


def serve(app: AsgiApp, host: str = "127.0.0.1", port: int = 8787) -> None:
    """Serve forever on the current thread (the ``python -m repro serve``
    entry point).  Ctrl-C shuts down cleanly."""

    async def _run() -> None:
        server = await serve_async(app, host, port)
        addrs = ", ".join(
            f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
            for sock in server.sockets
        )
        print(f"repro service listening on {addrs}", flush=True)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        app.close()
        app.service.close()
