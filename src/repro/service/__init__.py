"""Multi-tenant privacy service: durable ledgers, reservation admission,
and an ASGI front-end over the serving engine.

Layering (each level usable on its own):

* :mod:`repro.service.stores` — :class:`LedgerStore` and its in-memory,
  JSON-file, and SQLite backends: exclusive per-tenant read-modify-write
  transactions, atomic across threads and processes.
* :mod:`repro.service.ledger` — :class:`TenantLedger` (durable accountant
  state + reserve/consume/release-unused admission) and
  :class:`ReservationAccountant` (plugs a reservation into a stock
  :class:`~repro.serving.engine.PrivacyEngine`).
* :mod:`repro.service.retry` — :class:`RetryingLedgerStore`: transparent
  bounded-backoff retry of transient store errors under a
  :class:`RetryPolicy` (the service wraps its store in one by default).
* :mod:`repro.service.app` — :class:`PrivacyService` handlers and the
  dependency-free :class:`AsgiApp` exposing calibrate/release/stream over
  HTTP with request deadlines, backpressure, idempotency-keyed releases,
  and a recovery sweep; :mod:`repro.service.server` serves it on stdlib
  asyncio, :mod:`repro.service.testing` drives it in-process for tests.

Fault injection for all of the above lives in :mod:`repro.faults`.

See the service ADR in ``docs/architecture.md`` and the endpoint reference
in ``docs/api.md``.
"""

from repro.service.app import (
    AsgiApp,
    PrivacyService,
    Workload,
    create_app,
    default_workloads,
)
from repro.service.ledger import Reservation, ReservationAccountant, TenantLedger
from repro.service.retry import (
    RetryingLedgerStore,
    RetryPolicy,
    is_transient_store_error,
    with_retries,
)
from repro.service.stores import (
    InMemoryLedgerStore,
    JSONFileLedgerStore,
    LedgerStore,
    LedgerTransaction,
    SQLiteLedgerStore,
    ledger_store_from_path,
)

__all__ = [
    "AsgiApp",
    "InMemoryLedgerStore",
    "JSONFileLedgerStore",
    "LedgerStore",
    "LedgerTransaction",
    "PrivacyService",
    "Reservation",
    "ReservationAccountant",
    "RetryPolicy",
    "RetryingLedgerStore",
    "SQLiteLedgerStore",
    "TenantLedger",
    "Workload",
    "create_app",
    "default_workloads",
    "is_transient_store_error",
    "ledger_store_from_path",
    "with_retries",
]
