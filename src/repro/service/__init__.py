"""Multi-tenant privacy service: durable ledgers, reservation admission,
and an ASGI front-end over the serving engine.

Layering (each level usable on its own):

* :mod:`repro.service.stores` — :class:`LedgerStore` and its in-memory,
  JSON-file, and SQLite backends: exclusive per-tenant read-modify-write
  transactions, atomic across threads and processes.
* :mod:`repro.service.ledger` — :class:`TenantLedger` (durable accountant
  state + reserve/consume/release-unused admission) and
  :class:`ReservationAccountant` (plugs a reservation into a stock
  :class:`~repro.serving.engine.PrivacyEngine`).
* :mod:`repro.service.app` — :class:`PrivacyService` handlers and the
  dependency-free :class:`AsgiApp` exposing calibrate/release/stream over
  HTTP; :mod:`repro.service.server` serves it on stdlib asyncio,
  :mod:`repro.service.testing` drives it in-process for tests.

See the service ADR in ``docs/architecture.md`` and the endpoint reference
in ``docs/api.md``.
"""

from repro.service.app import (
    AsgiApp,
    PrivacyService,
    Workload,
    create_app,
    default_workloads,
)
from repro.service.ledger import Reservation, ReservationAccountant, TenantLedger
from repro.service.stores import (
    InMemoryLedgerStore,
    JSONFileLedgerStore,
    LedgerStore,
    LedgerTransaction,
    SQLiteLedgerStore,
    ledger_store_from_path,
)

__all__ = [
    "AsgiApp",
    "InMemoryLedgerStore",
    "JSONFileLedgerStore",
    "LedgerStore",
    "LedgerTransaction",
    "PrivacyService",
    "Reservation",
    "ReservationAccountant",
    "SQLiteLedgerStore",
    "TenantLedger",
    "Workload",
    "create_app",
    "default_workloads",
    "ledger_store_from_path",
]
