"""In-process ASGI test client (no sockets, no external HTTP library).

The environment ships no ``httpx``/``starlette`` test client, so this is
the minimal equivalent: build an ASGI ``http`` scope, run the app
coroutine to completion on a private event loop, and hand back the
response.  Requests are fully synchronous from the caller's point of view,
which keeps service tests ordinary ``pytest`` functions — including
multi-threaded ones (each call spins its own loop, so concurrent callers
exercise the service's real locking, not asyncio's serialization).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

from repro.service.app import AsgiApp


@dataclass
class Response:
    """One captured HTTP response."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body)


class TestClient:
    """Synchronous in-process client for an :class:`~repro.service.app.
    AsgiApp` (or any ASGI 3 callable speaking ``http`` scopes)."""

    __test__ = False  # not a pytest collection target

    def __init__(self, app: AsgiApp) -> None:
        self.app = app

    def request(
        self, method: str, path: str, *, json_body: Any = None
    ) -> Response:
        payload = b"" if json_body is None else json.dumps(json_body).encode()
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode(),
            "query_string": b"",
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(payload)).encode()),
            ],
            "client": ("testclient", 0),
            "server": ("testserver", 80),
            "scheme": "http",
        }

        messages: list[dict] = []
        sent = False

        async def receive() -> dict:
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {"type": "http.request", "body": payload, "more_body": False}

        async def send(message: dict) -> None:
            messages.append(message)

        asyncio.run(self.app(scope, receive, send))

        status = 500
        headers: dict[str, str] = {}
        body = b""
        for message in messages:
            if message["type"] == "http.response.start":
                status = message["status"]
                headers = {
                    k.decode(): v.decode() for k, v in message.get("headers", [])
                }
            elif message["type"] == "http.response.body":
                body += message.get("body", b"")
        return Response(status, headers, body)

    def get(self, path: str) -> Response:
        return self.request("GET", path)

    def post(self, path: str, json_body: Any = None) -> Response:
        return self.request("POST", path, json_body=json_body)

    def delete(self, path: str) -> Response:
        return self.request("DELETE", path)
