"""Per-tenant budget ledgers with reservation-style admission control.

The multi-tenant service must survive two things the in-process
:class:`~repro.serving.engine.PrivacyEngine` accountant cannot: process
restarts (budgets must be durable) and thundering herds (N concurrent
sessions, possibly in N processes, must never jointly over-commit one
tenant's epsilon).  :class:`TenantLedger` provides both on top of a
:class:`~repro.service.stores.LedgerStore`:

* **Durability.**  The tenant's accountant state — linear aggregates or
  the full Rényi running curve (:meth:`~repro.core.accounting.
  BaseAccountant.state_dict`) — is the stored source of truth.  Every
  mutation rehydrates it (:func:`~repro.core.accounting.
  accountant_from_state`, bit-identical), applies the release arithmetic,
  and persists the result, all inside one exclusive store transaction.  A
  restarted service picks up exactly — not conservatively — where the
  previous one stopped.
* **Reservation admission** (reserve → consume → release-unused).  A
  session carves its epsilon sub-budget out of the tenant ledger *up
  front*: :meth:`TenantLedger.reserve` admits ``n`` prospective releases
  only if the accountant's :meth:`~repro.core.accounting.BaseAccountant.
  preview` of *all outstanding reservations plus this one* fits the
  budget.  Concurrent sessions therefore contend at admission time — one
  store transaction each — and whichever reservations are granted can
  consume their releases without ever re-racing the budget.  Unused
  remainder is returned by :meth:`TenantLedger.release_unused` (or
  reclaimed by the stale-reservation TTL when a session dies without
  closing).
* **Exactly-once debit.**  :meth:`TenantLedger.consume` decrements one
  identified reservation and records the release(s) in the accountant in
  the same transaction; a refused consume (reservation drained, epsilon
  mismatch, budget refusal on a mechanism-supplied curve) changes nothing.

:class:`ReservationAccountant` adapts one reservation to the
:class:`~repro.core.accounting.BaseAccountant` contract so a stock
:class:`~repro.serving.engine.PrivacyEngine` (and its streaming sessions)
debits the durable ledger per release with no engine changes — budget
refusals surface as the same structured
:class:`~repro.exceptions.BudgetExhaustedError` the in-memory accountants
raise.

Two crash-safety layers ride on top (see ``docs/architecture.md``):

* **Idempotency keys** (:meth:`TenantLedger.consume_idempotent`): the
  debit, the key, and the response payload to replay land in **one** store
  transaction, so a client that lost the response and retries observes
  exactly one debit and the original payload — even if the retry races the
  original, or the store throws *after* the commit and a retrying wrapper
  re-runs the cycle.
* **Recovery sweep** (:meth:`TenantLedger.sweep`): reconciles expired
  reservations (a SIGKILL'd session's stranded sub-budget) and stale
  idempotency records in one transaction, so reclamation does not have to
  wait for the next admission to prune lazily.

Every ledger mutation goes through :meth:`~repro.service.stores.
LedgerStore.run` (the closure form of ``transact``) and is safe to re-run
from a fresh read, which is what lets
:class:`~repro.service.retry.RetryingLedgerStore` retry transient store
errors end to end: reservation ids are fixed before the cycle starts (a
re-run overwrites the same entry), consumes replay — client-supplied
idempotency keys and the private per-call keys keyless :meth:`TenantLedger.
consume` mints for itself both persist with the debit — and
``release_unused`` is idempotent-by-absence.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import Any, Hashable, Mapping

from repro.core.accounting import (
    BaseAccountant,
    CompositionRecord,
    RdpCurve,
    RenyiAccountant,
    accountant_from_state,
)
from repro.core.composition import CompositionAccountant
from repro.core.windowed import SlidingWindowAccountant
from repro.exceptions import (
    BudgetExhaustedError,
    PrivacyParameterError,
    ReservationError,
    UnknownReservationError,
    UnknownTenantError,
    ValidationError,
)
from repro.faults import fire
from repro.service.stores import LedgerStore, LedgerTransaction

#: Stored-state schema version; bumped on incompatible layout changes.
#: (Idempotency records were added additively under the ``"idempotency"``
#: key — absent in old states, defaulted on read — so the version holds.)
STATE_VERSION = 1

#: Key prefix for the private idempotency records keyless
#: :meth:`TenantLedger.consume` calls mint to stay replay-safe under a
#: retrying store wrapper.  ``uuid4`` suffixes make collisions with
#: client-supplied keys a non-event.
_RETRY_KEY_PREFIX = "retry."

#: Retry records only need to outlive one retry cycle (seconds, not
#: hours); consume prunes them opportunistically past this horizon so
#: they never pile up between recovery sweeps.
_RETRY_RECORD_TTL = 600.0


@dataclass(frozen=True)
class Reservation:
    """A granted epsilon sub-budget: ``n_reserved`` releases at ``epsilon``.

    ``epsilon_total`` is the sub-budget's linear envelope — what admission
    charged the tenant ledger for it.  The id is the consume/release
    handle; treat it like a capability (whoever holds it can spend the
    reservation).
    """

    tenant: str
    reservation_id: str
    epsilon: float
    n_reserved: int
    n_consumed: int

    @property
    def n_remaining(self) -> int:
        return self.n_reserved - self.n_consumed

    @property
    def epsilon_total(self) -> float:
        return self.n_reserved * self.epsilon


class TenantLedger:
    """One tenant's durable budget ledger over a shared store.

    Instances are cheap, stateless handles — every operation is one store
    transaction; nothing is cached between calls, so any number of handles
    (across threads and processes) observe one serialized ledger history.

    Parameters
    ----------
    store:
        The shared :class:`~repro.service.stores.LedgerStore`.
    tenant:
        Tenant name (any non-empty string without ``/``).
    reservation_ttl:
        Seconds after which an unconsumed reservation is presumed abandoned
        (its session crashed without :meth:`release_unused`) and its
        remainder stops counting against admission.  ``None`` disables
        expiry.  The TTL must comfortably exceed the longest legitimate
        session; it exists so a crashed client cannot strand tenant budget
        forever.
    idempotency_ttl:
        Seconds an idempotency record (key + replayable response) is kept
        before :meth:`sweep` prunes it.  Must comfortably exceed the
        longest client retry horizon; ``None`` keeps records forever.
    """

    def __init__(
        self,
        store: LedgerStore,
        tenant: str,
        *,
        reservation_ttl: "float | None" = 3600.0,
        idempotency_ttl: "float | None" = 3600.0,
    ) -> None:
        if not tenant or "/" in tenant:
            raise ValidationError(
                f"tenant must be a non-empty string without '/', got {tenant!r}"
            )
        if reservation_ttl is not None and reservation_ttl <= 0:
            raise ValidationError(
                f"reservation_ttl must be positive or None, got {reservation_ttl}"
            )
        if idempotency_ttl is not None and idempotency_ttl <= 0:
            raise ValidationError(
                f"idempotency_ttl must be positive or None, got {idempotency_ttl}"
            )
        self.store = store
        self.tenant = tenant
        self.reservation_ttl = reservation_ttl
        self.idempotency_ttl = idempotency_ttl

    # -- tenant lifecycle -------------------------------------------------
    def create(
        self,
        *,
        budget: "float | None",
        accountant: str = "linear",
        delta: float = 1e-6,
        window_span: int = 1,
        audit_trail: bool = True,
        exist_ok: bool = True,
    ) -> dict:
        """Create the tenant's ledger (idempotent when ``exist_ok``).

        An existing ledger is returned untouched — budgets are never
        silently rewritten; raising on mismatch is the caller's business
        (the service treats re-creation as a read).  ``window_span`` only
        applies to the ``"sliding"`` accountant: the budget is enforced
        over the trailing ``window_span`` logical windows, advanced via
        :meth:`advance_window`.
        """
        if accountant == "linear":
            fresh: BaseAccountant = CompositionAccountant(
                budget=budget, audit_trail=audit_trail
            )
        elif accountant == "renyi":
            fresh = RenyiAccountant(
                budget=budget, delta=delta, audit_trail=audit_trail
            )
        elif accountant == "sliding":
            fresh = SlidingWindowAccountant(
                budget=budget, window_span=window_span, audit_trail=audit_trail
            )
        else:
            raise ValidationError(
                f"accountant must be 'linear', 'renyi', or 'sliding', "
                f"got {accountant!r}"
            )
        fresh_state = fresh.state_dict()

        def handler(txn: LedgerTransaction) -> dict:
            if txn.state is not None:
                if not exist_ok:
                    raise ValidationError(
                        f"tenant {self.tenant!r} already has a ledger"
                    )
                return self._snapshot_from_state(txn.state)
            txn.state = {
                "version": STATE_VERSION,
                "accountant": fresh_state,
                "reservations": {},
                "idempotency": {},
            }
            return self._snapshot_from_state(txn.state)

        return self.store.run(self.tenant, handler)

    def exists(self) -> bool:
        return self.store.peek(self.tenant) is not None

    # -- admission: reserve -> consume -> release-unused -------------------
    def reserve(self, n_releases: int, epsilon: float) -> Reservation:
        """Carve ``n_releases * epsilon`` out of the tenant budget up front.

        Admission prices every *outstanding* (unexpired, unconsumed)
        reservation plus this request through the accountant's
        conservative :meth:`~repro.core.accounting.BaseAccountant.preview`
        and refuses with a structured
        :class:`~repro.exceptions.BudgetExhaustedError` when the total
        would overshoot — so the sum of granted sub-budgets can never
        exceed the tenant budget, no matter how many sessions race, from
        how many processes.

        A refusal while *other* reservations are outstanding carries
        ``retry_after = reservation_ttl`` (mapped to an HTTP
        ``Retry-After`` by the service): the budget those reservations
        hold returns by the TTL at the latest, so retrying then can
        succeed; a refusal with nothing outstanding is final.

        Safe to re-run by a retrying store wrapper: the reservation id is
        fixed before the transaction starts, so a re-run after a commit
        that actually landed overwrites the same entry with the same
        content instead of granting a second sub-budget.
        """
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        if epsilon <= 0:
            raise PrivacyParameterError(
                f"epsilon must be positive, got {epsilon}"
            )
        fire("tenant.reserve", tenant=self.tenant, n_releases=int(n_releases))
        reservation_id = uuid.uuid4().hex

        def handler(txn: LedgerTransaction) -> Reservation:
            state = self._require(txn.state)
            self._expire_locked(state)
            accountant = accountant_from_state(state["accountant"])
            outstanding = [
                (r["n_reserved"] - r["n_consumed"], r["epsilon"])
                for rid, r in state["reservations"].items()
                if rid != reservation_id  # a re-run must not double-count itself
            ]
            charges = outstanding + [(int(n_releases), float(epsilon))]
            prospective = accountant.preview(charges)
            budget = accountant.budget
            if budget is not None and prospective > budget + _ATOL:
                spent = accountant.total_epsilon()
                reserved = sum(n * eps for n, eps in outstanding)
                error = BudgetExhaustedError(
                    f"reserving {n_releases} release(s) at epsilon={epsilon:g} "
                    f"would bring tenant {self.tenant!r} to a prospective "
                    f"guarantee of {prospective:.4g} (spent {spent:.4g}, "
                    f"outstanding reservations {reserved:.4g}), exceeding the "
                    f"budget of {budget:.4g}",
                    budget=budget,
                    spent=spent,
                    remaining=max(0.0, budget - spent),
                    requested=int(n_releases),
                    n_completed=0,
                    accountant=type(accountant).__name__,
                )
                if outstanding and self.reservation_ttl is not None:
                    error.retry_after = self.reservation_ttl
                raise error
            state["reservations"][reservation_id] = {
                "epsilon": float(epsilon),
                "n_reserved": int(n_releases),
                "n_consumed": 0,
                "created_at": time.time(),
            }
            return Reservation(
                self.tenant, reservation_id, float(epsilon), int(n_releases), 0
            )

        return self.store.run(self.tenant, handler)

    def consume(
        self,
        reservation_id: str,
        n_releases: int = 1,
        *,
        epsilon: float,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
        rdp_curve: "RdpCurve | None" = None,
    ) -> Reservation:
        """Debit ``n_releases`` served releases against one reservation.

        Atomic and exactly-once: the reservation decrement and the
        accountant record land in the same store transaction — a refusal
        (drained reservation, epsilon mismatch, or the accountant vetoing a
        mechanism-supplied curve that outgrew the reserved envelope)
        persists nothing.  Returns the reservation's post-consume state.

        Safe to re-run by a retrying store wrapper even without a client
        idempotency key: each call fixes a private key before the cycle
        starts and persists it with the debit, so a re-run after a commit
        that actually landed (the store errored *after* committing)
        replays the committed result instead of double-debiting — or
        refusing a debit the tenant already paid for.
        """
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        fire(
            "tenant.consume",
            tenant=self.tenant,
            reservation_id=reservation_id,
            n_releases=int(n_releases),
        )
        retry_key = _RETRY_KEY_PREFIX + uuid.uuid4().hex

        def handler(txn: LedgerTransaction) -> Reservation:
            state = self._require(txn.state)
            records = state.setdefault("idempotency", {})
            record = records.get(retry_key)
            if record is not None:
                stored = record["response"]
                return Reservation(
                    self.tenant,
                    stored["reservation_id"],
                    stored["epsilon"],
                    stored["n_reserved"],
                    stored["n_consumed"],
                )
            self._prune_retry_records(records)
            result = self._consume_in_state(
                state,
                reservation_id,
                int(n_releases),
                epsilon=float(epsilon),
                mechanism=mechanism,
                quilt_signature=quilt_signature,
                rdp_curve=rdp_curve,
            )
            records[retry_key] = {
                "response": {
                    "reservation_id": result.reservation_id,
                    "epsilon": result.epsilon,
                    "n_reserved": result.n_reserved,
                    "n_consumed": result.n_consumed,
                },
                "reservation_id": reservation_id,
                "n_releases": int(n_releases),
                "epsilon": float(epsilon),
                "created_at": time.time(),
            }
            return result

        return self.store.run(self.tenant, handler)

    def _prune_retry_records(self, records: "dict[str, Any]") -> None:
        """Drop expired auto-generated retry records (in-transaction).

        Keyless consumes mint one record each; without this opportunistic
        pruning a service that never runs :meth:`sweep` would grow state
        without bound.  Client-supplied keys are left for :meth:`sweep` —
        they must survive the full client retry horizon.
        """
        ttl = _RETRY_RECORD_TTL
        if self.idempotency_ttl is not None:
            ttl = min(ttl, self.idempotency_ttl)
        cutoff = time.time() - ttl
        for key in [
            key
            for key, record in records.items()
            if key.startswith(_RETRY_KEY_PREFIX)
            and record["created_at"] < cutoff
        ]:
            del records[key]

    def consume_idempotent(
        self,
        reservation_id: str,
        n_releases: int,
        *,
        epsilon: float,
        idempotency_key: str,
        response: Any,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
        rdp_curve: "RdpCurve | None" = None,
    ) -> "tuple[Any, bool]":
        """Debit exactly once per ``idempotency_key``; replay on repeats.

        Returns ``(response, replayed)``.  First time a key is seen, the
        debit (:meth:`consume` semantics) **and** the caller-supplied
        ``response`` payload are persisted in the *same* store transaction;
        the response comes back with ``replayed=False``.  Any later call
        with the same key — a client retry after a lost HTTP response, or
        a retrying store wrapper re-running a cycle whose commit already
        landed — debits nothing and returns the stored payload with
        ``replayed=True``.  Because key, debit, and payload commit
        atomically, there is no window where the debit landed but a retry
        would re-debit, and none where a replayed response was never paid
        for.

        ``response`` must be JSON-serializable (it lives in ledger state).
        """
        if not idempotency_key or not isinstance(idempotency_key, str):
            raise ValidationError(
                f"idempotency_key must be a non-empty string, "
                f"got {idempotency_key!r}"
            )
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        fire(
            "tenant.consume",
            tenant=self.tenant,
            reservation_id=reservation_id,
            n_releases=int(n_releases),
            idempotency_key=idempotency_key,
        )

        def handler(txn: LedgerTransaction) -> "tuple[Any, bool]":
            state = self._require(txn.state)
            records = state.setdefault("idempotency", {})
            record = records.get(idempotency_key)
            if record is not None:
                return record["response"], True
            self._consume_in_state(
                state,
                reservation_id,
                int(n_releases),
                epsilon=float(epsilon),
                mechanism=mechanism,
                quilt_signature=quilt_signature,
                rdp_curve=rdp_curve,
            )
            records[idempotency_key] = {
                "response": response,
                "reservation_id": reservation_id,
                "n_releases": int(n_releases),
                "epsilon": float(epsilon),
                "created_at": time.time(),
            }
            return response, False

        return self.store.run(self.tenant, handler)

    def idempotent_response(self, idempotency_key: str) -> Any:
        """The stored response for a key, or ``None`` if unseen.

        A lock-free **fast path** for retry handling — it can save the
        reserve/draw work on an obvious replay, but only
        :meth:`consume_idempotent` is authoritative (a concurrent original
        may commit right after this returns ``None``).
        """
        state = self.store.peek(self.tenant)
        if state is None:
            return None
        record = state.get("idempotency", {}).get(idempotency_key)
        return None if record is None else record["response"]

    def _consume_in_state(
        self,
        state: Mapping,
        reservation_id: str,
        n_releases: int,
        *,
        epsilon: float,
        mechanism: str,
        quilt_signature: Hashable,
        rdp_curve: "RdpCurve | None",
    ) -> Reservation:
        """The consume core, applied to an in-transaction state dict."""
        entry = state["reservations"].get(reservation_id)
        if entry is None:
            raise UnknownReservationError(
                f"tenant {self.tenant!r} has no outstanding reservation "
                f"{reservation_id!r} (already released, or expired past "
                f"the {self.reservation_ttl}s TTL)"
            )
        if float(epsilon) != entry["epsilon"]:
            raise ReservationError(
                f"reservation {reservation_id!r} holds epsilon="
                f"{entry['epsilon']:g} per release, cannot consume at "
                f"epsilon={epsilon:g}"
            )
        remaining = entry["n_reserved"] - entry["n_consumed"]
        if n_releases > remaining:
            raise ReservationError(
                f"reservation {reservation_id!r} has {remaining} "
                f"release(s) left, cannot consume {n_releases}; reserve "
                f"a larger sub-budget or open a new session"
            )
        accountant = accountant_from_state(state["accountant"])
        accountant.record_many(
            int(n_releases),
            float(epsilon),
            mechanism=mechanism,
            quilt_signature=quilt_signature,
            rdp_curve=rdp_curve,
        )
        entry["n_consumed"] += int(n_releases)
        state["accountant"] = accountant.state_dict()
        return Reservation(
            self.tenant,
            reservation_id,
            entry["epsilon"],
            entry["n_reserved"],
            entry["n_consumed"],
        )

    def release_unused(self, reservation_id: str) -> int:
        """Return a reservation's unconsumed remainder to the tenant budget.

        Idempotent-by-absence: an unknown (already released or expired) id
        returns 0 instead of raising, so session close paths can always
        call it unconditionally — and a retrying store wrapper can re-run
        the cycle without minting budget.
        """
        fire(
            "tenant.release_unused",
            tenant=self.tenant,
            reservation_id=reservation_id,
        )

        def handler(txn: LedgerTransaction) -> int:
            state = self._require(txn.state)
            entry = state["reservations"].pop(reservation_id, None)
            if entry is None:
                return 0
            return int(entry["n_reserved"] - entry["n_consumed"])

        return self.store.run(self.tenant, handler)

    # -- recovery ----------------------------------------------------------
    def sweep(self, *, now: "float | None" = None) -> dict:
        """Reconcile this tenant's ledger in one transaction.

        Reclaims every reservation past ``reservation_ttl`` (returning its
        unconsumed remainder to the budget — the consumed part was debited
        durably and stays spent) and prunes idempotency records past
        ``idempotency_ttl``.  This is the *recovery sweep*: run it at
        service startup and after killing workers, and no orphaned
        reservation outlives its TTL plus one sweep.  Returns reclaim
        stats; a no-op sweep returns zeros.
        """
        fire("tenant.sweep", tenant=self.tenant)

        def handler(txn: LedgerTransaction) -> dict:
            state = self._require(txn.state)
            reservations = state["reservations"]
            expired = self._expired_ids(state, now=now)
            reclaimed_releases = 0
            reclaimed_epsilon = 0.0
            for rid in expired:
                entry = reservations.pop(rid)
                remainder = entry["n_reserved"] - entry["n_consumed"]
                reclaimed_releases += int(remainder)
                reclaimed_epsilon += remainder * entry["epsilon"]
            records = state.setdefault("idempotency", {})
            pruned = 0
            if self.idempotency_ttl is not None:
                cutoff = (time.time() if now is None else now) - self.idempotency_ttl
                for key in [
                    key
                    for key, record in records.items()
                    if record["created_at"] < cutoff
                ]:
                    del records[key]
                    pruned += 1
            return {
                "tenant": self.tenant,
                "expired_reservations": len(expired),
                "reclaimed_releases": reclaimed_releases,
                "reclaimed_epsilon": reclaimed_epsilon,
                "pruned_idempotency_records": pruned,
                "outstanding_reservations": len(reservations),
            }

        return self.store.run(self.tenant, handler)

    def advance_window(
        self, *, steps: int = 1, window: "int | None" = None, now: "float | None" = None
    ) -> dict:
        """The windowed reclamation sweep: advance the tenant's logical
        window clock and reclaim expired releases' epsilon, exactly.

        Requires a ``"sliding"`` accountant (raises
        :class:`~repro.exceptions.ValidationError` otherwise).  ``steps``
        advances relatively; ``window`` jumps to an absolute index
        (monotone).  The clock advance, the bucket expiry, and a
        reservation-TTL sweep all land in **one** store transaction, so an
        indefinite stream's reclamation can never strand a reservation or
        observe a half-advanced ledger.  Returns the accountant's advance
        stats plus the reservation-sweep stats.
        """
        if window is not None and steps != 1:
            raise ValidationError("pass steps or window, not both")
        fire("tenant.advance_window", tenant=self.tenant)

        def handler(txn: LedgerTransaction) -> dict:
            state = self._require(txn.state)
            accountant = accountant_from_state(state["accountant"])
            if not isinstance(accountant, SlidingWindowAccountant):
                raise ValidationError(
                    f"tenant {self.tenant!r} uses "
                    f"{type(accountant).__name__}; advance_window requires "
                    "the 'sliding' accountant"
                )
            if window is not None:
                stats = accountant.advance_to(int(window))
            else:
                stats = accountant.advance_window(int(steps))
            state["accountant"] = accountant.state_dict()
            # Same-transaction reservation sweep: reclamation and expiry
            # are one atomic reconciliation, as in :meth:`sweep`.
            reservations = state["reservations"]
            expired = self._expired_ids(state, now=now)
            reclaimed_releases = 0
            for rid in expired:
                entry = reservations.pop(rid)
                reclaimed_releases += int(
                    entry["n_reserved"] - entry["n_consumed"]
                )
            return {
                "tenant": self.tenant,
                **stats,
                "expired_reservations": len(expired),
                "reclaimed_releases": reclaimed_releases,
                "outstanding_reservations": len(reservations),
            }

        return self.store.run(self.tenant, handler)

    # -- reads -------------------------------------------------------------
    def accountant(self) -> BaseAccountant:
        """A rehydrated **snapshot** of the tenant's accountant.

        Bit-identical to the stored ledger at read time (including Rényi
        curves); mutating it affects nothing durable.
        """
        state = self._require(self.store.peek(self.tenant))
        return accountant_from_state(state["accountant"])

    def snapshot(self) -> dict:
        """JSON-safe operational view: spent, remaining, reservations."""
        return self._snapshot_from_state(
            self._require(self.store.peek(self.tenant))
        )

    def _snapshot_from_state(self, state: Mapping) -> dict:
        accountant = accountant_from_state(state["accountant"])
        reservations = state.get("reservations", {})
        outstanding = sum(
            r["n_reserved"] - r["n_consumed"] for r in reservations.values()
        )
        reserved_epsilon = sum(
            (r["n_reserved"] - r["n_consumed"]) * r["epsilon"]
            for r in reservations.values()
        )
        snapshot: dict[str, Any] = {
            "tenant": self.tenant,
            "accountant": type(accountant).__name__,
            "budget": accountant.budget,
            "spent_epsilon": accountant.total_epsilon(),
            "remaining_budget": accountant.remaining(),
            "n_releases": len(accountant),
            "n_reservations": len(reservations),
            "reserved_releases": outstanding,
            "reserved_epsilon": reserved_epsilon,
            "idempotency_records": len(state.get("idempotency", {})),
        }
        if isinstance(accountant, RenyiAccountant):
            snapshot["delta"] = accountant.delta
            snapshot["optimal_order"] = accountant.optimal_order()
        if isinstance(accountant, SlidingWindowAccountant):
            snapshot["window"] = accountant.window
            snapshot["window_span"] = accountant.window_span
            snapshot["live_releases"] = accountant.live_release_count()
        return snapshot

    # -- internals ---------------------------------------------------------
    def _require(self, state: "Mapping | None") -> Any:
        if state is None:
            raise UnknownTenantError(
                f"tenant {self.tenant!r} has no ledger; create it first "
                f"(POST /tenants/{self.tenant} on the service)"
            )
        return state

    def _expire_locked(self, state: Mapping) -> None:
        """Drop reservations older than the TTL (inside a transaction).

        Only *admission* prunes: an expired id that later tries to consume
        fails loudly with :class:`~repro.exceptions.
        UnknownReservationError` rather than silently re-admitting.
        """
        for rid in self._expired_ids(state):
            del state["reservations"][rid]

    def _expired_ids(
        self, state: Mapping, *, now: "float | None" = None
    ) -> "list[str]":
        if self.reservation_ttl is None:
            return []
        now = time.time() if now is None else now
        return [
            rid
            for rid, r in state["reservations"].items()
            if now - r["created_at"] > self.reservation_ttl
        ]


_ATOL = 1e-12  # same float-sum slack as the in-memory accountants


class ReservationAccountant(BaseAccountant):
    """A :class:`~repro.core.accounting.BaseAccountant` over one reservation.

    Plug one into a stock :class:`~repro.serving.engine.PrivacyEngine`
    (``engine.with_accountant(...)``) and every release — single, batched,
    or streamed — debits the durable tenant ledger exactly once through
    :meth:`TenantLedger.consume`, inside the store's cross-process
    transaction.  The local ``budget`` is the reservation's envelope
    (``n_reserved * epsilon``), so a session that outruns its sub-budget
    gets the standard structured
    :class:`~repro.exceptions.BudgetExhaustedError` (with the session's
    ledger in the payload) without ever touching the store; the tenant-wide
    budget was already accounted at admission time.

    The base class's check-then-record plumbing is overridden rather than
    hooked: the *commit* here is a store transaction (which can itself
    refuse), not a pure in-memory apply.
    """

    def __init__(self, ledger: TenantLedger, reservation: Reservation) -> None:
        self._ledger = ledger
        self._reservation = reservation
        self.budget = reservation.epsilon_total
        self.records: list = []
        self.audit_trail = False  # the durable ledger is the audit trail
        self._consumed = reservation.n_consumed
        self._init_runtime()

    # -- identity ----------------------------------------------------------
    @property
    def tenant(self) -> str:
        return self._ledger.tenant

    @property
    def reservation_id(self) -> str:
        return self._reservation.reservation_id

    @property
    def epsilon(self) -> float:
        return self._reservation.epsilon

    @property
    def n_reserved(self) -> int:
        return self._reservation.n_reserved

    @property
    def n_remaining(self) -> int:
        with self._mutex:
            return self._reservation.n_reserved - self._consumed

    # -- the reservation-backed check-then-record cycle --------------------
    def _spent_locked(self) -> float:
        return self._consumed * self._reservation.epsilon

    def record_many(
        self,
        n_releases: int,
        epsilon: float,
        *,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
        rdp_curve: "RdpCurve | None" = None,
    ) -> list:
        if epsilon <= 0:
            raise PrivacyParameterError(
                f"epsilon must be positive, got {epsilon}"
            )
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        if float(epsilon) != self._reservation.epsilon:
            raise ReservationError(
                f"this session reserved epsilon={self._reservation.epsilon:g} "
                f"per release, cannot record epsilon={epsilon:g}"
            )
        with self._mutex:
            if self._signatures and quilt_signature not in self._signatures:
                raise PrivacyParameterError(
                    "releases use different active Markov quilts; Theorem 4.4 "
                    "does not apply and Pufferfish privacy may not compose"
                )
            remaining = self._reservation.n_reserved - self._consumed
            if n_releases > remaining:
                spent = self._spent_locked()
                raise BudgetExhaustedError(
                    f"{n_releases} release(s) would exceed this session's "
                    f"reserved sub-budget of {self.budget:.4g} for tenant "
                    f"{self.tenant!r} ({remaining} release(s) remaining); "
                    f"reserve a larger sub-budget or open a new session",
                    budget=self.budget,
                    spent=spent,
                    remaining=max(0.0, self.budget - spent),
                    requested=int(n_releases),
                    n_completed=0,
                    accountant=type(self).__name__,
                )
            # The durable debit: one store transaction, exactly-once.  A
            # refusal (e.g. the tenant accountant vetoing a curve) raises
            # here and nothing — local or durable — has changed.
            self._ledger.consume(
                self._reservation.reservation_id,
                int(n_releases),
                epsilon=float(epsilon),
                mechanism=mechanism,
                quilt_signature=quilt_signature,
                rdp_curve=rdp_curve,
            )
            record = CompositionRecord(float(epsilon), mechanism, quilt_signature)
            self._consumed += int(n_releases)
            self._count += int(n_releases)
            self._signatures.add(quilt_signature)
            return [record] * int(n_releases)
