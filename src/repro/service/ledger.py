"""Per-tenant budget ledgers with reservation-style admission control.

The multi-tenant service must survive two things the in-process
:class:`~repro.serving.engine.PrivacyEngine` accountant cannot: process
restarts (budgets must be durable) and thundering herds (N concurrent
sessions, possibly in N processes, must never jointly over-commit one
tenant's epsilon).  :class:`TenantLedger` provides both on top of a
:class:`~repro.service.stores.LedgerStore`:

* **Durability.**  The tenant's accountant state — linear aggregates or
  the full Rényi running curve (:meth:`~repro.core.accounting.
  BaseAccountant.state_dict`) — is the stored source of truth.  Every
  mutation rehydrates it (:func:`~repro.core.accounting.
  accountant_from_state`, bit-identical), applies the release arithmetic,
  and persists the result, all inside one exclusive store transaction.  A
  restarted service picks up exactly — not conservatively — where the
  previous one stopped.
* **Reservation admission** (reserve → consume → release-unused).  A
  session carves its epsilon sub-budget out of the tenant ledger *up
  front*: :meth:`TenantLedger.reserve` admits ``n`` prospective releases
  only if the accountant's :meth:`~repro.core.accounting.BaseAccountant.
  preview` of *all outstanding reservations plus this one* fits the
  budget.  Concurrent sessions therefore contend at admission time — one
  store transaction each — and whichever reservations are granted can
  consume their releases without ever re-racing the budget.  Unused
  remainder is returned by :meth:`TenantLedger.release_unused` (or
  reclaimed by the stale-reservation TTL when a session dies without
  closing).
* **Exactly-once debit.**  :meth:`TenantLedger.consume` decrements one
  identified reservation and records the release(s) in the accountant in
  the same transaction; a refused consume (reservation drained, epsilon
  mismatch, budget refusal on a mechanism-supplied curve) changes nothing.

:class:`ReservationAccountant` adapts one reservation to the
:class:`~repro.core.accounting.BaseAccountant` contract so a stock
:class:`~repro.serving.engine.PrivacyEngine` (and its streaming sessions)
debits the durable ledger per release with no engine changes — budget
refusals surface as the same structured
:class:`~repro.exceptions.BudgetExhaustedError` the in-memory accountants
raise.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import Any, Hashable, Mapping

from repro.core.accounting import (
    BaseAccountant,
    CompositionRecord,
    RdpCurve,
    RenyiAccountant,
    accountant_from_state,
)
from repro.core.composition import CompositionAccountant
from repro.exceptions import (
    BudgetExhaustedError,
    PrivacyParameterError,
    ReservationError,
    UnknownReservationError,
    UnknownTenantError,
    ValidationError,
)
from repro.service.stores import LedgerStore

#: Stored-state schema version; bumped on incompatible layout changes.
STATE_VERSION = 1


@dataclass(frozen=True)
class Reservation:
    """A granted epsilon sub-budget: ``n_reserved`` releases at ``epsilon``.

    ``epsilon_total`` is the sub-budget's linear envelope — what admission
    charged the tenant ledger for it.  The id is the consume/release
    handle; treat it like a capability (whoever holds it can spend the
    reservation).
    """

    tenant: str
    reservation_id: str
    epsilon: float
    n_reserved: int
    n_consumed: int

    @property
    def n_remaining(self) -> int:
        return self.n_reserved - self.n_consumed

    @property
    def epsilon_total(self) -> float:
        return self.n_reserved * self.epsilon


class TenantLedger:
    """One tenant's durable budget ledger over a shared store.

    Instances are cheap, stateless handles — every operation is one store
    transaction; nothing is cached between calls, so any number of handles
    (across threads and processes) observe one serialized ledger history.

    Parameters
    ----------
    store:
        The shared :class:`~repro.service.stores.LedgerStore`.
    tenant:
        Tenant name (any non-empty string without ``/``).
    reservation_ttl:
        Seconds after which an unconsumed reservation is presumed abandoned
        (its session crashed without :meth:`release_unused`) and its
        remainder stops counting against admission.  ``None`` disables
        expiry.  The TTL must comfortably exceed the longest legitimate
        session; it exists so a crashed client cannot strand tenant budget
        forever.
    """

    def __init__(
        self,
        store: LedgerStore,
        tenant: str,
        *,
        reservation_ttl: "float | None" = 3600.0,
    ) -> None:
        if not tenant or "/" in tenant:
            raise ValidationError(
                f"tenant must be a non-empty string without '/', got {tenant!r}"
            )
        if reservation_ttl is not None and reservation_ttl <= 0:
            raise ValidationError(
                f"reservation_ttl must be positive or None, got {reservation_ttl}"
            )
        self.store = store
        self.tenant = tenant
        self.reservation_ttl = reservation_ttl

    # -- tenant lifecycle -------------------------------------------------
    def create(
        self,
        *,
        budget: "float | None",
        accountant: str = "linear",
        delta: float = 1e-6,
        audit_trail: bool = True,
        exist_ok: bool = True,
    ) -> dict:
        """Create the tenant's ledger (idempotent when ``exist_ok``).

        An existing ledger is returned untouched — budgets are never
        silently rewritten; raising on mismatch is the caller's business
        (the service treats re-creation as a read).
        """
        if accountant == "linear":
            fresh: BaseAccountant = CompositionAccountant(
                budget=budget, audit_trail=audit_trail
            )
        elif accountant == "renyi":
            fresh = RenyiAccountant(
                budget=budget, delta=delta, audit_trail=audit_trail
            )
        else:
            raise ValidationError(
                f"accountant must be 'linear' or 'renyi', got {accountant!r}"
            )
        with self.store.transact(self.tenant) as txn:
            if txn.state is not None:
                if not exist_ok:
                    raise ValidationError(
                        f"tenant {self.tenant!r} already has a ledger"
                    )
                return self._snapshot_from_state(txn.state)
            txn.state = {
                "version": STATE_VERSION,
                "accountant": fresh.state_dict(),
                "reservations": {},
            }
            return self._snapshot_from_state(txn.state)

    def exists(self) -> bool:
        return self.store.peek(self.tenant) is not None

    # -- admission: reserve -> consume -> release-unused -------------------
    def reserve(self, n_releases: int, epsilon: float) -> Reservation:
        """Carve ``n_releases * epsilon`` out of the tenant budget up front.

        Admission prices every *outstanding* (unexpired, unconsumed)
        reservation plus this request through the accountant's
        conservative :meth:`~repro.core.accounting.BaseAccountant.preview`
        and refuses with a structured
        :class:`~repro.exceptions.BudgetExhaustedError` when the total
        would overshoot — so the sum of granted sub-budgets can never
        exceed the tenant budget, no matter how many sessions race, from
        how many processes.
        """
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        if epsilon <= 0:
            raise PrivacyParameterError(
                f"epsilon must be positive, got {epsilon}"
            )
        with self.store.transact(self.tenant) as txn:
            state = self._require(txn.state)
            self._expire_locked(state)
            accountant = accountant_from_state(state["accountant"])
            outstanding = [
                (r["n_reserved"] - r["n_consumed"], r["epsilon"])
                for r in state["reservations"].values()
            ]
            charges = outstanding + [(int(n_releases), float(epsilon))]
            prospective = accountant.preview(charges)
            budget = accountant.budget
            if budget is not None and prospective > budget + _ATOL:
                spent = accountant.total_epsilon()
                reserved = sum(n * eps for n, eps in outstanding)
                raise BudgetExhaustedError(
                    f"reserving {n_releases} release(s) at epsilon={epsilon:g} "
                    f"would bring tenant {self.tenant!r} to a prospective "
                    f"guarantee of {prospective:.4g} (spent {spent:.4g}, "
                    f"outstanding reservations {reserved:.4g}), exceeding the "
                    f"budget of {budget:.4g}",
                    budget=budget,
                    spent=spent,
                    remaining=max(0.0, budget - spent),
                    requested=int(n_releases),
                    n_completed=0,
                    accountant=type(accountant).__name__,
                )
            reservation_id = uuid.uuid4().hex
            state["reservations"][reservation_id] = {
                "epsilon": float(epsilon),
                "n_reserved": int(n_releases),
                "n_consumed": 0,
                "created_at": time.time(),
            }
            return Reservation(
                self.tenant, reservation_id, float(epsilon), int(n_releases), 0
            )

    def consume(
        self,
        reservation_id: str,
        n_releases: int = 1,
        *,
        epsilon: float,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
        rdp_curve: "RdpCurve | None" = None,
    ) -> Reservation:
        """Debit ``n_releases`` served releases against one reservation.

        Atomic and exactly-once: the reservation decrement and the
        accountant record land in the same store transaction — a refusal
        (drained reservation, epsilon mismatch, or the accountant vetoing a
        mechanism-supplied curve that outgrew the reserved envelope)
        persists nothing.  Returns the reservation's post-consume state.
        """
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        with self.store.transact(self.tenant) as txn:
            state = self._require(txn.state)
            entry = state["reservations"].get(reservation_id)
            if entry is None:
                raise UnknownReservationError(
                    f"tenant {self.tenant!r} has no outstanding reservation "
                    f"{reservation_id!r} (already released, or expired past "
                    f"the {self.reservation_ttl}s TTL)"
                )
            if float(epsilon) != entry["epsilon"]:
                raise ReservationError(
                    f"reservation {reservation_id!r} holds epsilon="
                    f"{entry['epsilon']:g} per release, cannot consume at "
                    f"epsilon={epsilon:g}"
                )
            remaining = entry["n_reserved"] - entry["n_consumed"]
            if n_releases > remaining:
                raise ReservationError(
                    f"reservation {reservation_id!r} has {remaining} "
                    f"release(s) left, cannot consume {n_releases}; reserve "
                    f"a larger sub-budget or open a new session"
                )
            accountant = accountant_from_state(state["accountant"])
            accountant.record_many(
                int(n_releases),
                float(epsilon),
                mechanism=mechanism,
                quilt_signature=quilt_signature,
                rdp_curve=rdp_curve,
            )
            entry["n_consumed"] += int(n_releases)
            state["accountant"] = accountant.state_dict()
            return Reservation(
                self.tenant,
                reservation_id,
                entry["epsilon"],
                entry["n_reserved"],
                entry["n_consumed"],
            )

    def release_unused(self, reservation_id: str) -> int:
        """Return a reservation's unconsumed remainder to the tenant budget.

        Idempotent-by-absence: an unknown (already released or expired) id
        returns 0 instead of raising, so session close paths can always
        call it unconditionally.
        """
        with self.store.transact(self.tenant) as txn:
            state = self._require(txn.state)
            entry = state["reservations"].pop(reservation_id, None)
            if entry is None:
                return 0
            return int(entry["n_reserved"] - entry["n_consumed"])

    # -- reads -------------------------------------------------------------
    def accountant(self) -> BaseAccountant:
        """A rehydrated **snapshot** of the tenant's accountant.

        Bit-identical to the stored ledger at read time (including Rényi
        curves); mutating it affects nothing durable.
        """
        state = self._require(self.store.peek(self.tenant))
        return accountant_from_state(state["accountant"])

    def snapshot(self) -> dict:
        """JSON-safe operational view: spent, remaining, reservations."""
        return self._snapshot_from_state(
            self._require(self.store.peek(self.tenant))
        )

    def _snapshot_from_state(self, state: Mapping) -> dict:
        accountant = accountant_from_state(state["accountant"])
        reservations = state.get("reservations", {})
        outstanding = sum(
            r["n_reserved"] - r["n_consumed"] for r in reservations.values()
        )
        reserved_epsilon = sum(
            (r["n_reserved"] - r["n_consumed"]) * r["epsilon"]
            for r in reservations.values()
        )
        snapshot: dict[str, Any] = {
            "tenant": self.tenant,
            "accountant": type(accountant).__name__,
            "budget": accountant.budget,
            "spent_epsilon": accountant.total_epsilon(),
            "remaining_budget": accountant.remaining(),
            "n_releases": len(accountant),
            "n_reservations": len(reservations),
            "reserved_releases": outstanding,
            "reserved_epsilon": reserved_epsilon,
        }
        if isinstance(accountant, RenyiAccountant):
            snapshot["delta"] = accountant.delta
            snapshot["optimal_order"] = accountant.optimal_order()
        return snapshot

    # -- internals ---------------------------------------------------------
    def _require(self, state: "Mapping | None") -> Any:
        if state is None:
            raise UnknownTenantError(
                f"tenant {self.tenant!r} has no ledger; create it first "
                f"(POST /tenants/{self.tenant} on the service)"
            )
        return state

    def _expire_locked(self, state: Mapping) -> None:
        """Drop reservations older than the TTL (inside a transaction).

        Only *admission* prunes: an expired id that later tries to consume
        fails loudly with :class:`~repro.exceptions.
        UnknownReservationError` rather than silently re-admitting.
        """
        if self.reservation_ttl is None:
            return
        now = time.time()
        reservations = state["reservations"]
        for rid in [
            rid
            for rid, r in reservations.items()
            if now - r["created_at"] > self.reservation_ttl
        ]:
            del reservations[rid]


_ATOL = 1e-12  # same float-sum slack as the in-memory accountants


class ReservationAccountant(BaseAccountant):
    """A :class:`~repro.core.accounting.BaseAccountant` over one reservation.

    Plug one into a stock :class:`~repro.serving.engine.PrivacyEngine`
    (``engine.with_accountant(...)``) and every release — single, batched,
    or streamed — debits the durable tenant ledger exactly once through
    :meth:`TenantLedger.consume`, inside the store's cross-process
    transaction.  The local ``budget`` is the reservation's envelope
    (``n_reserved * epsilon``), so a session that outruns its sub-budget
    gets the standard structured
    :class:`~repro.exceptions.BudgetExhaustedError` (with the session's
    ledger in the payload) without ever touching the store; the tenant-wide
    budget was already accounted at admission time.

    The base class's check-then-record plumbing is overridden rather than
    hooked: the *commit* here is a store transaction (which can itself
    refuse), not a pure in-memory apply.
    """

    def __init__(self, ledger: TenantLedger, reservation: Reservation) -> None:
        self._ledger = ledger
        self._reservation = reservation
        self.budget = reservation.epsilon_total
        self.records: list = []
        self.audit_trail = False  # the durable ledger is the audit trail
        self._consumed = reservation.n_consumed
        self._init_runtime()

    # -- identity ----------------------------------------------------------
    @property
    def tenant(self) -> str:
        return self._ledger.tenant

    @property
    def reservation_id(self) -> str:
        return self._reservation.reservation_id

    @property
    def epsilon(self) -> float:
        return self._reservation.epsilon

    @property
    def n_reserved(self) -> int:
        return self._reservation.n_reserved

    @property
    def n_remaining(self) -> int:
        with self._mutex:
            return self._reservation.n_reserved - self._consumed

    # -- the reservation-backed check-then-record cycle --------------------
    def _spent_locked(self) -> float:
        return self._consumed * self._reservation.epsilon

    def record_many(
        self,
        n_releases: int,
        epsilon: float,
        *,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
        rdp_curve: "RdpCurve | None" = None,
    ) -> list:
        if epsilon <= 0:
            raise PrivacyParameterError(
                f"epsilon must be positive, got {epsilon}"
            )
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        if float(epsilon) != self._reservation.epsilon:
            raise ReservationError(
                f"this session reserved epsilon={self._reservation.epsilon:g} "
                f"per release, cannot record epsilon={epsilon:g}"
            )
        with self._mutex:
            if self._signatures and quilt_signature not in self._signatures:
                raise PrivacyParameterError(
                    "releases use different active Markov quilts; Theorem 4.4 "
                    "does not apply and Pufferfish privacy may not compose"
                )
            remaining = self._reservation.n_reserved - self._consumed
            if n_releases > remaining:
                spent = self._spent_locked()
                raise BudgetExhaustedError(
                    f"{n_releases} release(s) would exceed this session's "
                    f"reserved sub-budget of {self.budget:.4g} for tenant "
                    f"{self.tenant!r} ({remaining} release(s) remaining); "
                    f"reserve a larger sub-budget or open a new session",
                    budget=self.budget,
                    spent=spent,
                    remaining=max(0.0, self.budget - spent),
                    requested=int(n_releases),
                    n_completed=0,
                    accountant=type(self).__name__,
                )
            # The durable debit: one store transaction, exactly-once.  A
            # refusal (e.g. the tenant accountant vetoing a curve) raises
            # here and nothing — local or durable — has changed.
            self._ledger.consume(
                self._reservation.reservation_id,
                int(n_releases),
                epsilon=float(epsilon),
                mechanism=mechanism,
                quilt_signature=quilt_signature,
                rdp_curve=rdp_curve,
            )
            record = CompositionRecord(float(epsilon), mechanism, quilt_signature)
            self._consumed += int(n_releases)
            self._count += int(n_releases)
            self._signatures.add(quilt_signature)
            return [record] * int(n_releases)
