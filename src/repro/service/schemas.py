"""Tiny request-body validation for the service endpoints.

The service speaks plain JSON over a hand-rolled ASGI stack (the
environment ships no web framework), so validation is a handful of
explicit extractors rather than a schema library.  Every failure raises
:class:`~repro.exceptions.ValidationError` — mapped to HTTP 400 by the
app — with a message naming the offending field, which keeps handler
bodies free of defensive plumbing.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.exceptions import ValidationError


def require_object(body: Any) -> Mapping[str, Any]:
    """The request body must be a JSON object (possibly empty)."""
    if body is None:
        return {}
    if not isinstance(body, Mapping):
        raise ValidationError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def get_str(
    body: Mapping[str, Any],
    name: str,
    *,
    default: "str | None" = None,
    required: bool = False,
    choices: "tuple[str, ...] | None" = None,
) -> "str | None":
    value = body.get(name, default)
    if value is None:
        if required:
            raise ValidationError(f"missing required field {name!r}")
        return None
    if not isinstance(value, str):
        raise ValidationError(
            f"field {name!r} must be a string, got {type(value).__name__}"
        )
    if choices is not None and value not in choices:
        raise ValidationError(
            f"field {name!r} must be one of {sorted(choices)}, got {value!r}"
        )
    return value


def get_int(
    body: Mapping[str, Any],
    name: str,
    *,
    default: "int | None" = None,
    required: bool = False,
    minimum: "int | None" = None,
    maximum: "int | None" = None,
) -> "int | None":
    value = body.get(name, default)
    if value is None:
        if required:
            raise ValidationError(f"missing required field {name!r}")
        return None
    # bool is an int subclass; reject it explicitly (true is not a count).
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"field {name!r} must be an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise ValidationError(f"field {name!r} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValidationError(f"field {name!r} must be <= {maximum}, got {value}")
    return value


def get_float(
    body: Mapping[str, Any],
    name: str,
    *,
    default: "float | None" = None,
    required: bool = False,
    positive: bool = False,
) -> "float | None":
    value = body.get(name, default)
    if value is None:
        if required:
            raise ValidationError(f"missing required field {name!r}")
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"field {name!r} must be a number, got {value!r}"
        )
    value = float(value)
    if positive and value <= 0:
        raise ValidationError(f"field {name!r} must be positive, got {value}")
    return value


def get_bool(
    body: Mapping[str, Any], name: str, *, default: bool
) -> bool:
    value = body.get(name, default)
    if not isinstance(value, bool):
        raise ValidationError(
            f"field {name!r} must be a boolean, got {value!r}"
        )
    return value
