"""The Wasserstein Mechanism (Algorithm 1) — the paper's first contribution.

For every admissible secret pair ``(s_i, s_j)`` and every ``theta`` in
``Theta`` the mechanism computes the conditional query-output distributions
``mu_{i,theta} = P(F(X) | s_i, theta)`` and ``mu_{j,theta}``, takes the
supremum ``W`` of their infinity-Wasserstein distances, and releases
``F(D) + Lap(W / epsilon)``.

Theorem 3.2 shows this is epsilon-Pufferfish private; Theorem 3.3 shows ``W``
never exceeds the global sensitivity of the corresponding group-DP framework
(we expose :func:`group_sensitivity` so tests can verify the inequality).

The computation enumerates model supports, which is exactly the
computational cost the paper attributes to the mechanism; realistic chains
should use :mod:`repro.core.mqm_chain`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.framework import PufferfishInstantiation, Secret, SecretPair
from repro.core.laplace import Mechanism
from repro.core.models import DataModel
from repro.core.queries import Query, signature_is_process_local
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.metrics import w_infinity
from repro.exceptions import EnumerationError, ValidationError


def conditional_output_distribution(
    model: DataModel, query: Query, secret: Secret
) -> DiscreteDistribution:
    """``P(F(X) = . | secret, theta)`` by enumerating the model's support."""
    pairs = []
    total = 0.0
    for row, prob in model.support():
        if row[secret.index] == secret.value:
            pairs.append((float(query(np.asarray(row))), prob))
            total += prob
    if total <= 0:
        raise ValidationError(f"secret {secret.describe()} has zero probability under theta")
    return DiscreteDistribution.from_pairs((v, p / total) for v, p in pairs)


@dataclass(frozen=True)
class WassersteinDetail:
    """One (pair, theta) evaluation inside the Wasserstein supremum."""

    pair: SecretPair
    theta_index: int
    distance: float


def wasserstein_bound(
    instantiation: PufferfishInstantiation,
    query: Query,
    *,
    return_details: bool = False,
) -> float | tuple[float, list[WassersteinDetail]]:
    """The supremum ``W`` of Algorithm 1 for a scalar query.

    Iterates all admissible secret pairs and all models, exactly as the
    algorithm's loop does.
    """
    if query.output_dim != 1:
        raise ValidationError("the Wasserstein Mechanism is defined for scalar queries")
    details: list[WassersteinDetail] = []
    supremum = 0.0
    for theta_index, model in enumerate(instantiation.models):
        # Conditional output distributions are reused across the pairs that
        # share a secret, so cache them per model.
        cache: dict[Secret, DiscreteDistribution] = {}

        def conditional(secret: Secret, model=model, cache=cache) -> DiscreteDistribution:
            if secret not in cache:
                cache[secret] = conditional_output_distribution(model, query, secret)
            return cache[secret]

        for pair in instantiation.admissible_pairs(model):
            distance = w_infinity(conditional(pair.left), conditional(pair.right))
            supremum = max(supremum, distance)
            if return_details:
                details.append(WassersteinDetail(pair, theta_index, distance))
    if return_details:
        return supremum, details
    return supremum


class WassersteinMechanism(Mechanism):
    """Algorithm 1: release ``F(D) + Lap(W / epsilon)``.

    Parameters
    ----------
    instantiation:
        The Pufferfish framework ``(S, Q, Theta)`` with enumerable models.
    epsilon:
        Privacy parameter.
    """

    name = "Wasserstein"

    def __init__(self, instantiation: PufferfishInstantiation, epsilon: float) -> None:
        super().__init__(epsilon)
        self.instantiation = instantiation
        self._bound_cache: dict[tuple, float] = {}
        # Bounds restored from a serialized snapshot, keyed by the repr of
        # the query signature (tuples do not survive JSON round-trips).
        self._warm_bounds: dict[str, float] = {}

    def calibration_fingerprint(self) -> tuple:
        """``W`` depends on the full framework ``(S, Q, Theta)`` and nothing
        else besides the query, so the instantiation's content hash plus
        epsilon identifies every calibration."""
        return ("Wasserstein", self.epsilon, self.instantiation.fingerprint())

    def wasserstein_distance_bound(self, query: Query) -> float:
        """The supremum ``W`` for ``query`` (cached by query signature, so
        equal queries share the enumeration even across query objects)."""
        key = query.signature()
        if key not in self._bound_cache:
            if repr(key) in self._warm_bounds:
                self._bound_cache[key] = self._warm_bounds[repr(key)]
            else:
                self._bound_cache[key] = float(wasserstein_bound(self.instantiation, query))
        return self._bound_cache[key]

    def export_calibration_state(self) -> dict:
        """JSON-safe snapshot of the computed ``W`` bounds (see
        :meth:`repro.core.mqm_chain.MQMExact.export_calibration_state`).

        Bounds for process-local query signatures (anonymous callables) are
        excluded: their tokens are only meaningful inside this process, so
        persisting them could alias a *different* lambda in another process
        to this process's bound."""
        bounds = dict(self._warm_bounds)
        bounds.update(
            (repr(key), float(value))
            for key, value in self._bound_cache.items()
            if not signature_is_process_local(key)
        )
        return {"bounds": sorted(bounds.items())}

    def warm_start(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_calibration_state`.
        Only valid under an identical :meth:`calibration_fingerprint`."""
        for key_repr, value in state.get("bounds", []):
            self._warm_bounds[str(key_repr)] = float(value)

    def noise_scale(self, query: Query, data: np.ndarray) -> float:
        return self.wasserstein_distance_bound(query) / self.epsilon

    def scale_details(self, query: Query, data: np.ndarray) -> dict:
        return {"wasserstein_bound": self.wasserstein_distance_bound(query)}


def group_sensitivity(
    query: Query,
    n_values: int,
    n_records: int,
    groups: Sequence[Sequence[int]],
    *,
    max_enumeration: int = 2_000_000,
) -> float:
    """Exact global sensitivity of ``query`` in a group-DP framework.

    Definition B.1: ``Delta_G F = max_k max |F(x) - F(y)|`` over database
    pairs ``(x, y)`` that differ only in the records of group ``G_k``.
    Computed by brute-force enumeration over the discrete domain
    ``{0..n_values-1}^n_records`` — intended for the small instantiations
    used to validate Theorem 3.3.
    """
    if n_values**n_records > max_enumeration:
        raise EnumerationError(
            f"group sensitivity enumeration of {n_values}**{n_records} databases "
            f"exceeds the cap of {max_enumeration}"
        )
    indices = list(range(n_records))
    sensitivity = 0.0
    for group in groups:
        group = sorted(set(group))
        complement = [i for i in indices if i not in group]
        # Group databases by the values outside the group; within each class
        # record the query range (max - min) over group assignments.
        extremes: dict[tuple[int, ...], tuple[float, float]] = {}
        for assignment in itertools.product(range(n_values), repeat=n_records):
            value = float(query(np.asarray(assignment)))
            key = tuple(assignment[i] for i in complement)
            low, high = extremes.get(key, (value, value))
            extremes[key] = (min(low, value), max(high, value))
        for low, high in extremes.values():
            sensitivity = max(sensitivity, high - low)
    return sensitivity


def independence_groups(models: Sequence[DataModel], *, tol: float = 1e-12) -> list[list[int]]:
    """Partition record indices into groups that are mutually independent
    under every model in ``Theta`` (the construction of Appendix B.1).

    Two records are joined when their joint distribution deviates from the
    product of marginals under any model; groups are the connected
    components of that relation.
    """
    if not models:
        raise ValidationError("need at least one model")
    n = models[0].n_records
    adjacency = np.zeros((n, n), dtype=bool)
    for model in models:
        rows = []
        probs = []
        for row, prob in model.support():
            rows.append(row)
            probs.append(prob)
        arr = np.asarray(rows)
        weights = np.asarray(probs)
        for i in range(n):
            for j in range(i + 1, n):
                if adjacency[i, j]:
                    continue
                if _dependent(arr[:, i], arr[:, j], weights, tol):
                    adjacency[i, j] = adjacency[j, i] = True
    groups: list[list[int]] = []
    seen: set[int] = set()
    for start in range(n):
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in np.flatnonzero(adjacency[node]):
                if nxt not in component:
                    component.add(int(nxt))
                    frontier.append(int(nxt))
        seen |= component
        groups.append(sorted(component))
    return groups


def _dependent(col_i: np.ndarray, col_j: np.ndarray, weights: np.ndarray, tol: float) -> bool:
    values_i = np.unique(col_i)
    values_j = np.unique(col_j)
    for a in values_i:
        for b in values_j:
            joint = float(weights[(col_i == a) & (col_j == b)].sum())
            product = float(weights[col_i == a].sum()) * float(weights[col_j == b].sum())
            if abs(joint - product) > tol:
                return True
    return False
