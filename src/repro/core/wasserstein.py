"""The Wasserstein Mechanism (Algorithm 1) — the paper's first contribution.

For every admissible secret pair ``(s_i, s_j)`` and every ``theta`` in
``Theta`` the mechanism computes the conditional query-output distributions
``mu_{i,theta} = P(F(X) | s_i, theta)`` and ``mu_{j,theta}``, takes the
supremum ``W`` of their infinity-Wasserstein distances, and releases
``F(D) + Lap(W / epsilon)``.

Theorem 3.2 shows this is epsilon-Pufferfish private; Theorem 3.3 shows ``W``
never exceeds the global sensitivity of the corresponding group-DP framework
(we expose :func:`group_sensitivity` so tests can verify the inequality).

The computation enumerates model supports — the cost the paper attributes to
the mechanism — but does so *tensorized*: each model's support is
materialized once into flat arrays, the query is evaluated over all
realizations in one batched pass (:meth:`repro.core.queries.Query.
evaluate_batch`), and every conditional output distribution is a boolean
mask plus a ``bincount`` over the pooled sorted output support
(:class:`ModelOutputTable`).  W-infinity between two conditionals is then a
pure CDF computation on that shared support
(:func:`repro.distributions.metrics.w_infinity_pooled`).  Realistic chains
should still use :mod:`repro.core.mqm_chain`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.framework import PufferfishInstantiation, Secret, SecretPair
from repro.core.laplace import Mechanism
from repro.core.models import DataModel
from repro.core.queries import Query, signature_is_process_local
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.metrics import w_infinity_pooled
from repro.exceptions import EnumerationError, ValidationError


class ModelOutputTable:
    """The vectorized substrate of Algorithm 1 for one ``(model, query)``.

    Materializes the model's support as a record matrix and probability
    vector, evaluates the scalar query over every realization in one
    batched pass, and pools the outputs into a sorted unique support.  A
    conditional output distribution ``P(F(X) | X_i = a, theta)`` is then a
    boolean mask over rows and a ``bincount`` onto the pooled atoms — no
    re-enumeration per secret, which is where the seed spent its time
    (one full generator walk per secret per model).
    """

    def __init__(self, model: DataModel, query: Query) -> None:
        if query.output_dim != 1:
            raise ValidationError("ModelOutputTable is defined for scalar queries")
        rows: list = []
        probs: list = []
        for row, prob in model.support():
            rows.append(row)
            probs.append(prob)
        if not rows:
            raise ValidationError("model support is empty")
        self.rows = np.asarray(rows, dtype=np.int64)
        self.probs = np.asarray(probs, dtype=float)
        outputs = np.asarray(query.evaluate_batch(self.rows), dtype=float)
        #: Sorted unique query outputs — the pooled support every
        #: conditional distribution lives on.
        self.atoms, self._inverse = np.unique(outputs, return_inverse=True)

    def conditional_weights(self, secret: Secret) -> np.ndarray:
        """``P(F(X) = atoms | secret, theta)`` as a vector on the pooled
        support (zero entries where the conditional puts no mass).

        Raises :class:`ValidationError` when the secret has zero
        probability, exactly as the enumeration path did.
        """
        mask = self.rows[:, secret.index] == secret.value
        total = float(self.probs[mask].sum())
        if total <= 0:
            raise ValidationError(
                f"secret {secret.describe()} has zero probability under theta"
            )
        return (
            np.bincount(
                self._inverse[mask],
                weights=self.probs[mask],
                minlength=self.atoms.size,
            )
            / total
        )

    def conditional_distribution(self, secret: Secret) -> DiscreteDistribution:
        """:meth:`conditional_weights` packaged as a
        :class:`~repro.distributions.discrete.DiscreteDistribution`."""
        weights = self.conditional_weights(secret)
        keep = weights > 0
        return DiscreteDistribution(self.atoms[keep], weights[keep] / weights[keep].sum())


def conditional_output_distribution(
    model: DataModel, query: Query, secret: Secret, *, table: ModelOutputTable | None = None
) -> DiscreteDistribution:
    """``P(F(X) = . | secret, theta)`` over the model's support.

    Pass a prebuilt :class:`ModelOutputTable` to share the support
    materialization across secrets (as :func:`wasserstein_bound` does); a
    bare call builds one table for this evaluation.
    """
    if table is None:
        table = ModelOutputTable(model, query)
    return table.conditional_distribution(secret)


@dataclass(frozen=True)
class WassersteinDetail:
    """One (pair, theta) evaluation inside the Wasserstein supremum."""

    pair: SecretPair
    theta_index: int
    distance: float


def model_supremum(
    instantiation: PufferfishInstantiation,
    query: Query,
    theta_index: int,
    details: list[WassersteinDetail] | None = None,
) -> float:
    """The per-theta supremum of Algorithm 1's loop, tensorized.

    One :class:`ModelOutputTable` per model; each admissible pair costs two
    (cached) conditional weight vectors and one
    :func:`~repro.distributions.metrics.w_infinity_pooled` CDF pass.  This
    is also the body of a ``wasserstein-model`` calibration shard
    (:mod:`repro.parallel.shards`) — serial and sharded runs execute exactly
    this function, which is what keeps them bit-identical.
    """
    model = instantiation.models[theta_index]
    table = ModelOutputTable(model, query)
    cache: dict[Secret, np.ndarray] = {}

    def conditional(secret: Secret) -> np.ndarray:
        if secret not in cache:
            cache[secret] = table.conditional_weights(secret)
        return cache[secret]

    supremum = 0.0
    for pair in instantiation.admissible_pairs(model):
        distance = w_infinity_pooled(
            table.atoms, conditional(pair.left), conditional(pair.right)
        )
        supremum = max(supremum, distance)
        if details is not None:
            details.append(WassersteinDetail(pair, theta_index, distance))
    return float(supremum)


def wasserstein_bound(
    instantiation: PufferfishInstantiation,
    query: Query,
    *,
    return_details: bool = False,
) -> float | tuple[float, list[WassersteinDetail]]:
    """The supremum ``W`` of Algorithm 1 for a scalar query.

    Iterates all admissible secret pairs and all models, exactly as the
    algorithm's loop does — each model through :func:`model_supremum`.
    """
    if query.output_dim != 1:
        raise ValidationError("the Wasserstein Mechanism is defined for scalar queries")
    details: list[WassersteinDetail] | None = [] if return_details else None
    supremum = 0.0
    for theta_index in range(len(instantiation.models)):
        supremum = max(supremum, model_supremum(instantiation, query, theta_index, details))
    if return_details:
        return supremum, details
    return supremum


class WassersteinMechanism(Mechanism):
    """Algorithm 1: release ``F(D) + Lap(W / epsilon)``.

    Parameters
    ----------
    instantiation:
        The Pufferfish framework ``(S, Q, Theta)`` with enumerable models.
    epsilon:
        Privacy parameter.
    """

    name = "Wasserstein"

    def __init__(self, instantiation: PufferfishInstantiation, epsilon: float) -> None:
        super().__init__(epsilon)
        self.instantiation = instantiation
        self._bound_cache: dict[tuple, float] = {}
        # Bounds restored from a serialized snapshot, keyed by the repr of
        # the query signature (tuples do not survive JSON round-trips).
        self._warm_bounds: dict[str, float] = {}

    def calibration_fingerprint(self) -> tuple:
        """``W`` depends on the full framework ``(S, Q, Theta)`` and nothing
        else besides the query, so the instantiation's content hash plus
        epsilon identifies every calibration."""
        return ("Wasserstein", self.epsilon, self.instantiation.fingerprint())

    def wasserstein_distance_bound(self, query: Query) -> float:
        """The supremum ``W`` for ``query`` (cached by query signature, so
        equal queries share the enumeration even across query objects)."""
        key = query.signature()
        if key not in self._bound_cache:
            if repr(key) in self._warm_bounds:
                self._bound_cache[key] = self._warm_bounds[repr(key)]
            else:
                self._bound_cache[key] = float(wasserstein_bound(self.instantiation, query))
        return self._bound_cache[key]

    def export_calibration_state(self) -> dict:
        """JSON-safe snapshot of the computed ``W`` bounds (see
        :meth:`repro.core.mqm_chain.MQMExact.export_calibration_state`).

        Bounds for process-local query signatures (anonymous callables) are
        excluded: their tokens are only meaningful inside this process, so
        persisting them could alias a *different* lambda in another process
        to this process's bound."""
        bounds = dict(self._warm_bounds)
        bounds.update(
            (repr(key), float(value))
            for key, value in self._bound_cache.items()
            if not signature_is_process_local(key)
        )
        return {"bounds": sorted(bounds.items())}

    def warm_start(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_calibration_state`.
        Only valid under an identical :meth:`calibration_fingerprint`."""
        for key_repr, value in state.get("bounds", []):
            self._warm_bounds[str(key_repr)] = float(value)

    def noise_scale(self, query: Query, data: np.ndarray) -> float:
        return self.wasserstein_distance_bound(query) / self.epsilon

    def scale_details(self, query: Query, data: np.ndarray) -> dict:
        return {"wasserstein_bound": self.wasserstein_distance_bound(query)}


def mixed_radix_assignments(n_values: int, n_records: int) -> np.ndarray:
    """All of ``{0..n_values-1}^n_records`` as an ``(n_values^n_records,
    n_records)`` integer matrix, in lexicographic (``itertools.product``)
    order — the vectorized replacement for per-assignment tuple loops."""
    total = n_values**n_records
    radix = n_values ** np.arange(n_records - 1, -1, -1, dtype=np.int64)
    codes = np.arange(total, dtype=np.int64)
    return (codes[:, None] // radix[None, :]) % n_values


def group_sensitivity(
    query: Query,
    n_values: int,
    n_records: int,
    groups: Sequence[Sequence[int]],
    *,
    max_enumeration: int = 2_000_000,
) -> float:
    """Exact global sensitivity of ``query`` in a group-DP framework.

    Definition B.1: ``Delta_G F = max_k max |F(x) - F(y)|`` over database
    pairs ``(x, y)`` that differ only in the records of group ``G_k``.
    Computed over the full discrete domain ``{0..n_values-1}^n_records``,
    vectorized: one mixed-radix assignment matrix, one batched query
    evaluation (shared by *all* groups — the seed re-evaluated the query
    for every group), and per group a mixed-radix class key over the
    complement records with ``np.ufunc.reduceat`` grouped min/max.
    """
    if n_values**n_records > max_enumeration:
        raise EnumerationError(
            f"group sensitivity enumeration of {n_values}**{n_records} databases "
            f"exceeds the cap of {max_enumeration}"
        )
    assignments = mixed_radix_assignments(n_values, n_records)
    values = np.asarray(query.evaluate_batch(assignments), dtype=float)
    indices = list(range(n_records))
    sensitivity = 0.0
    for group in groups:
        group = sorted(set(group))
        complement = [i for i in indices if i not in group]
        if not complement:
            # The group covers every record: one class, full query range.
            sensitivity = max(sensitivity, float(values.max() - values.min()))
            continue
        radix = n_values ** np.arange(len(complement) - 1, -1, -1, dtype=np.int64)
        keys = assignments[:, complement] @ radix
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_values = values[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        highs = np.maximum.reduceat(sorted_values, starts)
        lows = np.minimum.reduceat(sorted_values, starts)
        sensitivity = max(sensitivity, float((highs - lows).max()))
    return sensitivity


def independence_groups(models: Sequence[DataModel], *, tol: float = 1e-12) -> list[list[int]]:
    """Partition record indices into groups that are mutually independent
    under every model in ``Theta`` (the construction of Appendix B.1).

    Two records are joined when their joint distribution deviates from the
    product of marginals under any model; groups are the connected
    components of that relation.
    """
    if not models:
        raise ValidationError("need at least one model")
    n = models[0].n_records
    adjacency = np.zeros((n, n), dtype=bool)
    for model in models:
        rows = []
        probs = []
        for row, prob in model.support():
            rows.append(row)
            probs.append(prob)
        arr = np.asarray(rows)
        weights = np.asarray(probs)
        for i in range(n):
            for j in range(i + 1, n):
                if adjacency[i, j]:
                    continue
                if _dependent(arr[:, i], arr[:, j], weights, tol):
                    adjacency[i, j] = adjacency[j, i] = True
    groups: list[list[int]] = []
    seen: set[int] = set()
    for start in range(n):
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in np.flatnonzero(adjacency[node]):
                if nxt not in component:
                    component.add(int(nxt))
                    frontier.append(int(nxt))
        seen |= component
        groups.append(sorted(component))
    return groups


def _dependent(col_i: np.ndarray, col_j: np.ndarray, weights: np.ndarray, tol: float) -> bool:
    values_i = np.unique(col_i)
    values_j = np.unique(col_j)
    for a in values_i:
        for b in values_j:
            joint = float(weights[(col_i == a) & (col_j == b)].sum())
            product = float(weights[col_i == a].sum()) * float(weights[col_j == b].sum())
            if abs(joint - product) > tol:
                return True
    return False
