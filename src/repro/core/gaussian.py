"""The Gaussian Markov Quilt Mechanism (Rényi-Pufferfish additive noise).

Pierquin et al. ("Rényi Pufferfish Privacy", PAPERS.md) show that general
additive-noise mechanisms — Gaussian in particular — satisfy Pufferfish
guarantees when the noise covers the *shift* a secret change induces on the
query answer, with the remaining correlation leakage handled exactly as in
the Markov Quilt Mechanism.  :class:`GaussianMarkovQuiltMechanism` is that
construction on the paper's Algorithm 2 decomposition:

* the quilt search, max-influence computation (the PR 3 tensorized
  variable-elimination kernels), memo/warm-start plumbing, and per-node
  parallel shards are inherited verbatim from
  :class:`~repro.core.markov_quilt.MarkovQuiltMechanism`;
* only the per-quilt *score* changes: an admissible quilt ``(X_N, X_Q,
  X_R)`` with max-influence ``e < epsilon`` shifts the query answer by at
  most ``L * card(X_N)``, and a zero-concentrated-DP calibration picks the
  Gaussian standard deviation ``sigma = L * card(X_N) / sqrt(2 * rho)``
  with ``rho = rho(epsilon - e, delta)`` such that the Gaussian shift
  accounts for ``(epsilon - e, delta)`` and the quilt leakage for the
  remaining ``e`` — together ``(epsilon, delta)``-Pufferfish per release.

The zCDP calibration (Bun–Steinke:  ``rho``-zCDP implies ``(rho + 2 *
sqrt(rho * log(1/delta)), delta)``-DP, inverted in closed form by
:func:`gaussian_rho`) is valid for **every** ``epsilon > 0`` — unlike the
classical ``sqrt(2 log(1.25/delta))/epsilon`` mechanism, which requires
``epsilon < 1`` and would silently under-noise at the paper's larger
privacy levels.

Why bother with Gaussian noise at all: each release's Rényi cost curve
(:meth:`GaussianMarkovQuiltMechanism.rdp_curve`) is quadratic in the order
with **no pure-epsilon floor**, so under the
:class:`~repro.core.accounting.RenyiAccountant` a stream of Gaussian
releases composes at the strong-composition rate from the first release —
the regime where one budget serves multiples of what linear accounting
admits.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.distributions.bayesnet import DiscreteBayesianNetwork, MarkovQuilt
from repro.exceptions import PrivacyParameterError


def gaussian_rho(epsilon: float, delta: float) -> float:
    """The zCDP level ``rho`` whose ``(epsilon(rho, delta), delta)``
    conversion equals ``epsilon``: ``(sqrt(log(1/delta) + epsilon) -
    sqrt(log(1/delta)))^2`` (the closed-form inverse of
    :func:`rho_to_epsilon`)."""
    if epsilon <= 0:
        raise PrivacyParameterError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise PrivacyParameterError(f"delta must be in (0, 1), got {delta}")
    log_term = math.log(1.0 / delta)
    return (math.sqrt(log_term + epsilon) - math.sqrt(log_term)) ** 2


def rho_to_epsilon(rho: float, delta: float) -> float:
    """Bun–Steinke conversion: ``rho``-zCDP implies ``(rho + 2 * sqrt(rho *
    log(1/delta)), delta)``-DP."""
    if rho < 0:
        raise PrivacyParameterError(f"rho must be >= 0, got {rho}")
    if not 0.0 < delta < 1.0:
        raise PrivacyParameterError(f"delta must be in (0, 1), got {delta}")
    return rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))


class GaussianMarkovQuiltMechanism(MarkovQuiltMechanism):
    """Algorithm 2 with Gaussian noise and an ``(epsilon, delta)`` target.

    Parameters are those of
    :class:`~repro.core.markov_quilt.MarkovQuiltMechanism` plus ``delta``,
    the per-release failure probability.  The released noise is
    ``N(0, (L * sigma_max)^2)`` where ``sigma_max`` maximizes the per-node
    Gaussian scores over the same quilt candidates the Laplace variant
    searches (the max-influence values are identical — only the score
    formula differs — so calibrations share all the expensive inference
    work and the per-node parallel shard decomposition).

    Composition: under the linear accountant, K releases compose to
    ``(K * epsilon, K * delta)`` (basic composition — the accountant's
    ledger tracks the epsilon part).  Under the
    :class:`~repro.core.accounting.RenyiAccountant` the mechanism's own
    :meth:`rdp_curve` is charged instead, which composes at the
    strong-composition rate.  Both require the fixed-active-quilt condition
    the accountants enforce through quilt signatures.
    """

    name = "GaussianMarkovQuilt"
    noise_kind = "gaussian"

    def __init__(
        self,
        networks: Sequence[DiscreteBayesianNetwork],
        epsilon: float,
        *,
        delta: float = 1e-6,
        quilt_sets: "Mapping[str, Sequence[MarkovQuilt]] | None" = None,
        quilt_generator=None,
        max_radius: int | None = None,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise PrivacyParameterError(f"delta must be in (0, 1), got {delta}")
        # Set before super().__init__ so any eager score computation sees it.
        self.delta = float(delta)
        super().__init__(
            networks,
            epsilon,
            quilt_sets=quilt_sets,
            quilt_generator=quilt_generator,
            max_radius=max_radius,
        )

    # -- the one hook that differs from the Laplace MQM -------------------
    def _quilt_score(self, quilt: MarkovQuilt, influence: float) -> float:
        """Gaussian score: ``card(X_N) / sqrt(2 * rho(epsilon - e, delta))``.

        The quilt's leakage ``e`` spends part of the epsilon target; the
        Gaussian noise must deliver ``(epsilon - e, delta)`` against the
        ``L * card(X_N)`` shift, which the zCDP calibration prices at
        ``sigma = shift / sqrt(2 * rho)``.
        """
        return quilt.card_nearby() / math.sqrt(
            2.0 * gaussian_rho(self.epsilon - influence, self.delta)
        )

    def calibration_fingerprint(self) -> tuple:
        """The Laplace MQM fingerprint re-tagged with the class and delta —
        a Gaussian calibration must never alias a Laplace one for the same
        Theta (the scales differ), nor two deltas each other."""
        base = super().calibration_fingerprint()
        return ("GaussianMarkovQuilt", float(self.delta)) + base[1:]

    def scale_details(self, query, data) -> dict:
        details = super().scale_details(query, data)
        snr, e_sup = self._rdp_summary()
        details["delta"] = self.delta
        details["rdp"] = {"max_snr": snr, "e_sup": e_sup}
        return details

    # -- Rényi cost curve --------------------------------------------------
    def _rdp_profile(self) -> list[tuple[float, float]]:
        """Per node: ``(shift/sigma ratio, active-quilt leakage e)``.

        The ratio is query-independent — the released standard deviation is
        ``L * sigma_max`` against a shift of ``L * card(X_N)``, so the
        Lipschitz constant cancels.  The leakage is recovered from the
        active quilt's score in closed form (the score inverts to
        ``rho``, and ``rho`` to ``epsilon - e``), so no max-influence
        computation is repeated here.
        """
        sigma = self.sigma_max()
        profile = []
        for node in self.reference.nodes:
            score, quilt = self.sigma_for_node(node)
            card = float(quilt.card_nearby())
            rho = card * card / (2.0 * score * score)
            leakage = min(
                self.epsilon, max(0.0, self.epsilon - rho_to_epsilon(rho, self.delta))
            )
            profile.append((card / sigma, leakage))
        return profile

    def _rdp_summary(self) -> tuple[float, float]:
        profile = self._rdp_profile()
        return (
            max(ratio for ratio, _ in profile),
            max(leakage for _, leakage in profile),
        )

    def rdp_curve(self, orders: np.ndarray) -> np.ndarray:
        """Per-release Rényi cost at each order ``alpha``.

        For a secret pair at node ``i``: the released conditionals are
        Gaussian mixtures whose Rényi divergence splits (the shift-reduction
        argument of Pierquin et al.) into the Gaussian shift term ``alpha *
        (shift_i / sigma)^2 / 2`` plus the quilt's max-divergence leakage
        ``e_i``; the curve takes the max over nodes order-by-order.  At
        ``alpha = inf`` the Gaussian term is unbounded — the cost is
        ``inf``, which the Rényi accountant carries gracefully (the finite
        orders always dominate the conversion for Gaussian releases).
        """
        orders = np.asarray(orders, dtype=float)
        profile = self._rdp_profile()
        ratios = np.array([ratio for ratio, _ in profile])
        leakages = np.array([leakage for _, leakage in profile])
        with np.errstate(invalid="ignore"):
            per_node = 0.5 * orders[None, :] * (ratios**2)[:, None] + leakages[:, None]
        costs = per_node.max(axis=0)
        costs[np.isinf(orders)] = math.inf
        return costs
