"""The Pufferfish privacy framework ``(S, Q, Theta)``.

Definition 2.1: a mechanism ``M`` is epsilon-Pufferfish private in framework
``(S, Q, Theta)`` when for every ``theta in Theta``, every secret pair
``(s_i, s_j) in Q`` with positive probability under ``theta``, and every
output ``w``::

    e^-eps <= P(M(X) = w | s_i, theta) / P(M(X) = w | s_j, theta) <= e^eps

This module provides the framework containers plus the *entrywise*
instantiation of Section 4.1 (secrets "record i has value a", pairs over all
value pairs at each index) used by both the flu example and the Markov-chain
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.models import DataModel


@dataclass(frozen=True)
class Secret:
    """The event "record ``index`` has value ``value``" (``s_i^a``).

    ``index`` is 0-based.  ``label`` is cosmetic and used in reports.
    """

    index: int
    value: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValidationError(f"secret index must be >= 0, got {self.index}")

    def describe(self) -> str:
        """Human-readable rendering."""
        if self.label:
            return self.label
        return f"X_{self.index} = {self.value}"


@dataclass(frozen=True)
class SecretPair:
    """A pair of secrets that must be indistinguishable (an element of Q)."""

    left: Secret
    right: Secret

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValidationError("a secret pair must contain two distinct secrets")

    def describe(self) -> str:
        """Human-readable rendering."""
        return f"({self.left.describe()}) vs ({self.right.describe()})"


class PufferfishInstantiation:
    """A concrete Pufferfish framework ``(S, Q, Theta)``.

    Parameters
    ----------
    secrets:
        The set ``S``.
    pairs:
        The set ``Q`` (each pair's secrets need not be listed in ``secrets``;
        they are added automatically).
    models:
        The class ``Theta`` as a sequence of :class:`~repro.core.models.DataModel`
        objects, each of which can compute conditional distributions of the
        data given a secret.
    """

    def __init__(
        self,
        secrets: Iterable[Secret],
        pairs: Iterable[SecretPair],
        models: Sequence["DataModel"],
    ) -> None:
        self.secrets: tuple[Secret, ...] = tuple(secrets)
        self.pairs: tuple[SecretPair, ...] = tuple(pairs)
        self.models: tuple["DataModel", ...] = tuple(models)
        if not self.pairs:
            raise ValidationError("a Pufferfish instantiation needs at least one secret pair")
        if not self.models:
            raise ValidationError("a Pufferfish instantiation needs at least one model in Theta")
        secret_set = set(self.secrets)
        for pair in self.pairs:
            secret_set.add(pair.left)
            secret_set.add(pair.right)
        self.secrets = tuple(sorted(secret_set, key=lambda s: (s.index, s.value)))

    def admissible_pairs(self, model: "DataModel") -> Iterable[SecretPair]:
        """Pairs whose both secrets have positive probability under ``model``
        (Definition 2.1 only constrains those)."""
        for pair in self.pairs:
            if model.secret_probability(pair.left) > 0 and model.secret_probability(pair.right) > 0:
                yield pair

    def fingerprint(self) -> tuple:
        """Content hash of ``(S, Q, Theta)`` for calibration caching.

        Models are hashed through their support enumeration (the same
        quantity the Wasserstein Mechanism consumes), so two instantiations
        with equal fingerprints produce identical ``W`` bounds.  The
        enumeration is no more expensive than one scale computation, and the
        result is memoized (the instantiation is immutable), so repeated
        cache lookups against one instantiation pay it once.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        import hashlib

        digest = hashlib.sha256()
        for secret in self.secrets:
            digest.update(f"s:{secret.index}:{secret.value};".encode())
        for pair in self.pairs:
            digest.update(
                f"q:{pair.left.index}:{pair.left.value}:"
                f"{pair.right.index}:{pair.right.value};".encode()
            )
        for model in self.models:
            digest.update(b"m:")
            for row, prob in model.support():
                digest.update(",".join(str(int(v)) for v in row).encode())
                digest.update(f"={prob!r};".encode())
        self._fingerprint = ("PufferfishInstantiation", digest.hexdigest())
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PufferfishInstantiation(secrets={len(self.secrets)}, "
            f"pairs={len(self.pairs)}, models={len(self.models)})"
        )


def entrywise_secrets(n_records: int, n_values: int) -> list[Secret]:
    """The secret set of Section 4.1: every value of every record."""
    check_positive(n_records, "n_records")
    check_positive(n_values, "n_values")
    return [Secret(i, a) for i in range(n_records) for a in range(n_values)]


def entrywise_pairs(n_records: int, n_values: int) -> list[SecretPair]:
    """The secret-pair set of Section 4.1: all ordered value pairs per record.

    Pufferfish's inequality is two-sided, so unordered pairs suffice; we emit
    each unordered pair once.
    """
    pairs = []
    for i in range(n_records):
        for a in range(n_values):
            for b in range(a + 1, n_values):
                pairs.append(SecretPair(Secret(i, a), Secret(i, b)))
    return pairs


def entrywise_instantiation(
    n_records: int,
    n_values: int,
    models: Sequence["DataModel"],
) -> PufferfishInstantiation:
    """The full Section 4.1 instantiation for ``n_records`` records each
    taking ``n_values`` values, with distribution class ``models``."""
    return PufferfishInstantiation(
        entrywise_secrets(n_records, n_values),
        entrywise_pairs(n_records, n_values),
        models,
    )
