"""Robustness against close adversaries (Theorem 2.4).

If a mechanism is epsilon-Pufferfish private for ``(S, Q, Theta)`` but the
adversary believes ``theta_tilde`` outside ``Theta``, the likelihood-ratio
guarantee degrades to ``epsilon + 2 * Delta`` where::

    Delta = inf_{theta in Theta} max_{s in S}
            max( D_inf(theta_tilde|s || theta|s), D_inf(theta|s || theta_tilde|s) )

i.e. the smallest (over Theta) worst-case symmetric max-divergence between
the *conditional* beliefs given each secret.  The conditioning matters: the
paper's worked example shows an unconditional distance of ``log 90`` growing
to ``log 91.0962`` after conditioning.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.framework import Secret
from repro.core.models import DataModel
from repro.exceptions import ValidationError

#: Probabilities below this threshold count as zero.
ATOL = 1e-12


def _conditional_row_table(model: DataModel, secret: Secret) -> dict[tuple[int, ...], float]:
    """``P(X = row | secret, theta)`` as a dictionary over record tuples."""
    table: dict[tuple[int, ...], float] = {}
    total = 0.0
    for row, prob in model.support():
        if row[secret.index] == secret.value and prob > 0:
            table[row] = table.get(row, 0.0) + prob
            total += prob
    if total <= 0:
        raise ValidationError(f"secret {secret.describe()} has zero probability under the model")
    return {row: p / total for row, p in table.items()}


def _table_max_divergence(
    p: dict[tuple[int, ...], float], q: dict[tuple[int, ...], float]
) -> float:
    """``D_inf(p || q)`` over dictionaries keyed by database realizations."""
    supremum = -np.inf
    for row, mass in p.items():
        if mass <= ATOL:
            continue
        other = q.get(row, 0.0)
        if other <= ATOL:
            return float("inf")
        supremum = max(supremum, float(np.log(mass / other)))
    return max(supremum, 0.0)


def conditional_distance(
    theta_tilde: DataModel,
    theta: DataModel,
    secrets: Iterable[Secret],
) -> float:
    """``max_s max(D_inf(tilde|s || theta|s), D_inf(theta|s || tilde|s))``.

    Secrets with zero probability under either belief are skipped — the
    Pufferfish guarantee never conditions on them.
    """
    worst = 0.0
    for secret in secrets:
        if (
            theta_tilde.secret_probability(secret) <= ATOL
            or theta.secret_probability(secret) <= ATOL
        ):
            continue
        p = _conditional_row_table(theta_tilde, secret)
        q = _conditional_row_table(theta, secret)
        worst = max(worst, _table_max_divergence(p, q), _table_max_divergence(q, p))
        if np.isinf(worst):
            return float("inf")
    return worst


def adversary_distance(
    theta_tilde: DataModel,
    family: Sequence[DataModel],
    secrets: Iterable[Secret],
) -> float:
    """The ``Delta`` of Theorem 2.4 for an enumerable belief and class."""
    secrets = list(secrets)
    if not family:
        raise ValidationError("Theta must contain at least one model")
    return min(conditional_distance(theta_tilde, theta, secrets) for theta in family)


def effective_epsilon(epsilon: float, delta: float) -> float:
    """The degraded guarantee ``epsilon + 2 * Delta`` of Theorem 2.4."""
    if epsilon <= 0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if delta < 0:
        raise ValidationError(f"Delta must be non-negative, got {delta}")
    return float(epsilon + 2.0 * delta)


def chain_adversary_distance(
    theta_tilde,
    family,
    length: int,
) -> float:
    """Theorem 2.4's ``Delta`` for Markov-chain beliefs.

    Convenience wrapper: enumerates length-``length`` prefixes of the
    adversary's chain ``theta_tilde`` and of every chain in ``family``
    (a :class:`~repro.distributions.chain_family.ChainFamily` or an iterable
    of chains), conditioning on every entrywise secret.  Enumeration is
    exponential in ``length``; use short prefixes — the distance for the
    prefix lower-bounds the full-sequence distance, and in practice the
    supremum is attained on short windows for mixing chains.
    """
    from repro.core.models import MarkovChainModel

    tilde_model = MarkovChainModel(theta_tilde, length).to_tabular()
    chains = family.chains() if hasattr(family, "chains") else family
    models = [MarkovChainModel(chain, length).to_tabular() for chain in chains]
    n_states = theta_tilde.n_states
    secrets = [Secret(i, v) for i in range(length) for v in range(n_states)]
    return adversary_distance(tilde_model, models, secrets)


def unconditional_distance(theta_tilde: DataModel, theta: DataModel) -> float:
    """Symmetric max-divergence between the *unconditioned* beliefs.

    Exposed because the paper's worked example contrasts it with the
    conditional distance; it is **not** the quantity Theorem 2.4 uses.
    """
    p: dict[tuple[int, ...], float] = {}
    q: dict[tuple[int, ...], float] = {}
    for row, prob in theta_tilde.support():
        p[row] = p.get(row, 0.0) + prob
    for row, prob in theta.support():
        q[row] = q.get(row, 0.0) + prob
    return max(_table_max_divergence(p, q), _table_max_divergence(q, p))
