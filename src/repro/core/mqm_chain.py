"""Markov Quilt Mechanism specialized to Markov chains (Section 4.4).

Two mechanisms are provided:

* :class:`MQMExact` (Algorithm 3) computes max-influence *exactly* through
  the decomposition of Eq. (5), searching the reduced quilt set of
  Lemma 4.6 — two-sided quilts ``{X_{i-a}, X_{i+b}}``, one-sided quilts
  ``{X_{i-a}}`` / ``{X_{i+b}}`` and the trivial quilt.  When the family
  allows every initial distribution, the marginal term is maximized in
  closed form over initials (Appendix C.4); when a chain starts from its
  stationary distribution, influences are index-independent and the search
  collapses per Lemma C.4.
* :class:`MQMApprox` (Algorithm 4) replaces the exact max-influence with the
  closed-form mixing bound of Lemma 4.8 (or the tighter reversible form of
  Lemma C.1), parameterized only by ``pi_min`` and the eigengap ``g`` of the
  family, with the ``a*`` middle-node fast path of Lemma 4.9.

Indexing: nodes are 0-based (``t = 0 .. T-1``); a two-sided quilt is
``(a, b)`` with ``a, b >= 1``, nearby-set cardinality ``a + b - 1``.  The
left-only quilt ``{X_{t-a}}`` has nearby cardinality ``T - 1 - t + a`` and
the right-only quilt ``{X_{t+b}}`` has ``t + b``; the trivial quilt has
``T``.  Under Eq. (5) the ordered-pair ``(x, x')`` decomposition is::

    log P(X_Q | X_t = x) / P(X_Q | X_t = x')
      = [log p_t(x') - log p_t(x)]                  (marginal term, M)
      + max_u log P^a(u, x) / P^a(u, x')            (past term, L_a)
      + max_v log P^b(x, v) / P^b(x', v)            (future term, R_b)
"""

from __future__ import annotations

import copy
import math
from typing import Iterable

import numpy as np

from repro.core.laplace import Mechanism
from repro.core.queries import Query
from repro.distributions.chain_family import ChainFamily, FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import EnumerationError, NotApplicableError, ValidationError

#: Probabilities below this threshold are structural zeros.
ATOL = 1e-12

#: Safety cap for the per-node tensor search (non-stationary chains).
MAX_TENSOR_CELLS = 50_000_000

#: Cap on the exact two-sided influence table edge (memory/time guard).
MAX_EXACT_WINDOW_LARGE_K = 1024
MAX_EXACT_WINDOW_SMALL_K = 4096

#: Cap on the number of candidate quilt extents per side for MQMApprox's
#: single middle-node fast path before switching to a geometric ladder.
MAX_APPROX_CANDIDATES = 2048

#: Candidate-ladder cap for the per-length table searches (multi-segment
#: datasets evaluate hundreds of lengths; restricting the quilt search to a
#: geometric ladder of extents keeps that linear-time while remaining a
#: valid — merely slightly conservative — mechanism).
TABLE_LADDER_CAP = 192


# ----------------------------------------------------------------------
# Low-level log-ratio tables
# ----------------------------------------------------------------------
def _sup_ratio_table(numer_logs: np.ndarray, denom_logs: np.ndarray) -> np.ndarray:
    """``out[x, x'] = max_u numer_logs[u, x] - denom_logs[u, x']``.

    ``-inf - -inf`` (both probabilities zero) contributes nothing and is
    mapped to ``-inf``; ``finite - -inf`` correctly becomes ``+inf`` (the
    ratio is unbounded, making the quilt unusable for that pair).
    """
    with np.errstate(invalid="ignore"):
        diff = numer_logs[:, :, None] - denom_logs[:, None, :]
    diff = np.where(np.isnan(diff), -np.inf, diff)
    return diff.max(axis=0)


def _masked_max(matrix: np.ndarray, valid: np.ndarray) -> float:
    """Max over entries where ``valid``; ``-inf`` when nothing is valid."""
    if not valid.any():
        return -np.inf
    return float(matrix[valid].max())


class _ChainTables:
    """Cached Eq. (5) term tables for one chain.

    ``left(a)`` and ``right(b)`` are the past/future ``(k, k)`` tables;
    ``marginal_term(t)`` is the marginal matrix (fixed-initial or the
    Appendix C.4 initial-free version); ``valid_pairs(t)`` is the boolean
    admissible ordered-pair mask at node ``t``.
    """

    def __init__(
        self, chain: MarkovChain, *, free_initial: bool, restrict_support: bool = True
    ) -> None:
        self.chain = chain
        self.free_initial = free_initial
        #: When true (default), the Eq. (5) maximum over the past value ``u``
        #: is restricted to values achievable at node ``t - a`` — sound per
        #: Definition 4.1 and slightly tighter than the paper's literal
        #: Eq. (5), which ranges over the whole state space.  Set false to
        #: match the paper's published numbers bit-for-bit (e.g. the running
        #: example's sigma = 13.0219 under theta_1, whose initial
        #: distribution makes state 1 unreachable at X_1).
        self.restrict_support = restrict_support
        self.k = chain.n_states
        self._left: dict[tuple[int, tuple[bool, ...] | None], np.ndarray] = {}
        self._right: dict[int, np.ndarray] = {}
        self._marginal_terms: dict[int, np.ndarray] = {}
        self._valid: dict[int, np.ndarray] = {}
        self._off_diag = ~np.eye(self.k, dtype=bool)

    def support(self, t: int) -> np.ndarray:
        """Boolean mask of states with positive marginal at node ``t``."""
        if self.free_initial:
            if t == 0:
                return np.ones(self.k, dtype=bool)
            logs = self.chain.log_power(t)
            return np.isfinite(logs).any(axis=0)
        return self.chain.marginal(t) > ATOL

    def valid_pairs(self, t: int) -> np.ndarray:
        """Admissible ordered pairs ``(x, x')``: both supported, distinct."""
        if t not in self._valid:
            supp = self.support(t)
            self._valid[t] = supp[:, None] & supp[None, :] & self._off_diag
        return self._valid[t]

    def marginal_term(self, t: int) -> np.ndarray:
        """``M[x, x'] = log p_t(x') - log p_t(x)`` (or its C.4 supremum)."""
        if t not in self._marginal_terms:
            if self.free_initial:
                if t == 0:
                    # Node 0 never owns a left-reaching quilt; the supremum
                    # over initial distributions is unbounded.
                    term = np.full((self.k, self.k), np.inf)
                else:
                    logs = self.chain.log_power(t)
                    # out[x, x'] = max_y logs[y, x'] - logs[y, x]
                    term = _sup_ratio_table(logs, logs).T
            else:
                with np.errstate(divide="ignore"):
                    logp = np.log(self.chain.marginal(t))
                with np.errstate(invalid="ignore"):
                    term = logp[None, :] - logp[:, None]
                term = np.where(np.isnan(term), -np.inf, term)
            self._marginal_terms[t] = term
        return self._marginal_terms[t]

    def left(self, a: int, t: int | None = None) -> np.ndarray:
        """Past table ``L_a[x, x'] = max_u log P^a(u,x)/P^a(u,x')``.

        When ``t`` is given (fixed-initial chains), ``u`` ranges over the
        support of the marginal at ``t - a``; with a free initial
        distribution every ``u`` is achievable.
        """
        mask_key: tuple[bool, ...] | None = None
        if self.restrict_support and not self.free_initial and t is not None:
            supp = self.support(t - a)
            if not supp.all():
                mask_key = tuple(bool(s) for s in supp)
        key = (a, mask_key)
        if key not in self._left:
            logs = self.chain.log_power(a)
            if mask_key is not None:
                logs = logs[np.array(mask_key), :]
            if logs.size == 0:
                table = np.full((self.k, self.k), -np.inf)
            else:
                table = _sup_ratio_table(logs, logs)
            self._left[key] = table
        return self._left[key]

    def right(self, b: int) -> np.ndarray:
        """Future table ``R_b[x, x'] = max_v log P^b(x,v)/P^b(x',v)``."""
        if b not in self._right:
            logs_t = self.chain.log_power(b).T
            self._right[b] = _sup_ratio_table(logs_t, logs_t)
        return self._right[b]


def chain_max_influence(
    chain: MarkovChain,
    t: int,
    a: int | None,
    b: int | None,
    *,
    free_initial: bool = False,
    restrict_support: bool = True,
) -> float:
    """Exact max-influence ``e_theta(X_Q | X_t)`` for one quilt (Eq. 5).

    ``a``/``b`` give the quilt endpoints ``{X_{t-a}, X_{t+b}}``; pass ``None``
    to drop a side (one-sided quilts) or both for the trivial quilt
    (influence 0).  Node indices are 0-based; ``free_initial`` selects the
    Appendix C.4 supremum over initial distributions.
    """
    if a is None and b is None:
        return 0.0
    if a is not None and (a < 1 or t - a < 0):
        raise ValidationError(f"left endpoint t-a={t - a} out of range")
    if b is not None and b < 1:
        raise ValidationError(f"right gap b={b} must be >= 1")
    tables = _ChainTables(
        chain, free_initial=free_initial, restrict_support=restrict_support
    )
    valid = tables.valid_pairs(t)
    total = np.zeros((chain.n_states, chain.n_states))
    if a is not None:
        with np.errstate(invalid="ignore"):
            total = total + tables.marginal_term(t) + tables.left(a, t)
    if b is not None:
        with np.errstate(invalid="ignore"):
            total = total + tables.right(b)
    total = np.where(np.isnan(total), -np.inf, total)
    result = _masked_max(total, valid)
    if result == -np.inf:
        # Fewer than two admissible values: nothing to protect.
        return 0.0
    return max(result, 0.0)


# ----------------------------------------------------------------------
# sigma-max search over index-independent score tables
# ----------------------------------------------------------------------
def sigma_max_from_iid_tables(
    length: int,
    epsilon: float,
    a_values: np.ndarray,
    b_values: np.ndarray,
    influence_two_sided: np.ndarray,
    influence_left: np.ndarray,
    influence_right: np.ndarray,
) -> float:
    """``max_t sigma_t`` when max-influence does not depend on ``t``.

    Applies to stationary-start chains under MQMExact and always under
    MQMApprox.  ``a_values``/``b_values`` are the sorted candidate quilt
    extents; ``influence_two_sided[i, j]`` is the influence of the quilt
    ``(a_values[i], b_values[j])`` and the one-sided arrays match their
    candidate lists.  The trivial quilt (score ``length / epsilon``) is
    always considered.

    The search is exact over the candidate set: nodes within the window of
    either boundary are evaluated directly (vectorized), and the interior
    maximum uses the fact that for interior nodes the two-sided option is a
    constant while the left/right one-sided scores are monotone in ``t``
    (decreasing/increasing), so their pointwise minimum is unimodal and the
    maximizer sits at the crossing.
    """
    if length < 1:
        raise ValidationError(f"chain length must be >= 1, got {length}")
    trivial = length / epsilon
    a_values = np.asarray(a_values, dtype=np.int64)
    b_values = np.asarray(b_values, dtype=np.int64)
    if a_values.size == 0 or b_values.size == 0:
        return trivial

    with np.errstate(invalid="ignore"):
        gap_two = epsilon - influence_two_sided
        gap_left = epsilon - influence_left
        gap_right = epsilon - influence_right
    cards = (a_values[:, None] + b_values[None, :] - 1).astype(float)
    score_two = np.where(gap_two > 0, cards / np.where(gap_two > 0, gap_two, 1.0), np.inf)
    # Prefix minimum: best two-sided score using extents <= (a_max, b_max).
    prefix_two = np.minimum.accumulate(np.minimum.accumulate(score_two, axis=0), axis=1)
    inv_left = np.where(gap_left > 0, 1.0 / np.where(gap_left > 0, gap_left, 1.0), np.inf)
    inv_right = np.where(gap_right > 0, 1.0 / np.where(gap_right > 0, gap_right, 1.0), np.inf)

    window_a = int(a_values.max())
    window_b = int(b_values.max())

    def counts_leq(values: np.ndarray, limit: np.ndarray) -> np.ndarray:
        """Per-node number of candidate extents within the room limit."""
        return np.searchsorted(values, limit, side="right")

    def sigma_for_nodes(nodes: np.ndarray) -> np.ndarray:
        room_left = nodes
        room_right = length - 1 - nodes
        n_a = counts_leq(a_values, room_left)
        n_b = counts_leq(b_values, room_right)
        best = np.full(nodes.shape, trivial)
        both = (n_a > 0) & (n_b > 0)
        if both.any():
            best[both] = np.minimum(best[both], prefix_two[n_a[both] - 1, n_b[both] - 1])
        # Left-only quilts: score (length - 1 - t + a) / (eps - e_left(a)).
        with np.errstate(invalid="ignore"):
            left_scores = (room_right[:, None] + a_values[None, :]) * inv_left[None, :]
        left_scores = np.where(
            np.arange(a_values.size)[None, :] < n_a[:, None], left_scores, np.inf
        )
        best = np.minimum(best, np.nan_to_num(left_scores, nan=np.inf).min(axis=1))
        # Right-only quilts: score (t + b) / (eps - e_right(b)).
        with np.errstate(invalid="ignore"):
            right_scores = (room_left[:, None] + b_values[None, :]) * inv_right[None, :]
        right_scores = np.where(
            np.arange(b_values.size)[None, :] < n_b[:, None], right_scores, np.inf
        )
        best = np.minimum(best, np.nan_to_num(right_scores, nan=np.inf).min(axis=1))
        return best

    interior_start = window_a
    interior_end = length - 1 - window_b  # inclusive
    edge_nodes = np.unique(
        np.concatenate(
            [
                np.arange(0, min(interior_start, length)),
                np.arange(max(interior_end + 1, 0), length),
            ]
        )
    )
    sigma = float(sigma_for_nodes(edge_nodes).max()) if edge_nodes.size else 0.0

    if interior_start <= interior_end:
        two_const = float(prefix_two[-1, -1])

        def one_sided_min(room: float, values: np.ndarray, inv: np.ndarray) -> float:
            with np.errstate(invalid="ignore"):
                scores = (room + values) * inv
            scores = np.nan_to_num(scores, nan=np.inf)
            return float(scores.min()) if scores.size else np.inf

        def lb(t: int) -> float:
            return one_sided_min(float(length - 1 - t), a_values.astype(float), inv_left)

        def rb(t: int) -> float:
            return one_sided_min(float(t), b_values.astype(float), inv_right)

        # lb decreases with t, rb increases: min(lb, rb) is unimodal, peaked
        # where they cross.  Binary-search the crossing.
        lo, hi = interior_start, interior_end
        while lo < hi:
            mid = (lo + hi) // 2
            if rb(mid) >= lb(mid):
                hi = mid
            else:
                lo = mid + 1
        candidates = {interior_start, interior_end, lo, max(interior_start, lo - 1)}
        peak = max(min(lb(t), rb(t)) for t in candidates)
        sigma = max(sigma, min(trivial, two_const, peak))
    return sigma


def _geometric_ladder(max_value: int, cap: int) -> np.ndarray:
    """Sorted unique integers ``1..max_value``; geometric once above ``cap``."""
    if max_value <= cap:
        return np.arange(1, max_value + 1, dtype=np.int64)
    dense = np.arange(1, cap // 2 + 1, dtype=np.int64)
    sparse = np.unique(
        np.geomspace(cap // 2 + 1, max_value, num=cap - dense.size).astype(np.int64)
    )
    return np.unique(np.concatenate([dense, sparse, [max_value]]))


# ----------------------------------------------------------------------
# MQMExact (Algorithm 3)
# ----------------------------------------------------------------------
class MQMExact(Mechanism):
    """Algorithm 3: exact Markov Quilt Mechanism for Markov chains.

    Parameters
    ----------
    family:
        A :class:`~repro.distributions.chain_family.ChainFamily` (or a single
        :class:`MarkovChain`, wrapped into a singleton family).  For families
        with ``free_initial`` the Appendix C.4 optimization over initial
        distributions is applied per transition matrix.
    epsilon:
        Privacy parameter.
    max_window:
        The quilt-extent cap ``l`` of Algorithm 3 (endpoints at distance
        ``<= l``).  ``None`` derives it from MQMApprox's optimal quilt (the
        paper's procedure for the real-data experiments) and falls back to
        the full chain for short chains.
    restrict_support:
        When true (default), the Eq. (5) maximum over past values is
        restricted to values achievable under theta (tighter, still
        private); false reproduces the paper's literal Eq. (5).
    """

    name = "MQMExact"

    def __init__(
        self,
        family: ChainFamily | MarkovChain,
        epsilon: float,
        *,
        max_window: int | None = None,
        restrict_support: bool = True,
    ) -> None:
        super().__init__(epsilon)
        if isinstance(family, MarkovChain):
            family = FiniteChainFamily.singleton(family)
        self.family = family
        self.max_window = max_window
        self.restrict_support = restrict_support
        self._sigma_cache: dict[tuple[int, ...], float] = {}
        self._table_cache: dict[tuple[int, int], tuple] = {}

    # -- public API ----------------------------------------------------
    def calibration_fingerprint(self) -> tuple:
        """Everything the noise scale depends on besides query and lengths:
        the family Theta (content-hashed), epsilon, and the two search knobs
        (``max_window`` changes which quilts are considered; the
        ``restrict_support`` variant computes a different — tighter — Eq. (5)
        maximum)."""
        return (
            "MQMExact",
            self.epsilon,
            self.family.fingerprint(),
            self.max_window,
            self.restrict_support,
        )

    def with_epsilon(self, epsilon: float) -> "MQMExact":
        """A copy of this mechanism at a different privacy level.

        The Eq. (5) influence tables do not depend on epsilon, so the copy
        shares this instance's table cache — sweeping epsilon (as the
        Figure 4 and Table 3 experiments do) costs one table build instead
        of one per level.  Only the stationary path caches tables; the
        per-node tensor path recomputes per call either way.
        """
        clone = MQMExact(
            self.family,
            epsilon,
            max_window=self.max_window,
            restrict_support=self.restrict_support,
        )
        clone._table_cache = self._table_cache
        return clone

    def export_calibration_state(self) -> dict:
        """JSON-safe snapshot of the per-length-set sigma results.

        The serving layer stores this alongside the cached scale so that a
        warm (possibly on-disk) cache entry can restore the mechanism's
        internal memo via :meth:`warm_start` — subsequent ``sigma_max`` calls
        for the same length sets then cost a dictionary lookup instead of a
        quilt search.  Only valid under an identical
        :meth:`calibration_fingerprint`.
        """
        return {
            "sigma_by_lengths": [
                [list(key), float(value)] for key, value in self._sigma_cache.items()
            ]
        }

    def warm_start(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_calibration_state`."""
        for key, value in state.get("sigma_by_lengths", []):
            self._sigma_cache[tuple(int(n) for n in key)] = float(value)

    def sigma_sweep(
        self, lengths: Iterable[int] | int, epsilons: Iterable[float]
    ) -> dict[float, float]:
        """``sigma_max`` for several privacy levels, sharing influence tables."""
        return {eps: self.with_epsilon(eps).sigma_max(lengths) for eps in epsilons}

    def sigma_max(self, lengths: Iterable[int] | int) -> float:
        """``sigma_max`` over chains in Theta and segment lengths."""
        if isinstance(lengths, (int, np.integer)):
            lengths = (int(lengths),)
        key = tuple(sorted(set(int(n) for n in lengths)))
        if any(n < 1 for n in key):
            raise ValidationError("segment lengths must be >= 1")
        if key not in self._sigma_cache:
            sigma = 0.0
            for index, chain in enumerate(self.family.chains()):
                for length in key:
                    sigma = max(sigma, self._sigma_for_chain(index, chain, length))
            self._sigma_cache[key] = sigma
        return self._sigma_cache[key]

    def noise_scale(self, query: Query, data) -> float:
        lengths = getattr(data, "segment_lengths", None) or (int(np.asarray(data).size),)
        return query.lipschitz * self.sigma_max(lengths)

    def scale_details(self, query: Query, data) -> dict:
        lengths = getattr(data, "segment_lengths", None) or (int(np.asarray(data).size),)
        return {"sigma_max": self.sigma_max(lengths)}

    # -- internals -------------------------------------------------------
    def _window_for(self, chain: MarkovChain, length: int) -> int:
        if self.max_window is not None:
            return max(1, min(self.max_window, length))
        window = None
        try:
            approx = MQMApprox(self.family, self.epsilon)
            window = approx.optimal_quilt_extent(length)
        except NotApplicableError:
            window = None
        if window is None:
            window = min(length, 256)
        cap = (
            MAX_EXACT_WINDOW_SMALL_K
            if chain.n_states <= 8
            else MAX_EXACT_WINDOW_LARGE_K
        )
        return max(1, min(window, length, cap))

    def _sigma_for_chain(self, index: int, chain: MarkovChain, length: int) -> float:
        window = self._window_for(chain, length)
        stationary_start = (
            not self.family.free_initial
            and float(np.abs(chain.initial @ chain.transition - chain.initial).max()) < 1e-10
            and float(chain.initial.min()) > ATOL
        )
        if stationary_start:
            tables = self._stationary_tables(index, chain, window)
            return sigma_max_from_iid_tables(length, self.epsilon, *tables)
        cells = length * window * window * chain.n_states**2
        if cells > MAX_TENSOR_CELLS:
            raise EnumerationError(
                f"per-node exact search needs ~{cells:.2g} cells for T={length}, "
                f"l={window}, k={chain.n_states}; start the chain from its "
                "stationary distribution or reduce max_window"
            )
        return self._sigma_per_node(chain, length, window)

    def _stationary_tables(self, index: int, chain: MarkovChain, window: int) -> tuple:
        key = (index, window)
        if key not in self._table_cache:
            tables = _ChainTables(
                chain, free_initial=False, restrict_support=self.restrict_support
            )
            marginal = tables.marginal_term(0)  # stationary: same for all t
            valid = tables.valid_pairs(0)
            invalid_mask = np.where(valid, 0.0, -np.inf)
            a_values = _geometric_ladder(window, TABLE_LADDER_CAP)
            b_values = a_values.copy()
            lefts = np.stack([tables.left(int(a)) for a in a_values])
            rights = np.stack([tables.right(int(b)) for b in b_values])
            with np.errstate(invalid="ignore"):
                left_tot = marginal[None] + lefts + invalid_mask[None]
                right_tot = rights + invalid_mask[None]
            left_tot = np.where(np.isnan(left_tot), -np.inf, left_tot)
            right_tot = np.where(np.isnan(right_tot), -np.inf, right_tot)
            e_left = np.maximum(left_tot.max(axis=(1, 2)), 0.0)
            e_right = np.maximum(right_tot.max(axis=(1, 2)), 0.0)
            e_two = np.empty((a_values.size, b_values.size))
            for i in range(a_values.size):
                with np.errstate(invalid="ignore"):
                    combined = left_tot[i][None] + rights
                combined = np.where(np.isnan(combined), -np.inf, combined)
                e_two[i] = combined.max(axis=(1, 2))
            e_two = np.maximum(e_two, 0.0)
            self._table_cache[key] = (a_values, b_values, e_two, e_left, e_right)
        return self._table_cache[key]

    def _sigma_per_node(self, chain: MarkovChain, length: int, window: int) -> float:
        tables = _ChainTables(
            chain,
            free_initial=self.family.free_initial,
            restrict_support=self.restrict_support,
        )
        trivial = length / self.epsilon
        side_max = min(window, length - 1)
        rights = (
            np.stack([tables.right(b) for b in range(1, side_max + 1)])
            if side_max >= 1
            else None
        )
        # Default (unmasked) left tables, hoisted out of the node loop; nodes
        # whose past hits an incompletely-supported marginal get a per-(t, a)
        # masked replacement below (rare: typically only t - a = 0).
        lefts = (
            np.stack([tables.left(a) for a in range(1, side_max + 1)])
            if side_max >= 1
            else None
        )
        restricted: list[int] = []
        if self.restrict_support and not self.family.free_initial:
            restricted = [
                pos for pos in range(length - 1) if not tables.support(pos).all()
            ]
        sigma = 0.0
        for t in range(length):
            valid = tables.valid_pairs(t)
            if not valid.any():
                continue  # nothing to protect at this node under this theta
            invalid_mask = np.where(valid, 0.0, -np.inf)
            best = trivial
            amax = min(t, window)
            bmax = min(length - 1 - t, window)
            marg = tables.marginal_term(t)
            left_raw = None
            if amax >= 1:
                with np.errstate(invalid="ignore"):
                    left_raw = marg[None] + lefts[:amax]
                left_raw = np.where(np.isnan(left_raw), -np.inf, left_raw)
                for pos in restricted:
                    a = t - pos
                    if 1 <= a <= amax:
                        with np.errstate(invalid="ignore"):
                            row = marg + tables.left(a, t)
                        left_raw[a - 1] = np.where(np.isnan(row), -np.inf, row)
                with np.errstate(invalid="ignore"):
                    left_tot = left_raw + invalid_mask[None]
                left_tot = np.where(np.isnan(left_tot), -np.inf, left_tot)
                e_left = np.maximum(left_tot.max(axis=(1, 2)), 0.0)
                cards = length - 1 - t + np.arange(1, amax + 1, dtype=float)
                best = min(best, _best_score(cards, e_left, self.epsilon))
            if bmax >= 1:
                with np.errstate(invalid="ignore"):
                    right_tot = rights[:bmax] + invalid_mask[None]
                right_tot = np.where(np.isnan(right_tot), -np.inf, right_tot)
                e_right = np.maximum(right_tot.max(axis=(1, 2)), 0.0)
                cards = t + np.arange(1, bmax + 1, dtype=float)
                best = min(best, _best_score(cards, e_right, self.epsilon))
            if amax >= 1 and bmax >= 1:
                with np.errstate(invalid="ignore"):
                    combined = (
                        left_raw[:, None] + rights[None, :bmax] + invalid_mask[None, None]
                    )
                combined = np.where(np.isnan(combined), -np.inf, combined)
                e_two = np.maximum(combined.max(axis=(2, 3)), 0.0)
                cards = (
                    np.arange(1, amax + 1, dtype=float)[:, None]
                    + np.arange(1, bmax + 1, dtype=float)[None, :]
                    - 1.0
                )
                best = min(best, _best_score(cards, e_two, self.epsilon))
            sigma = max(sigma, best)
        return sigma


def _best_score(cards: np.ndarray, influences: np.ndarray, epsilon: float) -> float:
    with np.errstate(invalid="ignore"):
        gaps = epsilon - influences
    scores = np.where(gaps > 0, cards / np.where(gaps > 0, gaps, 1.0), np.inf)
    scores = np.nan_to_num(scores, nan=np.inf)
    return float(scores.min()) if scores.size else np.inf


# ----------------------------------------------------------------------
# MQMApprox (Algorithm 4)
# ----------------------------------------------------------------------
class MQMApprox(Mechanism):
    """Algorithm 4: mixing-bound Markov Quilt Mechanism for Markov chains.

    The max-influence of the quilt ``{X_{t-a}, X_{t+b}}`` is upper-bounded in
    closed form (Lemma 4.8 / Lemma C.1) by::

        log((1 + D_b) / (1 - D_b)) + 2 * log((1 + D_a) / (1 - D_a)),
        D_t = exp(-t * g / 2) / pi_min

    using only ``pi_min`` (Eq. 6) and the eigengap ``g`` (Eq. 7/14) of the
    family.  One-sided quilts use the single/double factor respectively.

    Parameters
    ----------
    family:
        The distribution class; must consist of irreducible aperiodic chains.
    epsilon:
        Privacy parameter.
    reversible:
        Force the reversible (``2 * (1 - |lambda_2(P)|)``, Lemma C.1) or the
        general (``1 - |lambda_2(P P*)|``, Lemma 4.8) eigengap.  ``None``
        auto-detects per chain, which matches Eq. (14).
    """

    name = "MQMApprox"

    def __init__(
        self,
        family: ChainFamily | MarkovChain,
        epsilon: float,
        *,
        reversible: bool | None = None,
    ) -> None:
        super().__init__(epsilon)
        if isinstance(family, MarkovChain):
            family = FiniteChainFamily.singleton(family)
        self.family = family
        self.pi_min = float(family.pi_min())
        self.gap = float(self._family_eigengap(reversible))
        if self.pi_min <= 0 or self.gap <= 0:
            raise NotApplicableError(
                "MQMApprox requires irreducible aperiodic chains with positive "
                f"stationary mass (pi_min={self.pi_min:.3g}, g={self.gap:.3g})"
            )
        self._sigma_cache: dict[int, float] = {}

    def _family_eigengap(self, reversible: bool | None) -> float:
        if reversible is None:
            return self.family.eigengap()
        if isinstance(self.family, FiniteChainFamily):
            return min(chain.eigengap(reversible=reversible) for chain in self.family.chains())
        if reversible and getattr(self.family, "reversible", False):
            return self.family.eigengap()
        return min(chain.eigengap(reversible=reversible) for chain in self.family.chains())

    # -- calibration identity ---------------------------------------------
    def calibration_fingerprint(self) -> tuple:
        """Lemma 4.8's bound reads the family only through ``pi_min`` and the
        eigengap, so those two scalars (plus epsilon) are the *complete*
        calibration identity — two different families with the same mixing
        parameters genuinely share every MQMApprox noise scale."""
        return ("MQMApprox", self.epsilon, self.pi_min, self.gap)

    def with_epsilon(self, epsilon: float) -> "MQMApprox":
        """A copy of this mechanism at a different privacy level.

        ``pi_min`` and the eigengap do not depend on epsilon, so they are
        transferred rather than recomputed — bit-identical mixing parameters
        across a sweep, and no per-level eigendecomposition.
        """
        clone = copy.copy(self)
        Mechanism.__init__(clone, epsilon)
        clone._sigma_cache = {}
        return clone

    def sigma_sweep(
        self, lengths: Iterable[int] | int, epsilons: Iterable[float]
    ) -> dict[float, float]:
        """``sigma_max`` for several privacy levels (cf.
        :meth:`MQMExact.sigma_sweep`)."""
        return {eps: self.with_epsilon(eps).sigma_max(lengths) for eps in epsilons}

    def export_calibration_state(self) -> dict:
        """JSON-safe snapshot of the per-length sigma table (see
        :meth:`MQMExact.export_calibration_state`)."""
        return {
            "sigma_by_length": [
                [int(length), float(value)] for length, value in self._sigma_cache.items()
            ]
        }

    def warm_start(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_calibration_state`."""
        for length, value in state.get("sigma_by_length", []):
            self._sigma_cache[int(length)] = float(value)

    # -- closed-form influence bounds -----------------------------------
    def _delta(self, t: np.ndarray | float) -> np.ndarray | float:
        return np.exp(-np.asarray(t, dtype=float) * self.gap / 2.0) / self.pi_min

    def right_influence(self, b: np.ndarray | float) -> np.ndarray | float:
        """Bound for the future-only quilt ``{X_{t+b}}``."""
        delta = self._delta(b)
        with np.errstate(divide="ignore", invalid="ignore"):
            value = np.log((1.0 + delta) / (1.0 - delta))
        return np.where(delta < 1.0, value, np.inf)

    def left_influence(self, a: np.ndarray | float) -> np.ndarray | float:
        """Bound for the past-only quilt ``{X_{t-a}}`` (squared factor)."""
        return 2.0 * self.right_influence(a)

    def two_sided_influence(
        self, a: np.ndarray | float, b: np.ndarray | float
    ) -> np.ndarray | float:
        """Lemma 4.8 bound for ``{X_{t-a}, X_{t+b}}``."""
        return self.left_influence(a) + self.right_influence(b)

    def a_star(self) -> int:
        """The search radius of Lemma 4.9."""
        ratio = (math.exp(self.epsilon / 6.0) + 1.0) / (math.exp(self.epsilon / 6.0) - 1.0)
        return 2 * math.ceil(math.log(ratio / self.pi_min) / self.gap)

    # -- sigma search ------------------------------------------------------
    def sigma_max(self, lengths: Iterable[int] | int) -> float:
        """``sigma_max`` over segment lengths (scores are index-independent)."""
        if isinstance(lengths, (int, np.integer)):
            lengths = (int(lengths),)
        return max(self._sigma_for_length(int(n)) for n in lengths)

    def _sigma_for_length(self, length: int) -> float:
        if length < 1:
            raise ValidationError("segment lengths must be >= 1")
        if length not in self._sigma_cache:
            astar = self.a_star()
            if length >= 8 * astar:
                self._sigma_cache[length] = self._sigma_middle(length, astar)
            else:
                self._sigma_cache[length] = self._sigma_full(length, astar)
        return self._sigma_cache[length]

    def _candidates(self, max_extent: int) -> np.ndarray:
        return _geometric_ladder(max_extent, MAX_APPROX_CANDIDATES)

    def _sigma_middle(self, length: int, astar: int) -> float:
        """Lemma 4.9 fast path: only the middle node, extents ``<= 4 a*``."""
        values = self._candidates(4 * astar)
        e_left = np.asarray(self.left_influence(values))
        e_right = np.asarray(self.right_influence(values))
        influence = e_left[:, None] + e_right[None, :]
        cards = (values[:, None] + values[None, :] - 1).astype(float)
        best = _best_score(cards, influence, self.epsilon)
        return min(best, length / self.epsilon)

    def _sigma_full(self, length: int, astar: int) -> float:
        window = min(length, 4 * astar)
        values = _geometric_ladder(window, TABLE_LADDER_CAP)
        e_left = np.asarray(self.left_influence(values))
        e_right = np.asarray(self.right_influence(values))
        influence = e_left[:, None] + e_right[None, :]
        return sigma_max_from_iid_tables(
            length, self.epsilon, values, values, influence, e_left, e_right
        )

    def optimal_quilt_extent(self, length: int) -> int | None:
        """Extent ``a + b`` of the best two-sided quilt for the middle node;
        ``None`` when the trivial quilt wins.  Used by the paper to size
        MQMExact's search window on the real datasets."""
        astar = self.a_star()
        values = self._candidates(min(4 * astar, max(length, 1)))
        mid = (length - 1) // 2
        feasible_a = values[values <= mid]
        feasible_b = values[values <= max(length - 1 - mid, 0)]
        if feasible_a.size == 0 or feasible_b.size == 0:
            return None
        e_left = np.asarray(self.left_influence(feasible_a))
        e_right = np.asarray(self.right_influence(feasible_b))
        influence = e_left[:, None] + e_right[None, :]
        cards = (feasible_a[:, None] + feasible_b[None, :] - 1).astype(float)
        with np.errstate(invalid="ignore"):
            gaps = self.epsilon - influence
        scores = np.where(gaps > 0, cards / np.where(gaps > 0, gaps, 1.0), np.inf)
        if not np.isfinite(scores).any():
            return None
        best = np.unravel_index(np.argmin(scores), scores.shape)
        if scores[best] >= length / self.epsilon:
            return None
        return int(feasible_a[best[0]] + feasible_b[best[1]])

    def noise_scale(self, query: Query, data) -> float:
        lengths = getattr(data, "segment_lengths", None) or (int(np.asarray(data).size),)
        return query.lipschitz * self.sigma_max(lengths)

    def scale_details(self, query: Query, data) -> dict:
        lengths = getattr(data, "segment_lengths", None) or (int(np.asarray(data).size),)
        return {
            "sigma_max": self.sigma_max(lengths),
            "pi_min": self.pi_min,
            "eigengap": self.gap,
            "a_star": self.a_star(),
        }
