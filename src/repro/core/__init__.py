"""Core Pufferfish machinery: the framework, enumerable data models, queries,
the Wasserstein Mechanism, the Markov Quilt Mechanism and its Markov-chain
specializations, composition accounting, and the close-adversary robustness
bound."""

from repro.core.accounting import (
    BaseAccountant,
    RenyiAccountant,
    pure_rdp_curve,
)
from repro.core.composition import CompositionAccountant, CompositionRecord
from repro.core.framework import (
    PufferfishInstantiation,
    Secret,
    SecretPair,
    entrywise_instantiation,
)
from repro.core.gaussian import (
    GaussianMarkovQuiltMechanism,
    gaussian_rho,
    rho_to_epsilon,
)
from repro.core.laplace import (
    Calibration,
    Mechanism,
    PrivateRelease,
    sample_gaussian,
    sample_laplace,
)
from repro.core.markov_quilt import MarkovQuiltMechanism, max_influence
from repro.core.models import (
    DataModel,
    FluCliqueModel,
    MarkovChainModel,
    TabularDataModel,
)
from repro.core.mqm_chain import MQMApprox, MQMExact, chain_max_influence
from repro.core.queries import (
    CountQuery,
    MeanQuery,
    Query,
    RelativeFrequencyHistogram,
    ScalarQuery,
    StateFrequencyQuery,
    SumQuery,
)
from repro.core.robustness import adversary_distance, effective_epsilon
from repro.core.wasserstein import WassersteinMechanism, wasserstein_bound
from repro.core.windowed import SlidingWindowAccountant

__all__ = [
    "BaseAccountant",
    "Calibration",
    "CompositionAccountant",
    "CompositionRecord",
    "CountQuery",
    "DataModel",
    "FluCliqueModel",
    "GaussianMarkovQuiltMechanism",
    "MQMApprox",
    "MQMExact",
    "MarkovChainModel",
    "MarkovQuiltMechanism",
    "MeanQuery",
    "Mechanism",
    "PrivateRelease",
    "PufferfishInstantiation",
    "Query",
    "RelativeFrequencyHistogram",
    "RenyiAccountant",
    "ScalarQuery",
    "Secret",
    "SecretPair",
    "SlidingWindowAccountant",
    "StateFrequencyQuery",
    "SumQuery",
    "TabularDataModel",
    "WassersteinMechanism",
    "adversary_distance",
    "chain_max_influence",
    "effective_epsilon",
    "entrywise_instantiation",
    "gaussian_rho",
    "max_influence",
    "pure_rdp_curve",
    "rho_to_epsilon",
    "sample_gaussian",
    "sample_laplace",
    "wasserstein_bound",
]
