"""Sequential composition accounting for the Markov Quilt Mechanism.

Pufferfish privacy does not compose in general [20], but Theorem 4.4 shows
the Markov Quilt Mechanism does when every release uses the *same active
Markov quilt* for each node: K releases at levels ``eps_1..eps_K`` with
identical quilt sets guarantee ``K * max_k eps_k``-Pufferfish privacy (and
exactly ``K * eps`` when the levels are equal).

:class:`CompositionAccountant` tracks releases, verifies the same-quilt
condition via a hashable *quilt signature* (see
:meth:`~repro.core.markov_quilt.MarkovQuiltMechanism.quilt_signature`), and
reports the accumulated guarantee.  The check-then-record cycle, lock
discipline, audit trail, and refusal payload all live in the shared
:class:`~repro.core.accounting.BaseAccountant` — this module only supplies
the linear arithmetic.  The Rényi alternative
(:class:`~repro.core.accounting.RenyiAccountant`) implements the same
contract with strong-composition arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.accounting import (
    BaseAccountant,
    CompositionRecord,
    RdpCurve,
)
from repro.exceptions import PrivacyParameterError

__all__ = ["CompositionAccountant", "CompositionRecord", "compose_epsilons"]


@dataclass
class CompositionAccountant(BaseAccountant):
    """Tracks Markov Quilt Mechanism releases over one database.

    The Theorem 4.4 guarantee only depends on ``(count, max epsilon, shared
    signature)``, so those aggregates are maintained incrementally — every
    budget check is O(1) however many releases a long-lived engine has
    served.  ``records`` remains the full audit trail; treat it as read-only
    (mutating it externally desynchronizes the aggregates).

    **Thread safety.**  The check-then-record cycle of
    :meth:`~repro.core.accounting.BaseAccountant.record_many` holds an
    internal lock (see :class:`~repro.core.accounting.BaseAccountant`), so
    concurrent recorders (two streaming sessions sharing one engine budget,
    a stream racing a batch) can never both pass the budget check and
    jointly over-spend — the race ``tests/test_streaming_concurrency.py``
    hammers.  Reads (:meth:`~repro.core.accounting.BaseAccountant.
    total_epsilon`, :meth:`~repro.core.accounting.BaseAccountant.remaining`,
    ``len``) take the same lock, so they never observe a half-applied
    record.

    Parameters
    ----------
    budget:
        Optional total epsilon budget; ``record`` raises once the
        accumulated guarantee would exceed it.
    audit_trail:
        When ``True`` (default) every release appends to ``records``.  An
        indefinite stream debits per yield, so its trail grows linearly with
        releases served; ``audit_trail=False`` keeps only the O(1)
        aggregates (count, worst epsilon, signatures) — same enforcement,
        constant memory, empty ``records``.
    """

    budget: float | None = None
    records: list[CompositionRecord] = field(default_factory=list)
    audit_trail: bool = True

    _STATE_KIND = "linear"

    def __post_init__(self) -> None:
        self._worst = max((r.epsilon for r in self.records), default=0.0)
        self._init_runtime()

    # -- linear arithmetic (mutex held by the base) ----------------------
    def _spent_locked(self) -> float:
        return self._count * self._worst

    def _stage_locked(
        self, n_releases: int, epsilon: float, rdp_curve: RdpCurve | None
    ) -> tuple[float, Any]:
        # Linear accounting has no use for a Rényi curve; Theorem 4.4 only
        # reads (count, worst epsilon).
        worst = max(self._worst, epsilon)
        return (self._count + n_releases) * worst, worst

    def _apply_locked(self, token: float) -> None:
        self._worst = token

    # -- durable serialization (see BaseAccountant.state_dict) -----------
    def _state_extra_locked(self) -> dict:
        return {"worst": float(self._worst)}

    def _restore_extra(self, state: Mapping) -> None:
        self._worst = float(state["worst"])


def compose_epsilons(epsilons: list[float]) -> float:
    """The Theorem 4.4 guarantee for a list of per-release epsilons that all
    used the same quilt sets: ``K * max_k eps_k``."""
    if not epsilons:
        return 0.0
    if any(e <= 0 for e in epsilons):
        raise PrivacyParameterError("all epsilons must be positive")
    return len(epsilons) * max(epsilons)
