"""Sequential composition accounting for the Markov Quilt Mechanism.

Pufferfish privacy does not compose in general [20], but Theorem 4.4 shows
the Markov Quilt Mechanism does when every release uses the *same active
Markov quilt* for each node: K releases at levels ``eps_1..eps_K`` with
identical quilt sets guarantee ``K * max_k eps_k``-Pufferfish privacy (and
exactly ``K * eps`` when the levels are equal).

:class:`CompositionAccountant` tracks releases, verifies the same-quilt
condition via a hashable *quilt signature* (see
:meth:`~repro.core.markov_quilt.MarkovQuiltMechanism.quilt_signature`), and
reports the accumulated guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.exceptions import PrivacyParameterError


@dataclass(frozen=True)
class CompositionRecord:
    """One recorded release."""

    epsilon: float
    mechanism: str
    quilt_signature: Hashable


@dataclass
class CompositionAccountant:
    """Tracks Markov Quilt Mechanism releases over one database.

    Parameters
    ----------
    budget:
        Optional total epsilon budget; :meth:`record` raises once the
        accumulated guarantee would exceed it.
    """

    budget: float | None = None
    records: list[CompositionRecord] = field(default_factory=list)

    def record(
        self,
        epsilon: float,
        *,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
    ) -> CompositionRecord:
        """Register a release; raises if it would exceed the budget or break
        the same-quilt condition."""
        if epsilon <= 0:
            raise PrivacyParameterError(f"epsilon must be positive, got {epsilon}")
        candidate = CompositionRecord(float(epsilon), mechanism, quilt_signature)
        tentative = self.records + [candidate]
        if not _signatures_consistent(tentative):
            raise PrivacyParameterError(
                "releases use different active Markov quilts; Theorem 4.4 does "
                "not apply and Pufferfish privacy may not compose"
            )
        total = _total(tentative)
        if self.budget is not None and total > self.budget + 1e-12:
            raise PrivacyParameterError(
                f"release would bring the composed guarantee to {total:.4g}, "
                f"exceeding the budget of {self.budget:.4g}"
            )
        self.records.append(candidate)
        return candidate

    @property
    def is_composable(self) -> bool:
        """Whether all recorded releases share one quilt signature."""
        return _signatures_consistent(self.records)

    def total_epsilon(self) -> float:
        """The composed guarantee ``K * max_k eps_k`` (0.0 when empty)."""
        if not _signatures_consistent(self.records):
            raise PrivacyParameterError(
                "releases use different active Markov quilts; no composition "
                "guarantee is available"
            )
        return _total(self.records)

    def remaining(self) -> float | None:
        """Remaining budget, or ``None`` when no budget was set."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - _total(self.records))

    def __len__(self) -> int:
        return len(self.records)


def _signatures_consistent(records: list[CompositionRecord]) -> bool:
    signatures = {r.quilt_signature for r in records}
    return len(signatures) <= 1


def _total(records: list[CompositionRecord]) -> float:
    if not records:
        return 0.0
    return len(records) * max(r.epsilon for r in records)


def compose_epsilons(epsilons: list[float]) -> float:
    """The Theorem 4.4 guarantee for a list of per-release epsilons that all
    used the same quilt sets: ``K * max_k eps_k``."""
    if not epsilons:
        return 0.0
    if any(e <= 0 for e in epsilons):
        raise PrivacyParameterError("all epsilons must be positive")
    return len(epsilons) * max(epsilons)
