"""Sequential composition accounting for the Markov Quilt Mechanism.

Pufferfish privacy does not compose in general [20], but Theorem 4.4 shows
the Markov Quilt Mechanism does when every release uses the *same active
Markov quilt* for each node: K releases at levels ``eps_1..eps_K`` with
identical quilt sets guarantee ``K * max_k eps_k``-Pufferfish privacy (and
exactly ``K * eps`` when the levels are equal).

:class:`CompositionAccountant` tracks releases, verifies the same-quilt
condition via a hashable *quilt signature* (see
:meth:`~repro.core.markov_quilt.MarkovQuiltMechanism.quilt_signature`), and
reports the accumulated guarantee.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Hashable

from repro.exceptions import BudgetExhaustedError, PrivacyParameterError


@dataclass(frozen=True)
class CompositionRecord:
    """One recorded release."""

    epsilon: float
    mechanism: str
    quilt_signature: Hashable


@dataclass
class CompositionAccountant:
    """Tracks Markov Quilt Mechanism releases over one database.

    The Theorem 4.4 guarantee only depends on ``(count, max epsilon, shared
    signature)``, so those aggregates are maintained incrementally — every
    budget check is O(1) however many releases a long-lived engine has
    served.  ``records`` remains the full audit trail; treat it as read-only
    (mutating it externally desynchronizes the aggregates).

    **Thread safety.**  The check-then-record cycle of :meth:`record_many`
    holds an internal lock, so concurrent recorders (two streaming sessions
    sharing one engine budget, a stream racing a batch) can never both pass
    the budget check and jointly over-spend — the race
    ``tests/test_streaming_concurrency.py`` hammers.  Reads
    (:meth:`total_epsilon`, :meth:`remaining`, ``len``) take the same lock,
    so they never observe a half-applied record.

    Parameters
    ----------
    budget:
        Optional total epsilon budget; :meth:`record` raises once the
        accumulated guarantee would exceed it.
    audit_trail:
        When ``True`` (default) every release appends to ``records``.  An
        indefinite stream debits per yield, so its trail grows linearly with
        releases served; ``audit_trail=False`` keeps only the O(1)
        aggregates (count, worst epsilon, signatures) — same enforcement,
        constant memory, empty ``records``.
    """

    budget: float | None = None
    records: list[CompositionRecord] = field(default_factory=list)
    audit_trail: bool = True

    def __post_init__(self) -> None:
        self._count = len(self.records)
        self._worst = max((r.epsilon for r in self.records), default=0.0)
        self._signatures = {r.quilt_signature for r in self.records}
        # Reentrant so locked methods may call other locked methods
        # (total_epsilon -> is_composable).  Dropped/rebuilt across pickling.
        self._mutex = threading.RLock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_mutex", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mutex = threading.RLock()

    def record(
        self,
        epsilon: float,
        *,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
    ) -> CompositionRecord:
        """Register a release; raises if it would exceed the budget or break
        the same-quilt condition."""
        return self.record_many(
            1, epsilon, mechanism=mechanism, quilt_signature=quilt_signature
        )[0]

    def record_many(
        self,
        n_releases: int,
        epsilon: float,
        *,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
    ) -> list[CompositionRecord]:
        """Register ``n_releases`` identical releases atomically.

        The serving layer's batched path records whole batches through here;
        either every release fits under the budget (and shares the standing
        quilt signature) or none is recorded.  The audit trail stores one
        frozen record object referenced ``n_releases`` times.
        """
        if epsilon <= 0:
            raise PrivacyParameterError(f"epsilon must be positive, got {epsilon}")
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        with self._mutex:
            if self._signatures and quilt_signature not in self._signatures:
                raise PrivacyParameterError(
                    "releases use different active Markov quilts; Theorem 4.4 does "
                    "not apply and Pufferfish privacy may not compose"
                )
            worst = max(self._worst, float(epsilon))
            total = (self._count + n_releases) * worst
            if self.budget is not None and total > self.budget + 1e-12:
                spent = self._count * self._worst
                raise BudgetExhaustedError(
                    f"{n_releases} release(s) would bring the composed guarantee "
                    f"to {total:.4g}, exceeding the budget of {self.budget:.4g} "
                    f"(spent {spent:.4g}, remaining "
                    f"{max(0.0, self.budget - spent):.4g})",
                    budget=self.budget,
                    spent=spent,
                    remaining=max(0.0, self.budget - spent),
                    requested=n_releases,
                    n_completed=0,
                )
            record = CompositionRecord(float(epsilon), mechanism, quilt_signature)
            if self.audit_trail:
                self.records.extend([record] * n_releases)
            self._count += n_releases
            self._worst = worst
            self._signatures.add(quilt_signature)
            return [record] * n_releases

    @property
    def is_composable(self) -> bool:
        """Whether all recorded releases share one quilt signature."""
        with self._mutex:
            return len(self._signatures) <= 1

    def total_epsilon(self) -> float:
        """The composed guarantee ``K * max_k eps_k`` (0.0 when empty)."""
        with self._mutex:
            if not self.is_composable:
                raise PrivacyParameterError(
                    "releases use different active Markov quilts; no composition "
                    "guarantee is available"
                )
            return self._count * self._worst

    def remaining(self) -> float | None:
        """Remaining budget, or ``None`` when no budget was set."""
        with self._mutex:
            if self.budget is None:
                return None
            return max(0.0, self.budget - self._count * self._worst)

    def __len__(self) -> int:
        with self._mutex:
            return self._count


def compose_epsilons(epsilons: list[float]) -> float:
    """The Theorem 4.4 guarantee for a list of per-release epsilons that all
    used the same quilt sets: ``K * max_k eps_k``."""
    if not epsilons:
        return 0.0
    if any(e <= 0 for e in epsilons):
        raise PrivacyParameterError("all epsilons must be positive")
    return len(epsilons) * max(epsilons)
