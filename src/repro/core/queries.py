"""L1-Lipschitz queries (Definition 2.5).

A query ``F : X^n -> R^k`` is L-Lipschitz in L1 norm when changing any single
record changes ``||F||_1`` by at most ``L``.  The Lipschitz constant is what
every mechanism in this library multiplies its noise scale by.

Queries operate on 1-D integer state arrays (a single trajectory or the
concatenation of all segments of a dataset); vector-valued queries return
1-D float arrays.  Each query knows its own ``lipschitz`` constant and its
``output_dim``.

The two workhorse queries of the paper:

* :class:`StateFrequencyQuery` — fraction of time spent in one state
  (the scalar query of the synthetic experiment), ``L = 1/n``.
* :class:`RelativeFrequencyHistogram` — fraction of time in every state
  (the activity and electricity experiments), ``L = 2/n``.
"""

from __future__ import annotations

import itertools
import weakref
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive


class Query(ABC):
    """A query with a known L1 Lipschitz constant."""

    #: Lipschitz constant ``L`` in L1 norm (Definition 2.5).
    lipschitz: float
    #: Output dimension ``k`` (1 for scalar queries).
    output_dim: int

    @abstractmethod
    def __call__(self, data: np.ndarray) -> float | np.ndarray:
        """Evaluate the query on a 1-D array of record values."""

    def evaluate_batch(self, rows: np.ndarray) -> np.ndarray:
        """Evaluate a *scalar* query on every row of an ``(N, n)`` matrix.

        The vectorized support-enumeration paths (Algorithm 1's conditional
        output distributions, :func:`repro.core.wasserstein.
        group_sensitivity`) evaluate the query over every database
        realization at once; this hook lets closed-form queries answer the
        whole batch in one NumPy pass.  The base implementation loops row by
        row — always correct, never faster — and subclasses override it only
        when the batched result is value-identical to the per-row loop.
        """
        rows = np.asarray(rows)
        if self.output_dim != 1:
            raise ValidationError("evaluate_batch is defined for scalar queries")
        return np.array([float(self(row)) for row in rows])

    def describe(self) -> str:
        """Human-readable rendering used in reports."""
        return f"{type(self).__name__}(L={self.lipschitz:g}, k={self.output_dim})"

    def signature(self) -> tuple:
        """Stable, hashable identity of this query for calibration caching.

        Two queries with equal signatures must compute the same function with
        the same Lipschitz constant — the serving layer reuses cached noise
        scales across query *objects* whose signatures match, so a collision
        between genuinely different queries would be a privacy bug.  The
        default covers queries fully described by their scalar attributes;
        queries wrapping arbitrary callables override it (see
        :meth:`ScalarQuery.signature`).
        """
        items = tuple(
            (key, value)
            for key, value in sorted(self.__dict__.items())
            if not key.startswith("_")
            and isinstance(value, (int, float, str, bool, type(None)))
        )
        return (type(self).__name__, items)


#: Monotonic tokens for anonymous callables.  A token is assigned once per
#: function object (weakly, so queries do not pin their callables alive) and
#: is never reused within the process — unlike ``id()``, whose values recycle
#: after garbage collection, which would let a *different* lambda alias a
#: cached calibration that outlived the first one.
_ANONYMOUS_COUNTER = itertools.count()
_ANONYMOUS_TOKENS: "weakref.WeakKeyDictionary[Callable, int]" = weakref.WeakKeyDictionary()


def _anonymous_token(func: Callable) -> int:
    try:
        token = _ANONYMOUS_TOKENS.get(func)
        if token is None:
            token = next(_ANONYMOUS_COUNTER)
            _ANONYMOUS_TOKENS[func] = token
        return token
    except TypeError:  # not weak-referenceable; settle for its address
        return id(func)


def _callable_token(func: Callable | None) -> tuple:
    """Identity token for a wrapped callable inside a query signature.

    Named functions are identified by module-qualified name, which is stable
    across processes (and therefore usable by the on-disk calibration cache).
    Lambdas and local closures all share the qualname ``<lambda>`` / a
    ``<locals>`` scope, so their token additionally includes a process-unique
    counter value: two different anonymous functions can never alias one
    cache entry, at the cost of making their entries process-local.
    """
    if func is None:
        return ("none",)
    qualname = f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"
    if "<lambda>" in qualname or "<locals>" in qualname:
        # The ("id", ...) tag marks this signature as process-local; the
        # serving layer salts such keys so shared caches cannot alias them,
        # and process-local signatures are excluded from serialized state
        # (see signature_is_process_local).
        return (qualname, ("id", _anonymous_token(func)))
    return (qualname,)


def signature_is_process_local(signature: object) -> bool:
    """Whether a query signature embeds a process-local ``("id", ...)`` tag.

    Such signatures must never be written unsalted into storage shared
    across processes (cache keys are salted by the serving layer; serialized
    mechanism state must skip them entirely)."""
    if isinstance(signature, tuple):
        if (
            len(signature) == 2
            and signature[0] == "id"
            and isinstance(signature[1], int)
        ):
            return True
        return any(signature_is_process_local(part) for part in signature)
    return False


class ScalarQuery(Query):
    """Wrap an arbitrary scalar function with a declared Lipschitz constant.

    The constant is trusted, not verified; prefer the specialized classes
    when they fit.
    """

    def __init__(self, func: Callable[[np.ndarray], float], lipschitz: float) -> None:
        self._func = func
        self.lipschitz = check_positive(lipschitz, "lipschitz")
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        return float(self._func(np.asarray(data)))

    def signature(self) -> tuple:
        return ("ScalarQuery", self.lipschitz, _callable_token(self._func))


class StateFrequencyQuery(Query):
    """Fraction of records equal to ``state``: ``F(X) = (1/n) sum 1[X_t = state]``.

    Changing one record changes the fraction by at most ``1/n``.
    """

    def __init__(self, state: int, n_records: int) -> None:
        if n_records < 1:
            raise ValidationError(f"n_records must be >= 1, got {n_records}")
        self.state = int(state)
        self.n_records = int(n_records)
        self.lipschitz = 1.0 / self.n_records
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        data = np.asarray(data)
        if data.size != self.n_records:
            raise ValidationError(
                f"query was built for {self.n_records} records, got {data.size}"
            )
        return float(np.mean(data == self.state))

    def evaluate_batch(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.n_records:
            raise ValidationError(
                f"query was built for {self.n_records} records, got shape {rows.shape}"
            )
        return (rows == self.state).mean(axis=1)


class RelativeFrequencyHistogram(Query):
    """Relative frequency of every state: ``F(X)_s = (1/n) sum 1[X_t = s]``.

    Changing one record moves mass ``1/n`` from one bin to another, so the
    L1 change is at most ``2/n`` — the constant used throughout Section 5.
    """

    def __init__(self, n_states: int, n_records: int) -> None:
        if n_states < 1:
            raise ValidationError(f"n_states must be >= 1, got {n_states}")
        if n_records < 1:
            raise ValidationError(f"n_records must be >= 1, got {n_records}")
        self.n_states = int(n_states)
        self.n_records = int(n_records)
        self.lipschitz = 2.0 / self.n_records
        self.output_dim = self.n_states

    def __call__(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if data.size != self.n_records:
            raise ValidationError(
                f"query was built for {self.n_records} records, got {data.size}"
            )
        return np.bincount(data, minlength=self.n_states).astype(float) / self.n_records


class CountQuery(Query):
    """Number of records satisfying a predicate; ``L = 1``.

    The flu example's query ``sum_i X_i`` is ``CountQuery(lambda x: x == 1)``.
    """

    def __init__(self, predicate: Callable[[np.ndarray], np.ndarray] | None = None) -> None:
        self._predicate = predicate
        self.lipschitz = 1.0
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        data = np.asarray(data)
        if self._predicate is None:
            return float(np.sum(data))
        return float(np.sum(self._predicate(data)))

    def evaluate_batch(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows)
        if self._predicate is None:
            return rows.sum(axis=-1).astype(float)
        # A user predicate is only promised to work on one record array at a
        # time, so batches fall back to the per-row loop.
        return super().evaluate_batch(rows)

    def signature(self) -> tuple:
        return ("CountQuery", _callable_token(self._predicate))


class SumQuery(Query):
    """Sum of records with values in ``[low, high]``; ``L = high - low``."""

    def __init__(self, low: float, high: float) -> None:
        if not high > low:
            raise ValidationError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.lipschitz = self.high - self.low
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        clipped = np.clip(np.asarray(data, dtype=float), self.low, self.high)
        return float(clipped.sum())

    def evaluate_batch(self, rows: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(rows, dtype=float), self.low, self.high).sum(axis=-1)


class MeanQuery(Query):
    """Mean of records with values in ``[low, high]``; ``L = (high - low)/n``."""

    def __init__(self, low: float, high: float, n_records: int) -> None:
        if not high > low:
            raise ValidationError(f"need high > low, got [{low}, {high}]")
        if n_records < 1:
            raise ValidationError(f"n_records must be >= 1, got {n_records}")
        self.low = float(low)
        self.high = float(high)
        self.n_records = int(n_records)
        self.lipschitz = (self.high - self.low) / self.n_records
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        data = np.asarray(data, dtype=float)
        if data.size != self.n_records:
            raise ValidationError(
                f"query was built for {self.n_records} records, got {data.size}"
            )
        return float(np.clip(data, self.low, self.high).mean())

    def evaluate_batch(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != self.n_records:
            raise ValidationError(
                f"query was built for {self.n_records} records, got shape {rows.shape}"
            )
        return np.clip(rows, self.low, self.high).mean(axis=1)
