"""L1-Lipschitz queries (Definition 2.5).

A query ``F : X^n -> R^k`` is L-Lipschitz in L1 norm when changing any single
record changes ``||F||_1`` by at most ``L``.  The Lipschitz constant is what
every mechanism in this library multiplies its noise scale by.

Queries operate on 1-D integer state arrays (a single trajectory or the
concatenation of all segments of a dataset); vector-valued queries return
1-D float arrays.  Each query knows its own ``lipschitz`` constant and its
``output_dim``.

The two workhorse queries of the paper:

* :class:`StateFrequencyQuery` — fraction of time spent in one state
  (the scalar query of the synthetic experiment), ``L = 1/n``.
* :class:`RelativeFrequencyHistogram` — fraction of time in every state
  (the activity and electricity experiments), ``L = 2/n``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive


class Query(ABC):
    """A query with a known L1 Lipschitz constant."""

    #: Lipschitz constant ``L`` in L1 norm (Definition 2.5).
    lipschitz: float
    #: Output dimension ``k`` (1 for scalar queries).
    output_dim: int

    @abstractmethod
    def __call__(self, data: np.ndarray) -> float | np.ndarray:
        """Evaluate the query on a 1-D array of record values."""

    def describe(self) -> str:
        """Human-readable rendering used in reports."""
        return f"{type(self).__name__}(L={self.lipschitz:g}, k={self.output_dim})"


class ScalarQuery(Query):
    """Wrap an arbitrary scalar function with a declared Lipschitz constant.

    The constant is trusted, not verified; prefer the specialized classes
    when they fit.
    """

    def __init__(self, func: Callable[[np.ndarray], float], lipschitz: float) -> None:
        self._func = func
        self.lipschitz = check_positive(lipschitz, "lipschitz")
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        return float(self._func(np.asarray(data)))


class StateFrequencyQuery(Query):
    """Fraction of records equal to ``state``: ``F(X) = (1/n) sum 1[X_t = state]``.

    Changing one record changes the fraction by at most ``1/n``.
    """

    def __init__(self, state: int, n_records: int) -> None:
        if n_records < 1:
            raise ValidationError(f"n_records must be >= 1, got {n_records}")
        self.state = int(state)
        self.n_records = int(n_records)
        self.lipschitz = 1.0 / self.n_records
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        data = np.asarray(data)
        if data.size != self.n_records:
            raise ValidationError(
                f"query was built for {self.n_records} records, got {data.size}"
            )
        return float(np.mean(data == self.state))


class RelativeFrequencyHistogram(Query):
    """Relative frequency of every state: ``F(X)_s = (1/n) sum 1[X_t = s]``.

    Changing one record moves mass ``1/n`` from one bin to another, so the
    L1 change is at most ``2/n`` — the constant used throughout Section 5.
    """

    def __init__(self, n_states: int, n_records: int) -> None:
        if n_states < 1:
            raise ValidationError(f"n_states must be >= 1, got {n_states}")
        if n_records < 1:
            raise ValidationError(f"n_records must be >= 1, got {n_records}")
        self.n_states = int(n_states)
        self.n_records = int(n_records)
        self.lipschitz = 2.0 / self.n_records
        self.output_dim = self.n_states

    def __call__(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if data.size != self.n_records:
            raise ValidationError(
                f"query was built for {self.n_records} records, got {data.size}"
            )
        return np.bincount(data, minlength=self.n_states).astype(float) / self.n_records


class CountQuery(Query):
    """Number of records satisfying a predicate; ``L = 1``.

    The flu example's query ``sum_i X_i`` is ``CountQuery(lambda x: x == 1)``.
    """

    def __init__(self, predicate: Callable[[np.ndarray], np.ndarray] | None = None) -> None:
        self._predicate = predicate
        self.lipschitz = 1.0
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        data = np.asarray(data)
        if self._predicate is None:
            return float(np.sum(data))
        return float(np.sum(self._predicate(data)))


class SumQuery(Query):
    """Sum of records with values in ``[low, high]``; ``L = high - low``."""

    def __init__(self, low: float, high: float) -> None:
        if not high > low:
            raise ValidationError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.lipschitz = self.high - self.low
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        clipped = np.clip(np.asarray(data, dtype=float), self.low, self.high)
        return float(clipped.sum())


class MeanQuery(Query):
    """Mean of records with values in ``[low, high]``; ``L = (high - low)/n``."""

    def __init__(self, low: float, high: float, n_records: int) -> None:
        if not high > low:
            raise ValidationError(f"need high > low, got [{low}, {high}]")
        if n_records < 1:
            raise ValidationError(f"n_records must be >= 1, got {n_records}")
        self.low = float(low)
        self.high = float(high)
        self.n_records = int(n_records)
        self.lipschitz = (self.high - self.low) / self.n_records
        self.output_dim = 1

    def __call__(self, data: np.ndarray) -> float:
        data = np.asarray(data, dtype=float)
        if data.size != self.n_records:
            raise ValidationError(
                f"query was built for {self.n_records} records, got {data.size}"
            )
        return float(np.clip(data, self.low, self.high).mean())
