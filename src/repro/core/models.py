"""Enumerable data models — the elements ``theta`` of ``Theta``.

The Wasserstein Mechanism needs, for every secret ``s`` and every ``theta``,
the conditional distribution of the query output ``P(F(X) | s, theta)``.
For finite databases this is computable by enumeration.  Three model types
cover the paper's use cases:

* :class:`TabularDataModel` — an explicit joint table over record tuples
  (used for toy instantiations and the robustness examples).
* :class:`MarkovChainModel` — enumerates a short Markov chain (used to
  cross-validate the chain-specialized mechanisms against Algorithm 1).
* :class:`FluCliqueModel` — the flu-status model of Sections 2.2 and 3.1: a
  union of cliques with a distribution over the number of infected people in
  each clique, records exchangeable within a clique.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.framework import Secret
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.markov import MarkovChain
from repro.exceptions import EnumerationError, ValidationError
from repro.utils.validation import as_probability_vector

#: Safety cap on the number of database realizations a model may enumerate.
MAX_MODEL_SUPPORT = 2_000_000


@runtime_checkable
class DataModel(Protocol):
    """Protocol for an enumerable belief ``theta`` about the database."""

    n_records: int

    def support(self) -> Iterable[tuple[tuple[int, ...], float]]:
        """Yield ``(record_tuple, probability)`` over all realizations with
        positive probability."""
        ...  # pragma: no cover - protocol stub

    def secret_probability(self, secret: Secret) -> float:
        """``P(s | theta)``."""
        ...  # pragma: no cover - protocol stub


class TabularDataModel:
    """An explicit joint distribution over record tuples.

    Parameters
    ----------
    outcomes:
        Sequence of record tuples (all the same length).
    probs:
        Probabilities matching ``outcomes``.
    """

    def __init__(
        self,
        outcomes: Sequence[Sequence[int]],
        probs: Sequence[float] | np.ndarray,
    ) -> None:
        rows = [tuple(int(v) for v in outcome) for outcome in outcomes]
        if not rows:
            raise ValidationError("a tabular model needs at least one outcome")
        lengths = {len(r) for r in rows}
        if len(lengths) != 1:
            raise ValidationError(f"all outcomes must have equal length, got lengths {sorted(lengths)}")
        if len(set(rows)) != len(rows):
            raise ValidationError("outcomes must be distinct; merge duplicated rows first")
        self._rows = rows
        self._probs = as_probability_vector(probs, "outcome probabilities")
        if self._probs.size != len(rows):
            raise ValidationError(
                f"got {len(rows)} outcomes but {self._probs.size} probabilities"
            )
        self.n_records = len(rows[0])

    @classmethod
    def from_bayesnet(cls, network) -> "TabularDataModel":
        """Materialize a :class:`~repro.distributions.bayesnet.DiscreteBayesianNetwork`."""
        assignments, probs = network.enumerate_joint()
        keep = probs > 0
        rows = [a for a, k in zip(assignments, keep) if k]
        return cls(rows, probs[keep] / probs[keep].sum())

    def support(self) -> Iterable[tuple[tuple[int, ...], float]]:
        for row, prob in zip(self._rows, self._probs):
            if prob > 0:
                yield row, float(prob)

    def secret_probability(self, secret: Secret) -> float:
        self._check_index(secret.index)
        return float(
            sum(p for row, p in zip(self._rows, self._probs) if row[secret.index] == secret.value)
        )

    def conditioned_on(self, secret: Secret) -> "TabularDataModel":
        """The conditional model ``theta | s`` (used by Theorem 2.4)."""
        mass = self.secret_probability(secret)
        if mass <= 0:
            raise ValidationError(f"secret {secret.describe()} has zero probability")
        rows = []
        probs = []
        for row, prob in zip(self._rows, self._probs):
            if row[secret.index] == secret.value and prob > 0:
                rows.append(row)
                probs.append(prob / mass)
        return TabularDataModel(rows, np.asarray(probs))

    def output_distribution(self, func) -> DiscreteDistribution:
        """Pushforward distribution of a scalar function of the records."""
        return DiscreteDistribution.from_pairs(
            (float(func(np.asarray(row))), prob) for row, prob in self.support()
        )

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_records:
            raise ValidationError(
                f"record index {index} out of range for {self.n_records} records"
            )


class MarkovChainModel:
    """Exhaustive enumeration of a short Markov chain.

    Only suitable for small ``k**T``; the chain-specialized mechanisms of
    :mod:`repro.core.mqm_chain` handle realistic lengths.  This model exists
    so the general mechanisms (Wasserstein, Algorithm 2) can be exercised and
    cross-validated on chains.
    """

    def __init__(self, chain: MarkovChain, length: int) -> None:
        if length < 1:
            raise ValidationError(f"chain length must be >= 1, got {length}")
        if chain.n_states**length > MAX_MODEL_SUPPORT:
            raise EnumerationError(
                f"enumerating {chain.n_states}^{length} trajectories exceeds the "
                f"cap of {MAX_MODEL_SUPPORT}"
            )
        self.chain = chain
        self.n_records = int(length)

    def support(self) -> Iterable[tuple[tuple[int, ...], float]]:
        k = self.chain.n_states
        q = self.chain.initial
        p = self.chain.transition
        for trajectory in itertools.product(range(k), repeat=self.n_records):
            prob = q[trajectory[0]]
            for a, b in zip(trajectory[:-1], trajectory[1:]):
                if prob == 0.0:
                    break
                prob *= p[a, b]
            if prob > 0:
                yield trajectory, float(prob)

    def secret_probability(self, secret: Secret) -> float:
        if not 0 <= secret.index < self.n_records:
            raise ValidationError(
                f"record index {secret.index} out of range for {self.n_records} records"
            )
        marginal = self.chain.marginal(secret.index)
        if not 0 <= secret.value < self.chain.n_states:
            return 0.0
        return float(marginal[secret.value])

    def to_tabular(self) -> TabularDataModel:
        """Materialize as an explicit table."""
        rows, probs = zip(*self.support())
        return TabularDataModel(list(rows), np.asarray(probs) / np.sum(probs))


class FluCliqueModel:
    """The flu-status model: records partitioned into independent cliques.

    Within a clique of size ``m`` the records are exchangeable 0/1 variables
    whose sum ``N`` follows ``count_distribution`` (a length ``m+1`` vector).
    Across cliques, counts are independent.  This matches the Section 2.2
    example ``theta = (G_theta, p_theta)`` with ``G_theta`` a union of
    cliques.

    Parameters
    ----------
    clique_sizes:
        Sizes of the cliques; records are numbered consecutively clique by
        clique.
    count_distributions:
        One probability vector per clique over ``{0, ..., size}``.
    """

    def __init__(
        self,
        clique_sizes: Sequence[int],
        count_distributions: Sequence[Sequence[float] | np.ndarray],
    ) -> None:
        if len(clique_sizes) != len(count_distributions):
            raise ValidationError("need one count distribution per clique")
        self.clique_sizes = [int(s) for s in clique_sizes]
        if any(s < 1 for s in self.clique_sizes):
            raise ValidationError("clique sizes must be >= 1")
        self.count_distributions = []
        for size, dist in zip(self.clique_sizes, count_distributions):
            vec = as_probability_vector(dist, "count distribution")
            if vec.size != size + 1:
                raise ValidationError(
                    f"count distribution for a clique of size {size} must have "
                    f"{size + 1} entries, got {vec.size}"
                )
            self.count_distributions.append(vec)
        self.n_records = sum(self.clique_sizes)
        total = 1.0
        for size in self.clique_sizes:
            total *= 2**size
        if total > MAX_MODEL_SUPPORT:
            raise EnumerationError(
                f"enumerating {total} flu configurations exceeds the cap of {MAX_MODEL_SUPPORT}"
            )

    @classmethod
    def exponential_cliques(cls, clique_sizes: Sequence[int], rate: float = 2.0) -> "FluCliqueModel":
        """The concrete example of Section 2.2: within each clique ``C`` the
        infected count follows ``P(N = j) ∝ exp(rate * j)``."""
        dists = []
        for size in clique_sizes:
            weights = np.exp(rate * np.arange(size + 1))
            dists.append(weights / weights.sum())
        return cls(clique_sizes, dists)

    def _clique_of(self, index: int) -> tuple[int, int]:
        """(clique id, offset of record within clique)."""
        if not 0 <= index < self.n_records:
            raise ValidationError(f"record index {index} out of range for {self.n_records} records")
        offset = index
        for cid, size in enumerate(self.clique_sizes):
            if offset < size:
                return cid, offset
            offset -= size
        raise AssertionError("unreachable")  # pragma: no cover

    def support(self) -> Iterable[tuple[tuple[int, ...], float]]:
        """Enumerate all 0/1 configurations.

        Exchangeability within a clique means a configuration with ``j``
        infected in a clique of size ``m`` has probability
        ``count_distribution[j] / C(m, j)``.
        """
        per_clique_configs = []
        for size, dist in zip(self.clique_sizes, self.count_distributions):
            configs = []
            for bits in itertools.product((0, 1), repeat=size):
                j = sum(bits)
                denom = _binomial(size, j)
                configs.append((bits, dist[j] / denom))
            per_clique_configs.append(configs)
        for combo in itertools.product(*per_clique_configs):
            bits: tuple[int, ...] = tuple(itertools.chain.from_iterable(c[0] for c in combo))
            prob = 1.0
            for c in combo:
                prob *= c[1]
            if prob > 0:
                yield bits, float(prob)

    def secret_probability(self, secret: Secret) -> float:
        if secret.value not in (0, 1):
            return 0.0
        cid, _ = self._clique_of(secret.index)
        size = self.clique_sizes[cid]
        dist = self.count_distributions[cid]
        # P(X_i = 1) = E[N] / m by exchangeability.
        p_one = float(np.dot(np.arange(size + 1), dist) / size)
        return p_one if secret.value == 1 else 1.0 - p_one

    def conditional_count_distribution(self, secret: Secret) -> DiscreteDistribution:
        """``P(N_c = . | X_i = value)`` for the clique containing the secret.

        By exchangeability ``P(N = j | X_i = 1) ∝ (j / m) P(N = j)`` and
        ``P(N = j | X_i = 0) ∝ ((m - j) / m) P(N = j)``; this reproduces the
        conditional table of the Section 3.1 example.
        """
        cid, _ = self._clique_of(secret.index)
        size = self.clique_sizes[cid]
        dist = self.count_distributions[cid]
        counts = np.arange(size + 1)
        if secret.value == 1:
            weights = dist * counts / size
        elif secret.value == 0:
            weights = dist * (size - counts) / size
        else:
            raise ValidationError(f"flu status must be 0 or 1, got {secret.value}")
        total = weights.sum()
        if total <= 0:
            raise ValidationError(f"secret {secret.describe()} has zero probability")
        return DiscreteDistribution(counts.astype(float), weights / total)

    def total_count_distribution(self) -> DiscreteDistribution:
        """Distribution of the total infected count across all cliques."""
        result = DiscreteDistribution.point_mass(0.0)
        for size, dist in zip(self.clique_sizes, self.count_distributions):
            clique = DiscreteDistribution(np.arange(size + 1, dtype=float), dist)
            result = _convolve(result, clique)
        return result


def _binomial(n: int, k: int) -> float:
    out = 1.0
    for i in range(k):
        out = out * (n - i) / (i + 1)
    return out


def _convolve(a: DiscreteDistribution, b: DiscreteDistribution) -> DiscreteDistribution:
    pairs = []
    for x, px in zip(a.atoms, a.probs):
        for y, py in zip(b.atoms, b.probs):
            pairs.append((x + y, px * py))
    return DiscreteDistribution.from_pairs(pairs)
