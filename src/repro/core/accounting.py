"""Budget accountants: the shared ledger contract and Rényi composition.

Two accountants enforce one epsilon budget behind one interface:

* :class:`~repro.core.composition.CompositionAccountant` — the paper's
  linear rule (Theorem 4.4): ``K`` releases at levels ``eps_1..eps_K`` with
  a shared active quilt compose to ``K * max_k eps_k``.
* :class:`RenyiAccountant` — Rényi-Pufferfish composition in the style of
  Pierquin et al. ("Rényi Pufferfish Privacy") and Bai et al. ("Composition
  for Pufferfish Privacy"): each release's cost is tracked as a *Rényi
  divergence curve* over a grid of orders ``alpha``, curves add across
  releases order-by-order, and the spent budget is the ``(epsilon, delta)``
  conversion minimized over the grid.  For long release streams this is the
  strong-composition regime — ``O(sqrt(K))`` epsilon growth instead of
  ``O(K)`` — which directly multiplies how many releases one budget serves.

Both accountants subclass :class:`BaseAccountant`, which owns the entire
check-then-record cycle: the lock discipline (one reentrant mutex around
check *and* commit, so concurrent recorders can never jointly over-spend),
input validation, the same-quilt signature condition, the audit trail, and
the :class:`~repro.exceptions.BudgetExhaustedError` payload (including the
structured ``accountant`` field naming the class that refused).  Subclasses
only provide the arithmetic — what a release costs and what the running
total converts to — so the two accountants cannot drift on thread safety or
pickling behavior.

Soundness of the Rényi ledger
-----------------------------
Pufferfish privacy does not compose in general; the linear accountant is
*proved* for MQM under the fixed-active-quilt condition (Theorem 4.4), and
the Rényi accountant enforces exactly the same signature condition and
inherits the same caveat (see the ADR in ``docs/architecture.md``).  Under
that condition, the per-release cost curves used here are conservative:

* a pure ``eps``-Pufferfish release (Laplace mechanisms) is charged
  ``min(eps, alpha * eps^2 / 2)`` at order ``alpha`` — the Bun–Steinke
  zCDP bound for a pointwise-bounded log-likelihood ratio, capped by the
  order-monotone ``D_alpha <= D_inf = eps``;
* a mechanism exposing ``rdp_curve(orders)`` (the Gaussian Markov Quilt
  Mechanism) is charged its own curve.

The order grid always contains ``alpha = inf``, where the per-release cost
of a pure release is exactly ``eps`` and the ``(epsilon, delta)``
conversion adds nothing.  The converted total is therefore **never larger
than the linear total** — the Rényi accountant can only stop *later* than
linear accounting, never earlier (``tests/test_accounting.py`` proves this
on randomized schedules).
"""

from __future__ import annotations

import copy
import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.exceptions import BudgetExhaustedError, PrivacyParameterError

#: Absolute slack on every budget comparison (float-sum noise only).
BUDGET_ATOL = 1e-12

#: Default Rényi order grid.  Small orders capture the strong-composition
#: regime (optimal ``alpha`` is ``1 + sqrt(log(1/delta) / (K eps^2 / 2))``
#: for K pure-eps releases); the mandatory ``inf`` entry pins the ledger to
#: the linear total so Rényi accounting is never worse than linear.
DEFAULT_ORDERS: tuple[float, ...] = (
    1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0, 16.0,
    24.0, 32.0, 48.0, 64.0, 128.0, 256.0, math.inf,
)

#: Signature of a mechanism-supplied Rényi cost curve: maps an array of
#: orders to the per-release Rényi divergence bound at each order.
RdpCurve = Callable[[np.ndarray], np.ndarray]


def pure_rdp_curve(epsilon: float, orders: np.ndarray) -> np.ndarray:
    """Rényi cost curve of one pure ``epsilon``-Pufferfish release.

    ``min(eps, alpha * eps^2 / 2)`` per order: the ``alpha * eps^2 / 2``
    branch is the Bun–Steinke 2016 (Prop. 3.3) sub-Gaussian bound, whose
    proof needs only ``sup |log p/q| <= eps`` and so applies verbatim to the
    Pufferfish secret-pair conditionals; the ``eps`` cap is monotonicity of
    Rényi divergence in the order (``D_alpha <= D_inf``).  At
    ``alpha = inf`` the curve is exactly ``eps``.
    """
    orders = np.asarray(orders, dtype=float)
    with np.errstate(invalid="ignore"):  # inf * 0 at (inf, eps=0) never occurs: eps > 0
        quadratic = 0.5 * orders * epsilon * epsilon
    return np.minimum(float(epsilon), quadratic)


@dataclass(frozen=True)
class CompositionRecord:
    """One recorded release.

    ``rdp_orders`` / ``rdp_values`` carry the release's *own* Rényi cost
    curve (the mechanism-supplied ``rdp_curve`` evaluated on the recording
    accountant's order grid) whenever one was charged; ``None`` for pure
    releases, whose curve is reproducible from ``epsilon`` alone.  They make
    the audit trail a *complete* ledger: a
    :class:`RenyiAccountant` rebuilt from its trail (restart-from-trail,
    pickling ``records`` separately, a durable store replaying history)
    recovers bit-identical running totals instead of falling back to the
    conservative pure-release envelope — the PR 6 restart bug.
    """

    epsilon: float
    mechanism: str
    quilt_signature: Hashable
    rdp_orders: tuple[float, ...] | None = None
    rdp_values: tuple[float, ...] | None = None


def encode_signature(signature: Hashable) -> Any:
    """A quilt signature as a JSON-safe value (tuples tagged, scalars raw).

    Signatures in this library are nested tuples of strings/numbers (node
    names and quilt members); anything else is refused loudly — a durable
    ledger must never silently store a signature it cannot faithfully
    rehydrate, because the Theorem 4.4 same-quilt check compares them for
    equality across restarts.
    """
    if isinstance(signature, tuple):
        return {"tuple": [encode_signature(item) for item in signature]}
    if signature is None or isinstance(signature, (bool, int, float, str)):
        return signature
    raise PrivacyParameterError(
        f"quilt signature component {signature!r} is not JSON-serializable; "
        f"durable ledgers require signatures built from tuples and scalars"
    )


def decode_signature(encoded: Any) -> Hashable:
    """Inverse of :func:`encode_signature`."""
    if isinstance(encoded, dict):
        return tuple(decode_signature(item) for item in encoded["tuple"])
    return encoded


def _encode_trail(records: Sequence[CompositionRecord]) -> list[dict]:
    """The audit trail as JSON-safe run-length groups.

    Consecutive references to the *same* record object (how ``record_many``
    appends batches) collapse into one group, so the encoding preserves the
    exact grouping the running totals were accumulated with — decoding and
    replaying reproduces them bit for bit.
    """
    groups: list[dict] = []
    index = 0
    while index < len(records):
        record = records[index]
        count = 1
        while index + count < len(records) and records[index + count] is record:
            count += 1
        groups.append(
            {
                "n": count,
                "epsilon": record.epsilon,
                "mechanism": record.mechanism,
                "quilt_signature": encode_signature(record.quilt_signature),
                "rdp_orders": (
                    None if record.rdp_orders is None else list(record.rdp_orders)
                ),
                "rdp_values": (
                    None if record.rdp_values is None else list(record.rdp_values)
                ),
            }
        )
        index += count
    return groups


def _decode_trail(groups: Sequence[Mapping]) -> list[CompositionRecord]:
    """Inverse of :func:`_encode_trail` (group identity preserved)."""
    records: list[CompositionRecord] = []
    for group in groups:
        record = CompositionRecord(
            float(group["epsilon"]),
            str(group["mechanism"]),
            decode_signature(group["quilt_signature"]),
            rdp_orders=(
                None
                if group.get("rdp_orders") is None
                else tuple(float(a) for a in group["rdp_orders"])
            ),
            rdp_values=(
                None
                if group.get("rdp_values") is None
                else tuple(float(v) for v in group["rdp_values"])
            ),
        )
        records.extend([record] * int(group["n"]))
    return records


class BaseAccountant:
    """The shared check-then-record contract of every budget accountant.

    Subclasses are dataclasses exposing ``budget`` / ``records`` /
    ``audit_trail`` fields and implement three arithmetic hooks — all called
    with the mutex held:

    * :meth:`_stage_locked` — the prospective total if ``n`` more releases
      at ``epsilon`` were admitted, plus an opaque commit token;
    * :meth:`_apply_locked` — commit a staged token;
    * :meth:`_spent_locked` — the current total.

    Everything else — the reentrant mutex around the whole
    check-then-record cycle, ``__getstate__``/``__setstate__`` dropping and
    rebuilding the lock for pickling, parameter validation, the Theorem 4.4
    same-quilt signature condition, the audit trail / ``audit_trail=False``
    aggregates-only mode, and the structured
    :class:`~repro.exceptions.BudgetExhaustedError` payload — lives here
    once, so the accountants cannot drift on any of it.
    """

    # -- runtime state shared by all subclasses -------------------------
    def _init_runtime(self) -> None:
        """Build the non-field runtime state (called from __post_init__)."""
        self._count = len(self.records)
        self._signatures = {r.quilt_signature for r in self.records}
        # Reentrant so locked methods may call other locked methods
        # (total_epsilon -> is_composable).  Dropped/rebuilt across pickling.
        self._mutex = threading.RLock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_mutex", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mutex = threading.RLock()

    # -- arithmetic hooks (subclass responsibility) ---------------------
    def _spent_locked(self) -> float:
        """Current composed guarantee (mutex held)."""
        raise NotImplementedError

    def _stage_locked(
        self, n_releases: int, epsilon: float, rdp_curve: RdpCurve | None
    ) -> tuple[float, Any]:
        """``(prospective_total, commit_token)`` for ``n`` more releases
        (mutex held).  Nothing is mutated."""
        raise NotImplementedError

    def _apply_locked(self, token: Any) -> None:
        """Commit a token produced by :meth:`_stage_locked` (mutex held)."""
        raise NotImplementedError

    def _trail_curve_locked(
        self, epsilon: float, rdp_curve: RdpCurve | None, token: Any
    ) -> tuple[tuple[float, ...], tuple[float, ...]] | None:
        """The ``(orders, values)`` to persist in this release's trail
        record, or ``None`` when ``epsilon`` alone reproduces the cost
        (mutex held; ``token`` is the staged commit token, so accountants
        that already evaluated the curve need not evaluate it twice).

        The base returns ``None`` — linear accounting never charges curves,
        so its trail carries nothing to lose.
        """
        return None

    # -- the one check-then-record cycle --------------------------------
    def record(
        self,
        epsilon: float,
        *,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
        rdp_curve: RdpCurve | None = None,
    ) -> CompositionRecord:
        """Register a release; raises if it would exceed the budget or break
        the same-quilt condition."""
        return self.record_many(
            1,
            epsilon,
            mechanism=mechanism,
            quilt_signature=quilt_signature,
            rdp_curve=rdp_curve,
        )[0]

    def record_many(
        self,
        n_releases: int,
        epsilon: float,
        *,
        mechanism: str = "MQM",
        quilt_signature: Hashable = None,
        rdp_curve: RdpCurve | None = None,
    ) -> list[CompositionRecord]:
        """Register ``n_releases`` identical releases atomically.

        The serving layer's batched path records whole batches through here;
        either every release fits under the budget (and shares the standing
        quilt signature) or none is recorded.  The audit trail stores one
        frozen record object referenced ``n_releases`` times.

        ``rdp_curve`` optionally supplies the releases' own Rényi cost curve
        (mechanisms exposing ``rdp_curve``, e.g. the Gaussian MQM); the
        linear accountant ignores it, the Rényi accountant uses it in place
        of the conservative pure-release curve.
        """
        if epsilon <= 0:
            raise PrivacyParameterError(f"epsilon must be positive, got {epsilon}")
        if n_releases < 1:
            raise PrivacyParameterError(
                f"n_releases must be >= 1, got {n_releases}"
            )
        with self._mutex:
            if self._signatures and quilt_signature not in self._signatures:
                raise PrivacyParameterError(
                    "releases use different active Markov quilts; Theorem 4.4 does "
                    "not apply and Pufferfish privacy may not compose"
                )
            total, token = self._stage_locked(n_releases, float(epsilon), rdp_curve)
            if self.budget is not None and total > self.budget + BUDGET_ATOL:
                spent = self._spent_locked()
                raise BudgetExhaustedError(
                    f"{n_releases} release(s) would bring the composed guarantee "
                    f"to {total:.4g}, exceeding the budget of {self.budget:.4g} "
                    f"(spent {spent:.4g}, remaining "
                    f"{max(0.0, self.budget - spent):.4g})",
                    budget=self.budget,
                    spent=spent,
                    remaining=max(0.0, self.budget - spent),
                    requested=n_releases,
                    n_completed=0,
                    accountant=type(self).__name__,
                )
            trail_curve = (
                self._trail_curve_locked(float(epsilon), rdp_curve, token)
                if self.audit_trail
                else None
            )
            self._apply_locked(token)
            record = CompositionRecord(
                float(epsilon),
                mechanism,
                quilt_signature,
                rdp_orders=None if trail_curve is None else trail_curve[0],
                rdp_values=None if trail_curve is None else trail_curve[1],
            )
            if self.audit_trail:
                self.records.extend([record] * n_releases)
            self._count += n_releases
            self._signatures.add(quilt_signature)
            return [record] * n_releases

    # -- shared reads ----------------------------------------------------
    @property
    def is_composable(self) -> bool:
        """Whether all recorded releases share one quilt signature."""
        with self._mutex:
            return len(self._signatures) <= 1

    def total_epsilon(self) -> float:
        """The composed guarantee accumulated so far (0.0 when empty)."""
        with self._mutex:
            if not self.is_composable:
                raise PrivacyParameterError(
                    "releases use different active Markov quilts; no composition "
                    "guarantee is available"
                )
            return self._spent_locked()

    def remaining(self) -> float | None:
        """Remaining budget, or ``None`` when no budget was set."""
        with self._mutex:
            if self.budget is None:
                return None
            return max(0.0, self.budget - self._spent_locked())

    def __len__(self) -> int:
        with self._mutex:
            return self._count

    # -- prospective totals (reservation admission) ----------------------
    def preview(self, charges: Sequence[tuple[int, float]]) -> float:
        """The composed total if all ``(n_releases, epsilon)`` charges were
        admitted on top of the current ledger — nothing is recorded.

        Charges are priced at the conservative pure-release cost (the only
        sound choice before the releases exist: a mechanism-supplied curve
        is not known until release time, and the ``alpha = inf`` pin makes
        the pure cost an upper envelope of the linear total either way).
        This is the admission arithmetic of reservation-style budgeting:
        the service ledger previews every outstanding reservation's
        unconsumed remainder plus the new request, and refuses the
        reservation — not the eventual release — when the total would
        overshoot (see :mod:`repro.service.ledger`).
        """
        with self._mutex:
            clone = copy.deepcopy(self)
        total = clone._spent_locked()  # repro-lint: disable=R1 -- clone is a frame-private deepcopy; no other thread can see it
        for n_releases, epsilon in charges:
            if n_releases < 0:
                raise PrivacyParameterError(
                    f"n_releases must be >= 0, got {n_releases}"
                )
            if n_releases == 0:
                continue
            if epsilon <= 0:
                raise PrivacyParameterError(
                    f"epsilon must be positive, got {epsilon}"
                )
            total, token = clone._stage_locked(int(n_releases), float(epsilon), None)  # repro-lint: disable=R1 -- clone is frame-private
            clone._apply_locked(token)  # repro-lint: disable=R1 -- clone is frame-private
            # The count advance normally happens in record_many, after the
            # hooks; the clone must mirror it or staged linear totals stall.
            clone._count += int(n_releases)
        return total

    # -- durable serialization -------------------------------------------
    #: Discriminator stored in :meth:`state_dict`; subclass responsibility.
    _STATE_KIND: str = ""

    def _state_extra_locked(self) -> dict:
        """Subclass aggregates for :meth:`state_dict` (mutex held)."""
        raise NotImplementedError

    def _restore_extra(self, state: Mapping) -> None:
        """Inverse of :meth:`_state_extra_locked` (mutex held)."""
        raise NotImplementedError

    def state_dict(self, *, include_trail: bool = True) -> dict:
        """The complete ledger as a JSON-safe dict.

        Everything the budget enforcement depends on rides along — count,
        the linear worst-epsilon or the full Rényi running curve, the quilt
        signatures, and (unless ``include_trail=False``) the audit trail
        with per-release RDP curves.  :func:`accountant_from_state` inverts
        it **bit-identically**: the aggregates are restored verbatim rather
        than replayed, so float-summation order cannot drift and
        ``eps(delta)`` round-trips exactly — the property the durable
        tenant ledgers are built on.
        """
        with self._mutex:
            state: dict[str, Any] = {
                "kind": self._STATE_KIND,
                "budget": None if self.budget is None else float(self.budget),
                "audit_trail": bool(self.audit_trail),
                "count": int(self._count),
                "signatures": sorted(
                    (encode_signature(s) for s in self._signatures),
                    key=repr,
                ),
            }
            state.update(self._state_extra_locked())
            if include_trail and self.records:
                state["trail"] = _encode_trail(self.records)
            return state

    def _restore_state(self, state: Mapping) -> None:
        with self._mutex:
            self.records = _decode_trail(state.get("trail") or [])
            self._count = int(state["count"])
            self._signatures = {
                decode_signature(s) for s in state["signatures"]
            }
            self._restore_extra(state)


def accountant_from_state(state: Mapping) -> BaseAccountant:
    """Rehydrate an accountant from :meth:`BaseAccountant.state_dict`.

    The restored ledger enforces identically to the one that was dumped:
    same budget decisions on the same future schedule, bit-identical
    ``eps(delta)`` for Rényi ledgers (running curves restored verbatim,
    never re-derived through the envelope).
    """
    kind = state.get("kind")
    if kind == "linear":
        from repro.core.composition import CompositionAccountant

        accountant: BaseAccountant = CompositionAccountant(
            budget=state["budget"], audit_trail=bool(state["audit_trail"])
        )
    elif kind == "renyi":
        accountant = RenyiAccountant(
            budget=state["budget"],
            delta=float(state["delta"]),
            orders=tuple(float(a) for a in state["orders"]),
            audit_trail=bool(state["audit_trail"]),
        )
    elif kind == "sliding":
        from repro.core.windowed import SlidingWindowAccountant

        accountant = SlidingWindowAccountant(
            budget=state["budget"],
            window_span=int(state["window_span"]),
            audit_trail=bool(state["audit_trail"]),
        )
    else:
        raise PrivacyParameterError(
            f"unknown accountant state kind {kind!r} (expected 'linear', "
            f"'renyi', or 'sliding')"
        )
    accountant._restore_state(state)
    return accountant


@dataclass
class RenyiAccountant(BaseAccountant):
    """Rényi-Pufferfish composition behind the linear accountant's contract.

    Per release, a Rényi cost curve over :attr:`orders` is added to the
    running curve (order-by-order — Rényi divergence composes additively
    under the same fixed-quilt condition the linear accountant enforces via
    signatures).  The *spent epsilon* reported against the budget is the
    standard RDP-to-DP conversion, minimized over the grid::

        epsilon(delta) = min_alpha [ rdp(alpha) + log(1/delta) / (alpha - 1) ]

    with the ``alpha = inf`` grid entry contributing ``rdp(inf)`` exactly
    (no conversion overhead), so the converted total never exceeds the
    linear sum — this accountant stops *no earlier* than
    :class:`~repro.core.composition.CompositionAccountant`, and strictly
    later once enough releases accumulate (the strong-composition regime).
    The guarantee enforced is therefore ``(budget, delta)``-Pufferfish
    rather than the linear accountant's pure ``budget``-Pufferfish.

    Parameters
    ----------
    budget:
        Optional total epsilon budget at :attr:`delta`; :meth:`record`
        raises once the converted guarantee would exceed it.
    delta:
        The failure probability of the converted guarantee (must be in
        ``(0, 1)``).
    orders:
        The alpha grid.  Must be finite values ``> 1`` plus optionally
        ``inf``; ``inf`` is always appended if missing (it is what makes
        the accountant never-worse-than-linear).
    audit_trail:
        As for the linear accountant: ``False`` keeps only O(1) aggregates.
    """

    budget: float | None = None
    delta: float = 1e-6
    orders: Sequence[float] = DEFAULT_ORDERS
    records: list[CompositionRecord] = field(default_factory=list)
    audit_trail: bool = True

    _STATE_KIND = "renyi"

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise PrivacyParameterError(
                f"delta must be in (0, 1), got {self.delta}"
            )
        orders = tuple(float(a) for a in self.orders)
        if any(a <= 1.0 for a in orders):
            raise PrivacyParameterError(
                f"all Rényi orders must be > 1, got {sorted(orders)}"
            )
        if not orders or not math.isinf(max(orders)):
            orders = orders + (math.inf,)
        self.orders = tuple(sorted(set(orders)))
        self._order_array = np.array(self.orders, dtype=float)
        # log(1/delta)/(alpha-1) conversion overhead per order; 0 at inf.
        with np.errstate(divide="ignore"):
            self._overhead = math.log(1.0 / self.delta) / (self._order_array - 1.0)
        self._overhead[np.isinf(self._order_array)] = 0.0
        self._rdp = np.zeros_like(self._order_array)
        self._init_runtime()
        if self.records:
            # Rebuild the running curve from the audit trail, **exactly**:
            # records carry the mechanism-supplied curve they were charged
            # (``rdp_values`` on this accountant's grid), so Gaussian
            # releases replay at their true cost, not the conservative
            # pure-epsilon envelope (the PR 6 restart bug).  Consecutive
            # references to one record object — how ``record_many`` appends
            # batches — are re-grouped so the ``_rdp + n * costs``
            # accumulation repeats the original float-summation order bit
            # for bit (object identity survives pickling: the pickle memo
            # restores repeated references as one object).
            index = 0
            while index < len(self.records):
                record = self.records[index]
                count = 1
                while (
                    index + count < len(self.records)
                    and self.records[index + count] is record
                ):
                    count += 1
                self._rdp = self._rdp + count * self._record_costs(record)
                index += count

    def _record_costs(self, record: CompositionRecord) -> np.ndarray:
        """One trail record's per-order cost curve, exactly as charged."""
        if record.rdp_values is None:
            return pure_rdp_curve(record.epsilon, self._order_array)
        if tuple(record.rdp_orders or ()) != self.orders:
            raise PrivacyParameterError(
                f"audit-trail record carries an RDP curve on order grid "
                f"{record.rdp_orders}, but this accountant uses "
                f"{self.orders}; rebuild with the recording accountant's "
                f"grid — re-gridding a curve is not sound"
            )
        return np.asarray(record.rdp_values, dtype=float)

    # -- arithmetic hooks -------------------------------------------------
    def _costs(self, epsilon: float, rdp_curve: RdpCurve | None) -> np.ndarray:
        costs = (
            np.asarray(rdp_curve(self._order_array), dtype=float)
            if rdp_curve is not None
            else pure_rdp_curve(epsilon, self._order_array)
        )
        if costs.shape != self._order_array.shape:
            raise PrivacyParameterError(
                f"rdp_curve returned shape {costs.shape}, expected "
                f"{self._order_array.shape}"
            )
        if np.any(np.isnan(costs)) or np.any(costs < 0):
            raise PrivacyParameterError(
                "rdp_curve must return non-negative, non-NaN costs"
            )
        return costs

    def _convert(self, rdp: np.ndarray) -> float:
        """``(epsilon, delta)`` conversion of a total curve: min over orders
        of ``rdp(alpha) + log(1/delta)/(alpha-1)`` (exact at ``inf``)."""
        if not self._count and not rdp.any():
            return 0.0
        return float(np.min(rdp + self._overhead))

    def _spent_locked(self) -> float:
        return self._convert(self._rdp)

    def _stage_locked(
        self, n_releases: int, epsilon: float, rdp_curve: RdpCurve | None
    ) -> tuple[float, Any]:
        costs = self._costs(epsilon, rdp_curve)
        prospective = self._rdp + n_releases * costs
        total = float(np.min(prospective + self._overhead))
        return total, (prospective, costs)

    def _apply_locked(self, token: tuple[np.ndarray, np.ndarray]) -> None:
        self._rdp = token[0]

    def _trail_curve_locked(
        self, epsilon: float, rdp_curve: RdpCurve | None, token: Any
    ) -> tuple[tuple[float, ...], tuple[float, ...]] | None:
        # Pure releases reproduce from epsilon alone; mechanism-supplied
        # curves are persisted on this accountant's grid (already evaluated
        # during staging — the token carries them) so restart-from-trail
        # replays them exactly instead of the conservative envelope.
        if rdp_curve is None:
            return None
        return self.orders, tuple(float(c) for c in token[1])

    def _state_extra_locked(self) -> dict:
        return {
            "delta": float(self.delta),
            "orders": [float(a) for a in self.orders],
            "rdp": [float(c) for c in self._rdp],
        }

    def _restore_extra(self, state: Mapping) -> None:
        restored = np.asarray(state["rdp"], dtype=float)
        if restored.shape != self._order_array.shape:
            raise PrivacyParameterError(
                f"restored rdp totals have shape {restored.shape}, expected "
                f"{self._order_array.shape}"
            )
        self._rdp = restored

    # -- Rényi introspection ----------------------------------------------
    def rdp_totals(self) -> dict[float, float]:
        """The accumulated Rényi cost per order (a copy)."""
        with self._mutex:
            return {
                float(a): float(c)
                for a, c in zip(self._order_array, self._rdp)
            }

    def epsilon_at(self, delta: float) -> float:
        """The spent guarantee converted at an arbitrary ``delta``."""
        if not 0.0 < delta < 1.0:
            raise PrivacyParameterError(f"delta must be in (0, 1), got {delta}")
        with self._mutex:
            if not self._count:
                return 0.0
            with np.errstate(divide="ignore"):
                overhead = math.log(1.0 / delta) / (self._order_array - 1.0)
            overhead[np.isinf(self._order_array)] = 0.0
            return float(np.min(self._rdp + overhead))

    def optimal_order(self) -> float:
        """The grid order achieving the reported conversion (the
        "optimal alpha"); ``inf`` until strong composition starts to win."""
        with self._mutex:
            if not self._count:
                return math.inf
            return float(self._order_array[int(np.argmin(self._rdp + self._overhead))])
