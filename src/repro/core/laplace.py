"""Laplace noise primitives and the common mechanism interface.

Every mechanism in the paper is of the form ``F(D) + scale * Lap(1)`` (added
per coordinate for vector queries, which preserves the guarantee for
L1-Lipschitz queries by Proposition 1 of Dwork et al.).  The subclasses only
differ in how ``scale`` is computed, so the shared release logic lives here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.queries import Query
from repro.exceptions import PrivacyParameterError
from repro.utils.rngtools import resolve_rng


def sample_laplace(
    scale: float,
    size: int | tuple[int, ...] | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> float | np.ndarray:
    """Draw from ``Lap(0, scale)`` (density ``exp(-|x|/scale) / (2 scale)``).

    A scale of 0 returns exact zeros (useful for "no noise" baselines).
    """
    if scale < 0:
        raise PrivacyParameterError(f"Laplace scale must be >= 0, got {scale}")
    gen = resolve_rng(rng)
    if scale == 0:
        return 0.0 if size is None else np.zeros(size)
    return gen.laplace(loc=0.0, scale=scale, size=size)


def laplace_density(w: np.ndarray | float, center: float, scale: float) -> np.ndarray | float:
    """Density of ``center + Lap(scale)`` at ``w`` — used by the numeric
    privacy-verification tests."""
    if scale <= 0:
        raise PrivacyParameterError(f"Laplace scale must be > 0, got {scale}")
    return np.exp(-np.abs(np.asarray(w, dtype=float) - center) / scale) / (2.0 * scale)


@dataclass
class PrivateRelease:
    """The result of one private release.

    Attributes
    ----------
    value:
        Noisy query answer (float or 1-D array).
    true_value:
        Exact query answer, kept for error accounting in experiments (never
        publish this in a real deployment).
    noise_scale:
        Per-coordinate Laplace scale that was added.
    epsilon:
        Privacy parameter the release was calibrated for.
    mechanism:
        Name of the mechanism.
    details:
        Mechanism-specific diagnostics (e.g. the active Markov quilt).
    """

    value: float | np.ndarray
    true_value: float | np.ndarray
    noise_scale: float
    epsilon: float
    mechanism: str
    details: dict[str, Any] = field(default_factory=dict)

    def l1_error(self) -> float:
        """L1 distance between the noisy and exact answers."""
        return float(np.sum(np.abs(np.atleast_1d(self.value) - np.atleast_1d(self.true_value))))


class Mechanism(ABC):
    """Base class: compute a noise scale, then release ``F(D) + noise``."""

    #: Mechanism name used in reports ("MQMExact", "GroupDP", ...).
    name: str = "Mechanism"

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0:
            raise PrivacyParameterError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    @abstractmethod
    def noise_scale(self, query: Query, data: np.ndarray) -> float:
        """Per-coordinate Laplace scale for releasing ``query`` on ``data``."""

    def scale_details(self, query: Query, data: np.ndarray) -> dict[str, Any]:
        """Optional diagnostics attached to releases (override as needed)."""
        return {}

    def release(
        self,
        data: np.ndarray,
        query: Query,
        rng: "int | np.random.Generator | None" = None,
    ) -> PrivateRelease:
        """Evaluate the query and add calibrated Laplace noise.

        ``data`` may be a raw array or any dataset object exposing a
        ``concatenated`` array (e.g. ``TimeSeriesDataset``).
        """
        gen = resolve_rng(rng)
        values = getattr(data, "concatenated", data)
        true_value = query(values)
        scale = self.noise_scale(query, data)
        if query.output_dim == 1:
            noisy: float | np.ndarray = float(true_value) + float(sample_laplace(scale, None, gen))
        else:
            noisy = np.asarray(true_value, dtype=float) + sample_laplace(
                scale, query.output_dim, gen
            )
        return PrivateRelease(
            value=noisy,
            true_value=true_value,
            noise_scale=scale,
            epsilon=self.epsilon,
            mechanism=self.name,
            details=self.scale_details(query, data),
        )
