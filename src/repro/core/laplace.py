"""Laplace noise primitives and the common mechanism interface.

Every mechanism in the paper is of the form ``F(D) + scale * Lap(1)`` (added
per coordinate for vector queries, which preserves the guarantee for
L1-Lipschitz queries by Proposition 1 of Dwork et al.).  The subclasses only
differ in how ``scale`` is computed, so the shared release logic lives here.

Calibration versus release
--------------------------
Computing ``scale`` is the expensive part of every mechanism in this library
(enumerating supports for the Wasserstein Mechanism, searching quilt sets for
MQM); adding noise is microseconds.  :meth:`Mechanism.calibrate` performs the
expensive step explicitly and returns a :class:`Calibration` that
:meth:`Mechanism.release` can consume, so callers — in particular
:class:`repro.serving.PrivacyEngine` — can compute a calibration once, cache
it, and amortize it over many releases.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.queries import Query
from repro.exceptions import PrivacyParameterError
from repro.utils.rngtools import resolve_rng


def sample_laplace(
    scale: float,
    size: int | tuple[int, ...] | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> float | np.ndarray:
    """Draw from ``Lap(0, scale)`` (density ``exp(-|x|/scale) / (2 scale)``).

    A scale of 0 returns exact zeros (useful for "no noise" baselines).
    """
    if scale < 0:
        raise PrivacyParameterError(f"Laplace scale must be >= 0, got {scale}")
    gen = resolve_rng(rng)
    if scale == 0:
        return 0.0 if size is None else np.zeros(size)
    return gen.laplace(loc=0.0, scale=scale, size=size)


def sample_gaussian(
    scale: float,
    size: int | tuple[int, ...] | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> float | np.ndarray:
    """Draw from ``N(0, scale^2)`` as ``scale * standard_normal``.

    The explicit ``scale * z`` form (rather than ``Generator.normal(0,
    scale)``) makes the scalar path bit-identical by construction to the
    serving layer's vectorized standard-draw-then-scale path, mirroring the
    Laplace guarantee the streaming suite relies on.  A scale of 0 returns
    exact zeros.
    """
    if scale < 0:
        raise PrivacyParameterError(f"Gaussian scale must be >= 0, got {scale}")
    gen = resolve_rng(rng)
    if scale == 0:
        return 0.0 if size is None else np.zeros(size)
    return scale * gen.standard_normal(size=size)


def laplace_density(w: np.ndarray | float, center: float, scale: float) -> np.ndarray | float:
    """Density of ``center + Lap(scale)`` at ``w`` — used by the numeric
    privacy-verification tests."""
    if scale <= 0:
        raise PrivacyParameterError(f"Laplace scale must be > 0, got {scale}")
    return np.exp(-np.abs(np.asarray(w, dtype=float) - center) / scale) / (2.0 * scale)


@dataclass(frozen=True)
class Calibration:
    """The output of the expensive half of a mechanism: a noise scale.

    A calibration is valid for exactly one combination of mechanism (with its
    distribution class Theta and epsilon), query, and data *shape* (for the
    chain mechanisms, the multiset of segment lengths — the noise scale never
    reads the record values themselves).  The serving layer keys its cache on
    precisely that combination; see ``docs/architecture.md`` for why reusing
    a calibration outside its key would be a privacy bug.

    Attributes
    ----------
    scale:
        Per-coordinate Laplace scale (``L * sigma`` for MQM, ``W / epsilon``
        for the Wasserstein Mechanism).
    epsilon:
        Privacy level the scale was calibrated for.
    mechanism:
        Name of the mechanism that produced it.
    details:
        Mechanism-specific diagnostics (``sigma_max``, the active quilt, ...).
    """

    scale: float
    epsilon: float
    mechanism: str
    details: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable form (numpy scalars coerced, arrays listed)."""
        return {
            "scale": float(self.scale),
            "epsilon": float(self.epsilon),
            "mechanism": str(self.mechanism),
            "details": _jsonify(self.details),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Calibration":
        """Inverse of :meth:`to_payload`."""
        return cls(
            scale=float(payload["scale"]),
            epsilon=float(payload["epsilon"]),
            mechanism=str(payload["mechanism"]),
            details=dict(payload.get("details", {})),
        )


def _jsonify(value: Any) -> Any:
    """Best-effort coercion of diagnostics to JSON-safe types; entries that
    cannot be represented are replaced by their ``repr`` (diagnostics only —
    the scale itself is always a float)."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, (int, float, str, bool, type(None))):
        return value
    return repr(value)


@dataclass
class PrivateRelease:
    """The result of one private release.

    Attributes
    ----------
    value:
        Noisy query answer (float or 1-D array).
    true_value:
        Exact query answer, kept for error accounting in experiments (never
        publish this in a real deployment).
    noise_scale:
        Per-coordinate Laplace scale that was added.
    epsilon:
        Privacy parameter the release was calibrated for.
    mechanism:
        Name of the mechanism.
    details:
        Mechanism-specific diagnostics (e.g. the active Markov quilt).
    """

    value: float | np.ndarray
    true_value: float | np.ndarray
    noise_scale: float
    epsilon: float
    mechanism: str
    details: dict[str, Any] = field(default_factory=dict)

    def l1_error(self) -> float:
        """L1 distance between the noisy and exact answers."""
        return float(np.sum(np.abs(np.atleast_1d(self.value) - np.atleast_1d(self.true_value))))


#: Monotonic instance tokens for mechanisms without a content-based
#: fingerprint.  Unlike ``id()``, whose values recycle after garbage
#: collection (letting a *new* mechanism hit a dead mechanism's cache
#: entry), a counter value is never reissued within the process.
_INSTANCE_COUNTER = itertools.count()


class Mechanism(ABC):
    """Base class: compute a noise scale, then release ``F(D) + noise``."""

    #: Mechanism name used in reports ("MQMExact", "GroupDP", ...).
    name: str = "Mechanism"

    #: Noise family added per coordinate: ``"laplace"`` (every paper
    #: mechanism) or ``"gaussian"`` (the Rényi-Pufferfish additive-noise
    #: variants, e.g. ``GaussianMarkovQuiltMechanism``).  The serving
    #: layer's vectorized batch/stream draws dispatch on this attribute.
    noise_kind: str = "laplace"

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0:
            raise PrivacyParameterError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self._instance_token = next(_INSTANCE_COUNTER)

    @abstractmethod
    def noise_scale(self, query: Query, data: np.ndarray) -> float:
        """Per-coordinate Laplace scale for releasing ``query`` on ``data``."""

    def scale_details(self, query: Query, data: np.ndarray) -> dict[str, Any]:
        """Optional diagnostics attached to releases (override as needed)."""
        return {}

    def standard_noise(
        self, gen: np.random.Generator, size: int | tuple[int, ...] | None
    ) -> float | np.ndarray:
        """Unit-scale draws from this mechanism's noise family.

        The serving layer scales these per coordinate (``scale * draw``),
        which for both families is bit-identical to the scalar
        :meth:`sample_noise` path under one generator because numpy's
        ``Generator`` fills arrays sample-by-sample from the bit stream.
        """
        if self.noise_kind == "laplace":
            return gen.laplace(size=size)
        if self.noise_kind == "gaussian":
            return gen.standard_normal(size=size)
        raise PrivacyParameterError(f"unknown noise kind {self.noise_kind!r}")

    def sample_noise(
        self,
        scale: float,
        size: int | tuple[int, ...] | None = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> float | np.ndarray:
        """Scaled draws from this mechanism's noise family (scalar path)."""
        if self.noise_kind == "laplace":
            return sample_laplace(scale, size, rng)
        if self.noise_kind == "gaussian":
            return sample_gaussian(scale, size, rng)
        raise PrivacyParameterError(f"unknown noise kind {self.noise_kind!r}")

    def calibrate(
        self,
        query: Query,
        data: np.ndarray,
        *,
        parallel: "bool | int | ParallelCalibrator | None" = None,  # noqa: F821
    ) -> Calibration:
        """The expensive half of a release, as an explicit step.

        Runs the mechanism's scale computation (support enumeration, quilt
        search, ...) and packages the result.  The returned object can be
        passed back to :meth:`release` any number of times — or cached by a
        :class:`repro.serving.CalibrationCache` keyed on
        :meth:`calibration_fingerprint`.

        ``parallel`` shards the computation across worker processes via
        :class:`repro.parallel.ParallelCalibrator` (``True`` for one worker
        per core, an int for an explicit worker count, or a calibrator
        instance).  The result is bit-identical to the serial computation;
        mechanisms without a shard decomposition ignore the option.
        """
        if parallel is not None and parallel is not False:
            from repro.parallel import as_calibrator

            calibrator = as_calibrator(parallel)
            if calibrator is not None:
                return calibrator.calibrate(self, query, data)
        return Calibration(
            scale=float(self.noise_scale(query, data)),
            epsilon=self.epsilon,
            mechanism=self.name,
            details=self.scale_details(query, data),
        )

    def calibration_fingerprint(self) -> tuple:
        """Hashable identity of everything (besides query and data shape)
        that the noise scale depends on.

        Two mechanism instances with equal fingerprints must produce equal
        calibrations for every (query, data) pair; the serving cache reuses
        entries across instances on that basis, so an over-coarse fingerprint
        is a privacy bug while an over-fine one only costs cache misses.
        Subclasses extend the base tuple with their distribution class's
        fingerprint (see e.g. ``MQMExact.calibration_fingerprint``); the base
        implementation marks the instance as uncacheable-by-content by
        including a process-unique instance token, which never aliases two
        mechanisms — not even after one is garbage-collected (``id()`` would).
        """
        return (
            type(self).__name__,
            self.name,
            self.epsilon,
            ("instance", self._instance_token),
        )

    def release(
        self,
        data: np.ndarray,
        query: Query,
        rng: "int | np.random.Generator | None" = None,
        *,
        calibration: Calibration | None = None,
    ) -> PrivateRelease:
        """Evaluate the query and add calibrated Laplace noise.

        ``data`` may be a raw array or any dataset object exposing a
        ``concatenated`` array (e.g. ``TimeSeriesDataset``).  Passing a
        precomputed ``calibration`` (from :meth:`calibrate`, possibly cached)
        skips the scale computation entirely; the caller is responsible for
        the calibration actually matching this mechanism, query, and data —
        the engine's cache key construction guarantees that.
        """
        gen = resolve_rng(rng)
        values = getattr(data, "concatenated", data)
        true_value = query(values)
        if calibration is None:
            calibration = self.calibrate(query, data)
        scale = calibration.scale
        if query.output_dim == 1:
            noisy: float | np.ndarray = float(true_value) + float(
                self.sample_noise(scale, None, gen)
            )
        else:
            noisy = np.asarray(true_value, dtype=float) + self.sample_noise(
                scale, query.output_dim, gen
            )
        return PrivateRelease(
            value=noisy,
            true_value=true_value,
            noise_scale=scale,
            epsilon=self.epsilon,
            mechanism=self.name,
            details=dict(calibration.details),
        )
