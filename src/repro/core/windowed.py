"""Sliding-window budget accounting for indefinite release streams.

Bai et al.'s composition analysis motivates budget semantics over release
*sequences*, and the correlated-data sliding-window threat model (Zhang et
al., PAPERS.md) frames the guarantee an indefinite stream actually needs:
at any moment, the releases inside the trailing ``window_span`` logical
windows jointly satisfy the budget; releases in expired windows keep the
guarantee they had while live, and their epsilon is reclaimed **exactly** —
not approximately — because the per-window aggregates are dropped whole.

:class:`SlidingWindowAccountant` implements the
:class:`~repro.core.accounting.BaseAccountant` contract with Theorem 4.4
linear arithmetic over the live span: ``spent = (live release count) * (max
live epsilon)``.  The window clock is **logical and injected** — callers
advance it via :meth:`advance_window` / :meth:`advance_to`; nothing here
reads wall time (lint rule R4), so a replayed schedule reproduces every
admission decision bit-identically.

With ``window_span = 1`` and a per-release ``eps``, every window admits
exactly ``floor(budget / eps)`` releases, forever: expiry empties the live
span, so window ``k``'s admission arithmetic is identical to window 0's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.accounting import (
    BaseAccountant,
    CompositionRecord,
    RdpCurve,
)
from repro.exceptions import PrivacyParameterError

__all__ = ["SlidingWindowAccountant"]


@dataclass
class SlidingWindowAccountant(BaseAccountant):
    """Windowed Theorem 4.4 accounting: charges expire with their window.

    Parameters
    ----------
    budget:
        Epsilon budget enforced over the trailing ``window_span`` windows
        (``None`` disables enforcement, as in the other accountants).
    window_span:
        How many consecutive windows stay live.  A release charged in
        window ``w`` expires once the clock passes ``w + window_span - 1``.
    records:
        Optional pre-existing audit trail; charged to the initial window.
    audit_trail:
        As in :class:`~repro.core.composition.CompositionAccountant`; an
        indefinite stream should pass ``False`` (the trail grows per
        release; the enforcement aggregates are O(live windows)).
    """

    budget: float | None = None
    window_span: int = 1
    records: list[CompositionRecord] = field(default_factory=list)
    audit_trail: bool = True

    _STATE_KIND = "sliding"

    def __post_init__(self) -> None:
        if self.window_span < 1:
            raise PrivacyParameterError(
                f"window_span must be >= 1, got {self.window_span}"
            )
        self.window_span = int(self.window_span)
        self._window = 0
        # window index -> [release count, worst epsilon]; only live windows
        # are ever present (advance drops expired buckets whole — that drop
        # *is* the exact reclamation).
        self._buckets: dict[int, list] = {}
        if self.records:
            self._buckets[self._window] = [
                len(self.records),
                max(r.epsilon for r in self.records),
            ]
        self._init_runtime()

    # -- windowed linear arithmetic (mutex held by the base) -------------
    def _live_totals_locked(self) -> tuple[int, float]:
        count = 0
        worst = 0.0
        for window in sorted(self._buckets):
            count += self._buckets[window][0]
            worst = max(worst, self._buckets[window][1])
        return count, worst

    def _spent_locked(self) -> float:
        count, worst = self._live_totals_locked()
        return count * worst

    def _stage_locked(
        self, n_releases: int, epsilon: float, rdp_curve: RdpCurve | None
    ) -> tuple[float, Any]:
        count, worst = self._live_totals_locked()
        worst = max(worst, epsilon)
        return (count + n_releases) * worst, (n_releases, epsilon)

    def _apply_locked(self, token: Any) -> None:
        n_releases, epsilon = token
        bucket = self._buckets.setdefault(self._window, [0, 0.0])
        bucket[0] += n_releases
        bucket[1] = max(bucket[1], epsilon)

    # -- the logical clock ------------------------------------------------
    @property
    def window(self) -> int:
        """Current logical window index."""
        with self._mutex:
            return self._window

    def live_release_count(self) -> int:
        """Releases currently charged against the live span."""
        with self._mutex:
            return self._live_totals_locked()[0]

    def advance_window(self, steps: int = 1) -> dict:
        """Advance the clock by ``steps`` windows; expire what falls out."""
        if steps < 1:
            raise PrivacyParameterError(f"steps must be >= 1, got {steps}")
        with self._mutex:
            return self._advance_to_locked(self._window + int(steps))

    def advance_to(self, window: int) -> dict:
        """Advance the clock to an absolute index (monotone — no rewinds:
        a rewind would resurrect expired charges and double-admit)."""
        with self._mutex:
            if int(window) < self._window:
                raise PrivacyParameterError(
                    f"window clock is monotone: at {self._window}, "
                    f"cannot rewind to {window}"
                )
            return self._advance_to_locked(int(window))

    def _advance_to_locked(self, window: int) -> dict:
        spent_before = self._spent_locked()
        self._window = window
        horizon = window - self.window_span
        expired = [w for w in sorted(self._buckets) if w <= horizon]
        expired_releases = 0
        for w in expired:
            expired_releases += self._buckets[w][0]
            del self._buckets[w]
        spent_after = self._spent_locked()
        return {
            "window": self._window,
            "expired_windows": len(expired),
            "expired_releases": expired_releases,
            "reclaimed_epsilon": max(0.0, spent_before - spent_after),
            "live_releases": self._live_totals_locked()[0],
            "spent": spent_after,
        }

    # -- durable serialization (see BaseAccountant.state_dict) -----------
    def _state_extra_locked(self) -> dict:
        return {
            "window_span": int(self.window_span),
            "window": int(self._window),
            "windows": [
                [int(w), int(self._buckets[w][0]), float(self._buckets[w][1])]
                for w in sorted(self._buckets)
            ],
        }

    def _restore_extra(self, state: Mapping) -> None:
        self.window_span = int(state["window_span"])
        self._window = int(state["window"])
        self._buckets = {
            int(w): [int(count), float(worst)]
            for w, count, worst in state["windows"]
        }
