"""The Markov Quilt Mechanism for general Bayesian networks (Algorithm 2).

For each node ``X_i`` the mechanism searches a set of Markov quilts
``(X_N, X_Q, X_R)`` (Definition 4.2).  A quilt with max-influence
``e_Theta(X_Q | X_i) < epsilon`` receives the score
``card(X_N) / (epsilon - e_Theta(X_Q|X_i))``; the node's sigma is the best
(smallest) score, and the released noise is ``L * max_i sigma_i * Lap(1)``
(Theorem 4.3).

Max-influence (Definition 4.1) is computed *exactly* here by enumerating the
joint distribution of each theta — the general-but-expensive path the paper
describes.  The Markov-chain specialization in :mod:`repro.core.mqm_chain`
avoids the enumeration entirely.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.laplace import Mechanism
from repro.core.queries import Query
from repro.distributions.bayesnet import DiscreteBayesianNetwork, MarkovQuilt
from repro.exceptions import PrivacyParameterError, ValidationError

#: Marginal probabilities below this are treated as zero when deciding which
#: secret values are admissible under a theta.
MARGINAL_ATOL = 1e-12


def _log_ratio_sup(
    numer: Mapping[tuple[int, ...], float],
    denom: Mapping[tuple[int, ...], float],
) -> float:
    """``sup_x log numer(x)/denom(x)`` over the support of ``numer``."""
    supremum = -np.inf
    for key, p in numer.items():
        if p <= MARGINAL_ATOL:
            continue
        q = denom.get(key, 0.0)
        if q <= MARGINAL_ATOL:
            return float("inf")
        supremum = max(supremum, float(np.log(p / q)))
    return supremum


def max_influence(
    networks: Sequence[DiscreteBayesianNetwork],
    quilt: MarkovQuilt,
) -> float:
    """``e_Theta(X_Q | X_i)`` of Definition 4.1, by exact enumeration.

    ``networks`` is the class Theta: Bayesian networks sharing a DAG but with
    possibly different CPDs.  The trivial quilt always has influence 0.
    Secret values with zero marginal probability under a theta are skipped
    for that theta (Definition 2.1 only constrains positive-probability
    secrets).
    """
    if quilt.is_trivial or not quilt.quilt:
        return 0.0
    targets = sorted(quilt.quilt)
    supremum = 0.0
    for network in networks:
        marginal = network.marginal_of(quilt.node)
        values = [v for v in range(network.n_states(quilt.node)) if marginal[v] > MARGINAL_ATOL]
        tables = {
            value: network.conditional_table(targets, {quilt.node: value}) for value in values
        }
        for a in values:
            for b in values:
                if a == b:
                    continue
                supremum = max(supremum, _log_ratio_sup(tables[a], tables[b]))
                if np.isinf(supremum):
                    return float("inf")
    return float(supremum)


class MarkovQuiltMechanism(Mechanism):
    """Algorithm 2 on a class of Bayesian networks.

    Parameters
    ----------
    networks:
        The class Theta (shared DAG, arbitrary CPDs).
    epsilon:
        Privacy parameter.
    quilt_sets:
        Optional mapping ``node -> list of MarkovQuilt``; defaults to the
        distance-based candidates of
        :meth:`DiscreteBayesianNetwork.distance_quilts` (which always include
        the trivial quilt, as Theorem 4.3 requires).
    max_radius:
        Radius cap for the default quilt generation.
    """

    name = "MarkovQuilt"

    def __init__(
        self,
        networks: Sequence[DiscreteBayesianNetwork],
        epsilon: float,
        *,
        quilt_sets: Mapping[str, Sequence[MarkovQuilt]] | None = None,
        max_radius: int | None = None,
    ) -> None:
        super().__init__(epsilon)
        networks = list(networks)
        if not networks:
            raise ValidationError("Theta must contain at least one network")
        nodes = networks[0].nodes
        for network in networks[1:]:
            if network.nodes != nodes:
                raise ValidationError("all networks in Theta must share the same node set")
        self.networks = networks
        self.reference = networks[0]
        if quilt_sets is None:
            quilt_sets = {
                node: self.reference.distance_quilts(node, max_radius) for node in nodes
            }
        else:
            quilt_sets = {node: list(qs) for node, qs in quilt_sets.items()}
            for node in nodes:
                candidates = quilt_sets.setdefault(node, [])
                if not any(q.is_trivial for q in candidates):
                    # Theorem 4.3 requires the trivial quilt to be available.
                    candidates.append(self.reference.trivial_quilt(node))
        self.quilt_sets = quilt_sets
        self._sigma_cache: dict[str, tuple[float, MarkovQuilt]] = {}

    def calibration_fingerprint(self) -> tuple:
        """Theta (every network content-hashed), epsilon, and the candidate
        quilt sets (which bound the search and therefore the chosen sigma)."""
        quilts = tuple(
            (node, tuple(tuple(sorted(q.quilt)) for q in candidates))
            for node, candidates in sorted(self.quilt_sets.items())
        )
        return (
            "MarkovQuilt",
            self.epsilon,
            tuple(network.fingerprint() for network in self.networks),
            quilts,
        )

    def sigma_for_node(self, node: str) -> tuple[float, MarkovQuilt]:
        """``(sigma_i, active quilt)`` for one node (Definition 4.5)."""
        if node not in self._sigma_cache:
            best_score = float("inf")
            best_quilt: MarkovQuilt | None = None
            for quilt in self.quilt_sets[node]:
                influence = max_influence(self.networks, quilt)
                if influence < self.epsilon:
                    score = quilt.card_nearby() / (self.epsilon - influence)
                else:
                    score = float("inf")
                if score < best_score:
                    best_score = score
                    best_quilt = quilt
            if best_quilt is None:  # pragma: no cover - trivial quilt always scores
                raise PrivacyParameterError(f"no admissible quilt for node {node!r}")
            self._sigma_cache[node] = (best_score, best_quilt)
        return self._sigma_cache[node]

    def sigma_max(self) -> float:
        """``max_i sigma_i`` — the noise multiplier of Algorithm 2."""
        return max(self.sigma_for_node(node)[0] for node in self.reference.nodes)

    def active_quilts(self) -> dict[str, MarkovQuilt]:
        """The active quilt of every node (used for composition accounting)."""
        return {node: self.sigma_for_node(node)[1] for node in self.reference.nodes}

    def noise_scale(self, query: Query, data: np.ndarray) -> float:
        return query.lipschitz * self.sigma_max() / 1.0

    def scale_details(self, query: Query, data: np.ndarray) -> dict:
        worst = max(self.reference.nodes, key=lambda n: self.sigma_for_node(n)[0])
        sigma, quilt = self.sigma_for_node(worst)
        return {
            "sigma_max": sigma,
            "worst_node": worst,
            "active_quilt": sorted(quilt.quilt),
        }

    def quilt_signature(self) -> tuple:
        """Hashable fingerprint of the active quilts; two MQM releases
        compose linearly when their signatures match (Theorem 4.4)."""
        return tuple(
            (node, tuple(sorted(self.sigma_for_node(node)[1].quilt)))
            for node in self.reference.nodes
        )
