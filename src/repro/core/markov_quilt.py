"""The Markov Quilt Mechanism for general Bayesian networks (Algorithm 2).

For each node ``X_i`` the mechanism searches a set of Markov quilts
``(X_N, X_Q, X_R)`` (Definition 4.2).  A quilt with max-influence
``e_Theta(X_Q | X_i) < epsilon`` receives the score
``card(X_N) / (epsilon - e_Theta(X_Q|X_i))``; the node's sigma is the best
(smallest) score, and the released noise is ``L * max_i sigma_i * Lap(1)``
(Theorem 4.3).

Max-influence (Definition 4.1) is computed *exactly* here through the
:mod:`repro.inference` variable-elimination engine: one batched
``conditional_tables(X_Q, X_i)`` tensor per theta, reduced by a log-space
sup-ratio over all ordered secret-value pairs at once (the tensor analogue of
:func:`repro.core.mqm_chain._sup_ratio_table`).  The Markov-chain
specialization in :mod:`repro.core.mqm_chain` avoids even that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.distributions.structured import QuiltGenerator

from repro.core.laplace import Mechanism
from repro.core.queries import Query
from repro.distributions.bayesnet import DiscreteBayesianNetwork, MarkovQuilt
from repro.exceptions import PrivacyParameterError, ValidationError
from repro.inference import engine_for

#: Marginal probabilities below this are treated as zero when deciding which
#: secret values are admissible under a theta.
MARGINAL_ATOL = 1e-12


def _pairwise_sup_ratio(tables: np.ndarray) -> float:
    """``max_{a != b} sup_x log tables[a, x] / tables[b, x]`` in log space.

    ``tables`` is a ``(m, M)`` matrix of conditional distributions (rows sum
    to one).  The supremum for a row pair ranges over the support of the
    numerator row only: entries with numerator mass <= :data:`MARGINAL_ATOL`
    contribute nothing (their log is ``-inf``); a supported numerator entry
    over an unsupported denominator entry makes the pair's ratio unbounded
    (``finite - -inf = +inf``), exactly as the enumeration-era dict walk
    decided it.
    """
    if tables.shape[0] < 2:
        return 0.0
    with np.errstate(divide="ignore"):
        logs = np.where(tables > MARGINAL_ATOL, np.log(tables), -np.inf)
    with np.errstate(invalid="ignore"):
        diff = logs[:, None, :] - logs[None, :, :]
    # -inf - -inf (both off-support) is NaN; such entries contribute nothing.
    diff = np.where(np.isnan(diff), -np.inf, diff)
    pair_sup = diff.max(axis=2)
    np.fill_diagonal(pair_sup, -np.inf)
    return float(pair_sup.max())


def max_influence(
    networks: Sequence[DiscreteBayesianNetwork],
    quilt: MarkovQuilt,
) -> float:
    """``e_Theta(X_Q | X_i)`` of Definition 4.1, exactly.

    ``networks`` is the class Theta: Bayesian networks sharing a DAG but with
    possibly different CPDs.  The trivial quilt always has influence 0.
    Secret values with zero marginal probability under a theta are skipped
    for that theta (Definition 2.1 only constrains positive-probability
    secrets).

    Per theta this costs one variable-elimination run producing the batched
    ``P(X_Q | X_i = .)`` tensor plus one vectorized log-ratio reduction —
    the engine memoizes factors and marginals per network fingerprint, so a
    quilt search over many candidates never recomputes shared state (the
    seed re-enumerated the full joint on every call).
    """
    if quilt.is_trivial or not quilt.quilt:
        return 0.0
    targets = sorted(quilt.quilt)
    supremum = 0.0
    for network in networks:
        engine = engine_for(network)
        marginal = engine.marginal_of(quilt.node)
        values = np.flatnonzero(marginal > MARGINAL_ATOL)
        if values.size < 2:
            continue  # fewer than two admissible secret values: nothing to compare
        tensor = engine.conditional_tables(targets, quilt.node)
        tables = tensor.reshape(tensor.shape[0], -1)[values]
        supremum = max(supremum, _pairwise_sup_ratio(tables))
        if np.isinf(supremum):
            return float("inf")
    return float(max(supremum, 0.0))


class MarkovQuiltMechanism(Mechanism):
    """Algorithm 2 on a class of Bayesian networks.

    Parameters
    ----------
    networks:
        The class Theta (shared DAG, arbitrary CPDs).
    epsilon:
        Privacy parameter.
    quilt_sets:
        Optional mapping ``node -> list of MarkovQuilt``; defaults to the
        distance-based candidates of
        :meth:`DiscreteBayesianNetwork.distance_quilts` (which always include
        the trivial quilt, as Theorem 4.3 requires).  Entries are validated:
        every key must be a node of the network and every quilt filed under
        a key must protect that node — a quilt calibrated for the wrong node
        would bake the mismatch into ``calibration_fingerprint`` and
        silently mis-scale its noise.
    quilt_generator:
        Optional strategy callable ``generator(network, node) -> quilts``
        used to build the candidate sets from the reference network (e.g.
        the structured-topology generators of
        :mod:`repro.distributions.structured`).  Mutually exclusive with
        ``quilt_sets``; when neither is given the default distance-shell
        generation is used, unchanged.
    max_radius:
        Radius cap for the default quilt generation.
    """

    name = "MarkovQuilt"

    def __init__(
        self,
        networks: Sequence[DiscreteBayesianNetwork],
        epsilon: float,
        *,
        quilt_sets: Mapping[str, Sequence[MarkovQuilt]] | None = None,
        quilt_generator: "QuiltGenerator | None" = None,
        max_radius: int | None = None,
    ) -> None:
        super().__init__(epsilon)
        networks = list(networks)
        if not networks:
            raise ValidationError("Theta must contain at least one network")
        nodes = networks[0].nodes
        for network in networks[1:]:
            if network.nodes != nodes:
                raise ValidationError("all networks in Theta must share the same node set")
        self.networks = networks
        self.reference = networks[0]
        if quilt_sets is not None and quilt_generator is not None:
            raise ValidationError(
                "pass quilt_sets or quilt_generator, not both"
            )
        self.quilt_generator = quilt_generator
        if quilt_sets is None and quilt_generator is None:
            quilt_sets = {
                node: self.reference.distance_quilts(node, max_radius) for node in nodes
            }
        elif quilt_sets is None:
            quilt_sets = {
                node: list(quilt_generator(self.reference, node)) for node in nodes
            }
        else:
            quilt_sets = {node: list(qs) for node, qs in quilt_sets.items()}
        node_set = frozenset(nodes)
        for key, candidates in quilt_sets.items():
            if key not in node_set:
                raise ValidationError(
                    f"quilt_sets key {key!r} is not a node of the network"
                )
            for quilt in candidates:
                if quilt.node != key:
                    raise ValidationError(
                        f"quilt protecting node {quilt.node!r} filed under "
                        f"quilt_sets key {key!r}"
                    )
        for node in nodes:
            candidates = quilt_sets.setdefault(node, [])
            if not any(q.is_trivial for q in candidates):
                # Theorem 4.3 requires the trivial quilt to be available.
                candidates.append(self.reference.trivial_quilt(node))
        self.quilt_sets = quilt_sets
        self._sigma_cache: dict[str, tuple[float, MarkovQuilt]] = {}

    def calibration_fingerprint(self) -> tuple:
        """Theta (every network content-hashed), epsilon, and the candidate
        quilt sets (which bound the search and therefore the chosen sigma)."""
        quilts = tuple(
            (node, tuple(tuple(sorted(q.quilt)) for q in candidates))
            for node, candidates in sorted(self.quilt_sets.items())
        )
        return (
            "MarkovQuilt",
            self.epsilon,
            tuple(network.fingerprint() for network in self.networks),
            quilts,
        )

    def export_calibration_state(self) -> dict:
        """JSON-safe snapshot of the per-node quilt-search results (see
        :meth:`repro.core.mqm_chain.MQMExact.export_calibration_state`).

        Each entry carries the node's sigma and its active quilt, so a warm
        cache entry restores :meth:`sigma_max`, :meth:`active_quilts`, and
        :meth:`quilt_signature` without re-running any quilt search.  Only
        valid under an identical :meth:`calibration_fingerprint`.
        """
        return {
            "sigma_by_node": [
                [
                    node,
                    float(sigma),
                    {
                        "quilt": sorted(quilt.quilt),
                        "nearby": sorted(quilt.nearby),
                        "remote": sorted(quilt.remote),
                    },
                ]
                for node, (sigma, quilt) in sorted(self._sigma_cache.items())
            ]
        }

    def warm_start(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_calibration_state`."""
        for node, sigma, parts in state.get("sigma_by_node", []):
            quilt = MarkovQuilt(
                node=str(node),
                quilt=frozenset(parts["quilt"]),
                nearby=frozenset(parts["nearby"]),
                remote=frozenset(parts["remote"]),
            )
            self._sigma_cache[str(node)] = (float(sigma), quilt)

    def _quilt_score(self, quilt: MarkovQuilt, influence: float) -> float:
        """The sigma contribution of an admissible quilt (Definition 4.5):
        ``card(X_N) / (epsilon - e_Theta(X_Q|X_i))`` for the Laplace MQM.
        The Gaussian variant overrides only this hook, so the search loop,
        memo structure, warm-start snapshots, and per-node parallel shards
        are shared verbatim."""
        return quilt.card_nearby() / (self.epsilon - influence)

    def sigma_for_node(self, node: str) -> tuple[float, MarkovQuilt]:
        """``(sigma_i, active quilt)`` for one node (Definition 4.5)."""
        if node not in self._sigma_cache:
            best_score = float("inf")
            best_quilt: MarkovQuilt | None = None
            for quilt in self.quilt_sets[node]:
                influence = max_influence(self.networks, quilt)
                if influence < self.epsilon:
                    score = self._quilt_score(quilt, influence)
                else:
                    score = float("inf")
                if score < best_score:
                    best_score = score
                    best_quilt = quilt
            if best_quilt is None:  # pragma: no cover - trivial quilt always scores
                raise PrivacyParameterError(f"no admissible quilt for node {node!r}")
            self._sigma_cache[node] = (best_score, best_quilt)
        return self._sigma_cache[node]

    def sigma_max(self) -> float:
        """``max_i sigma_i`` — the noise multiplier of Algorithm 2."""
        return max(self.sigma_for_node(node)[0] for node in self.reference.nodes)

    def active_quilts(self) -> dict[str, MarkovQuilt]:
        """The active quilt of every node (used for composition accounting)."""
        return {node: self.sigma_for_node(node)[1] for node in self.reference.nodes}

    def noise_scale(self, query: Query, data: np.ndarray) -> float:
        return query.lipschitz * self.sigma_max() / 1.0

    def scale_details(self, query: Query, data: np.ndarray) -> dict:
        worst = max(self.reference.nodes, key=lambda n: self.sigma_for_node(n)[0])
        sigma, quilt = self.sigma_for_node(worst)
        return {
            "sigma_max": sigma,
            "worst_node": worst,
            "active_quilt": sorted(quilt.quilt),
        }

    def quilt_signature(self) -> tuple:
        """Hashable fingerprint of the active quilts; two MQM releases
        compose linearly when their signatures match (Theorem 4.4)."""
        return tuple(
            (node, tuple(sorted(self.sigma_for_node(node)[1].quilt)))
            for node in self.reference.nodes
        )
