"""Error metrics used by the evaluation.

Every table and figure in Section 5 reports the L1 error between the exact
and released query answers, averaged over random trials.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def l1_error(released: float | np.ndarray, exact: float | np.ndarray) -> float:
    """``||released - exact||_1``."""
    a = np.atleast_1d(np.asarray(released, dtype=float))
    b = np.atleast_1d(np.asarray(exact, dtype=float))
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.abs(a - b).sum())


def expected_l1_laplace(scale: float, dims: int = 1) -> float:
    """Expected L1 error of adding ``Lap(scale)`` to each of ``dims``
    coordinates (``E|Lap(b)| = b``).

    Useful as a deterministic cross-check of sampled errors: a mechanism's
    mean L1 error over many trials should converge to ``dims * scale``.
    """
    if scale < 0:
        raise ValidationError(f"scale must be >= 0, got {scale}")
    if dims < 1:
        raise ValidationError(f"dims must be >= 1, got {dims}")
    return float(dims * scale)
