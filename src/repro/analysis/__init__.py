"""Experiment support: error metrics, trial runners, text reporting, and
numeric Pufferfish verification."""

from repro.analysis.metrics import expected_l1_laplace, l1_error
from repro.analysis.reporting import Table, format_series
from repro.analysis.runner import (
    TrialResult,
    run_mechanism_suite,
    run_release_trials,
    run_streaming_trials,
)
from repro.analysis.verification import VerificationReport, verify_pufferfish

__all__ = [
    "Table",
    "TrialResult",
    "VerificationReport",
    "expected_l1_laplace",
    "format_series",
    "l1_error",
    "run_mechanism_suite",
    "run_release_trials",
    "run_streaming_trials",
    "verify_pufferfish",
]
