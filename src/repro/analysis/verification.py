"""Numeric verification of the Pufferfish guarantee (Definition 2.1).

For enumerable instantiations the density of a Laplace release is an
explicit finite mixture::

    P(M(X) = w | s, theta) = sum_x P(X = x | s, theta) * Lap(w - F(x); scale)

so the likelihood-ratio inequality (1) can be checked directly on a grid of
outputs.  :func:`verify_pufferfish` runs that check for every theta and
admissible secret pair and returns a :class:`VerificationReport` with the
worst observed ratio — the *empirical epsilon* — which must not exceed the
target.

This is the library's answer to "how do I know the noise calibration is
right?": the test suite applies it to MQMExact, MQMApprox, the Wasserstein
mechanism and GroupDP (and shows that an under-calibrated scale fails).
It is exponential in the database size and meant for small models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.framework import PufferfishInstantiation, Secret, SecretPair
from repro.core.laplace import laplace_density
from repro.core.models import DataModel
from repro.core.queries import Query
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class PairCheck:
    """Worst likelihood ratio observed for one (pair, theta)."""

    pair: SecretPair
    theta_index: int
    max_log_ratio: float


@dataclass
class VerificationReport:
    """Outcome of a Pufferfish verification run."""

    epsilon: float
    empirical_epsilon: float
    checks: list[PairCheck]
    grid_points: int

    @property
    def satisfied(self) -> bool:
        """Whether every ratio stayed within ``e^epsilon`` (with float slack)."""
        return self.empirical_epsilon <= self.epsilon * (1 + 1e-9) + 1e-12

    def worst(self) -> PairCheck:
        """The binding (pair, theta) check."""
        return max(self.checks, key=lambda c: c.max_log_ratio)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "SATISFIED" if self.satisfied else "VIOLATED"
        worst = self.worst()
        return (
            f"Pufferfish {verdict}: empirical eps {self.empirical_epsilon:.6f} "
            f"vs target {self.epsilon:.6f} (worst pair {worst.pair.describe()}, "
            f"theta #{worst.theta_index})"
        )


def release_density(
    model: DataModel,
    query: Query,
    secret: Secret,
    scale: float,
    w_grid: np.ndarray,
) -> np.ndarray:
    """Density of ``F(X) + Lap(scale)`` given ``secret`` on the grid."""
    density = np.zeros_like(w_grid, dtype=float)
    mass = 0.0
    for row, prob in model.support():
        if row[secret.index] == secret.value:
            density += prob * laplace_density(w_grid, float(query(np.asarray(row))), scale)
            mass += prob
    if mass <= 0:
        raise ValidationError(f"secret {secret.describe()} has zero probability")
    return density / mass


def output_grid(
    instantiation: PufferfishInstantiation,
    query: Query,
    scale: float,
    grid_points: int,
) -> np.ndarray:
    """An output grid spanning every attainable value plus noise tails."""
    outputs: list[float] = []
    for model in instantiation.models:
        outputs.extend(float(query(np.asarray(row))) for row, _ in model.support())
    if not outputs:
        raise ValidationError("no attainable outputs: are the models empty?")
    pad = 4.0 * scale + 1.0
    return np.linspace(min(outputs) - pad, max(outputs) + pad, grid_points)


def verify_pufferfish(
    instantiation: PufferfishInstantiation,
    query: Query,
    scale: float,
    epsilon: float,
    *,
    grid_points: int = 301,
) -> VerificationReport:
    """Check inequality (1) for a Laplace release at the given scale.

    Parameters
    ----------
    instantiation:
        The framework ``(S, Q, Theta)`` with enumerable models.
    query:
        Scalar query being released.
    scale:
        Laplace scale the mechanism adds (e.g. ``mech.noise_scale(...)``).
    epsilon:
        Target privacy level the release claims.
    grid_points:
        Resolution of the output grid.
    """
    if query.output_dim != 1:
        raise ValidationError("verification supports scalar queries")
    if scale <= 0:
        raise ValidationError("a private release needs a positive noise scale")
    w_grid = output_grid(instantiation, query, scale, grid_points)
    checks: list[PairCheck] = []
    for theta_index, model in enumerate(instantiation.models):
        for pair in instantiation.admissible_pairs(model):
            left = release_density(model, query, pair.left, scale, w_grid)
            right = release_density(model, query, pair.right, scale, w_grid)
            with np.errstate(divide="ignore"):
                log_ratio = np.log(left) - np.log(right)
            worst = float(np.max(np.abs(log_ratio)))
            checks.append(PairCheck(pair, theta_index, worst))
    if not checks:
        raise ValidationError("no admissible secret pairs to verify")
    empirical = max(c.max_log_ratio for c in checks)
    return VerificationReport(
        epsilon=float(epsilon),
        empirical_epsilon=empirical,
        checks=checks,
        grid_points=grid_points,
    )
