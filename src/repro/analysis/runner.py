"""Trial runner: repeat releases and aggregate L1 errors.

The noise scale of every mechanism in this library is deterministic given
the data and family, so a "trial" only redraws the Laplace noise (and, for
the synthetic experiments, optionally the dataset itself).  The runner goes
through the serving layer: a :class:`~repro.serving.PrivacyEngine` computes
(and caches) the calibration once, keeping the scale computation out of the
timed/averaged loop exactly as the paper's methodology separates scale
computation (Table 2) from error measurement (Tables 1 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.metrics import l1_error
from repro.core.laplace import Mechanism
from repro.core.queries import Query
from repro.exceptions import ValidationError
from repro.serving.engine import PrivacyEngine
from repro.utils.rngtools import resolve_rng


@dataclass
class TrialResult:
    """Aggregated error of repeated releases."""

    mechanism: str
    mean_l1: float
    std_l1: float
    n_trials: int
    noise_scale: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mechanism}: L1 = {self.mean_l1:.4g} +/- {self.std_l1:.2g} "
            f"({self.n_trials} trials, scale {self.noise_scale:.4g})"
        )


def run_release_trials(
    mechanism: Mechanism | PrivacyEngine,
    data,
    query: Query,
    n_trials: int,
    rng: "int | np.random.Generator | None" = None,
    *,
    workers: int | None = None,
) -> TrialResult:
    """Release ``n_trials`` times and aggregate L1 errors.

    Accepts a bare mechanism (wrapped into a throwaway
    :class:`~repro.serving.PrivacyEngine`) or an existing engine, whose
    calibration cache is then shared across calls.  The scale is calibrated
    once; each trial adds fresh noise to the exact answer, which is
    equivalent to (and much faster than) calling :meth:`Mechanism.release`
    repeatedly.

    ``workers`` shards the (single, up-front) calibration across that many
    worker processes — bit-identical scale, faster on multi-core hosts; it
    only applies when a bare mechanism is passed (an existing engine keeps
    its own parallel configuration).
    """
    if n_trials < 1:
        raise ValidationError(f"n_trials must be >= 1, got {n_trials}")
    gen = resolve_rng(rng)
    engine = (
        mechanism
        if isinstance(mechanism, PrivacyEngine)
        else PrivacyEngine(mechanism, parallel=workers)
    )
    values = getattr(data, "concatenated", data)
    exact = np.atleast_1d(np.asarray(query(values), dtype=float))
    scale = engine.calibrate(query, data).scale
    noise = gen.laplace(0.0, scale, size=(n_trials, exact.size)) if scale > 0 else np.zeros(
        (n_trials, exact.size)
    )
    errors = np.abs(noise).sum(axis=1)
    return TrialResult(
        mechanism=engine.mechanism.name,
        mean_l1=float(errors.mean()),
        std_l1=float(errors.std()),
        n_trials=n_trials,
        noise_scale=float(scale),
    )


def run_streaming_trials(
    mechanism: Mechanism | PrivacyEngine,
    data,
    query: Query,
    n_trials: int,
    rng: "int | np.random.Generator | None" = None,
    *,
    chunk_size: int = 256,
    workers: int | None = None,
) -> TrialResult:
    """Aggregate L1 errors over ``n_trials`` *streamed* releases.

    The streaming sibling of :func:`run_release_trials`: instead of
    simulating the noise distribution, it drives the real incremental path —
    a :class:`~repro.serving.stream.ReleaseSession` drained in
    ``chunk_size`` chunks — so every yielded release went through the
    per-yield budget debit and the amortized block noise draws.  Under the
    same seed the aggregated errors equal the batched path's exactly (the
    session is bit-identical to the ``release_batch`` prefix).  ``workers``
    shards a cache-missing calibration as in :func:`run_release_trials`.
    """
    if n_trials < 1:
        raise ValidationError(f"n_trials must be >= 1, got {n_trials}")
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    engine = (
        mechanism
        if isinstance(mechanism, PrivacyEngine)
        else PrivacyEngine(mechanism, parallel=workers)
    )
    scale = engine.calibrate(query, data).scale
    errors: list[float] = []
    with engine.stream(
        data, query, rng=rng, max_releases=n_trials,
        block_size=min(chunk_size, n_trials),
    ) as session:
        while True:
            chunk = session.take(chunk_size)
            if not chunk:
                break
            errors.extend(release.l1_error() for release in chunk)
    arr = np.asarray(errors)
    return TrialResult(
        mechanism=engine.mechanism.name,
        mean_l1=float(arr.mean()),
        std_l1=float(arr.std()),
        n_trials=n_trials,
        noise_scale=float(scale),
    )


def run_mechanism_suite(
    mechanisms: "dict[str, Mechanism] | list[Mechanism]",
    data,
    query: Query,
    n_trials: int,
    rng: "int | np.random.Generator | None" = None,
    *,
    workers: int | None = None,
) -> list[TrialResult]:
    """Trial runs for several mechanisms on one workload.

    The multi-mechanism comparison shape of the paper's experiments (each
    table pits GK16/MQMApprox/MQMExact/baselines against each other).  With
    ``workers`` the per-mechanism calibrations are sharded across a process
    pool via :meth:`~repro.parallel.ParallelCalibrator.calibrate_many`; the
    warm mechanisms are then measured exactly as in
    :func:`run_release_trials`.  Only mechanisms that can restore a
    worker's state (``warm_start``) are sharded — for any other mechanism a
    worker's calibration could not be transferred back, so sharding it
    would just double the work; those calibrate serially below.
    """
    members = list(mechanisms.values()) if isinstance(mechanisms, dict) else list(mechanisms)
    if workers is not None and workers is not False:
        from repro.parallel import as_calibrator

        calibrator = as_calibrator(workers)
        transferable = [m for m in members if hasattr(m, "warm_start")]
        if calibrator is not None and transferable:
            calibrator.calibrate_many(transferable, query, data)
    gen = resolve_rng(rng)
    return [
        run_release_trials(mechanism, data, query, n_trials, gen)
        for mechanism in members
    ]


def run_sampled_trials(
    make_data: Callable[[np.random.Generator], tuple],
    make_mechanism: Callable[[], Mechanism],
    make_query: Callable[[object], Query],
    n_trials: int,
    rng: "int | np.random.Generator | None" = None,
) -> TrialResult:
    """Trials that redraw the dataset each time (the synthetic protocol).

    ``make_data`` returns ``(data, ...)``; extras are ignored.  The mechanism
    is constructed once (its scale may still depend on the data and is
    recomputed per trial).
    """
    if n_trials < 1:
        raise ValidationError(f"n_trials must be >= 1, got {n_trials}")
    gen = resolve_rng(rng)
    mechanism = make_mechanism()
    errors = []
    last_scale = 0.0
    for _ in range(n_trials):
        data = make_data(gen)[0]
        query = make_query(data)
        release = mechanism.release(data, query, gen)
        last_scale = release.noise_scale
        errors.append(l1_error(release.value, release.true_value))
    arr = np.asarray(errors)
    return TrialResult(
        mechanism=mechanism.name,
        mean_l1=float(arr.mean()),
        std_l1=float(arr.std()),
        n_trials=n_trials,
        noise_scale=float(last_scale),
    )
