"""Plain-text tables and series for reproducing the paper's artifacts.

Figures are rendered as aligned numeric series (one row per mechanism, one
column per sweep point) and tables as aligned grids, with optional
paper-reported reference values interleaved so EXPERIMENTS.md can be
assembled directly from experiment output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ValidationError


def _format_cell(value) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, str):
        return value
    number = float(value)
    if not np.isfinite(number):
        return "inf"
    if number == 0:
        return "0"
    magnitude = abs(number)
    if magnitude >= 1000 or magnitude < 0.001:
        return f"{number:.3e}"
    return f"{number:.4g}"


@dataclass
class Table:
    """A simple aligned text table."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, label: str, values: Sequence) -> None:
        """Append a row; ``values`` must match the non-label columns."""
        if len(values) != len(self.columns) - 1:
            raise ValidationError(
                f"row {label!r} has {len(values)} values for {len(self.columns) - 1} columns"
            )
        self.rows.append([label, *values])

    def render(self) -> str:
        """The table as aligned text."""
        cells = [[_format_cell(c) if i else str(c) for i, c in enumerate(row)] for row in self.rows]
        header = [str(c) for c in self.columns]
        widths = [
            max(len(header[j]), *(len(row[j]) for row in cells)) if cells else len(header[j])
            for j in range(len(header))
        ]
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(header)))
        lines.append("  ".join("-" * widths[j] for j in range(len(header))))
        for row in cells:
            lines.append("  ".join(row[j].ljust(widths[j]) for j in range(len(header))))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Rows keyed by label (for programmatic assertions in tests)."""
        return {row[0]: row[1:] for row in self.rows}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence],
) -> str:
    """Render a figure as text: one column per x value, one row per series.

    ``None`` entries render as ``N/A`` (e.g. GK16 outside its applicability
    region).
    """
    table = Table(title, [x_label, *[_format_cell(x) for x in x_values]])
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValidationError(
                f"series {name!r} has {len(values)} values for {len(x_values)} x points"
            )
        table.add_row(name, list(values))
    return table.render()
