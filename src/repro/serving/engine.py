"""The PrivacyEngine: cached calibration + batched, budgeted release.

The mechanisms of the paper pay a heavy one-time cost (support enumeration
for Algorithm 1, quilt search for Algorithms 2–4) and then release a single
noised value.  A serving deployment has the opposite shape: one fixed
instantiation, many releases.  :class:`PrivacyEngine` adapts the former to
the latter:

* **calibrate once** — scale computations go through a
  :class:`~repro.serving.cache.CalibrationCache` keyed on the mechanism's
  content fingerprint, the query signature, the data's segment shape, and
  epsilon;
* **release many** — :meth:`release_batch` draws all the noise for a batch
  in one vectorized standard-draw call (Laplace or Gaussian, per the
  mechanism's ``noise_kind``) instead of one scalar draw per release,
  bit-identical to sequential releases under the same generator;
* **never overspend** — every release is recorded against a budget
  accountant (linear Theorem 4.4
  :class:`~repro.core.composition.CompositionAccountant` by default, or the
  Rényi strong-composition
  :class:`~repro.core.accounting.RenyiAccountant` via ``accountant=``); a
  release (or an entire batch, atomically) that would push the composed
  guarantee past the engine's budget raises
  :class:`~repro.exceptions.BudgetExhaustedError` before any noise is
  drawn;
* **stream indefinitely** — :meth:`stream` opens a
  :class:`~repro.serving.stream.ReleaseSession` that yields releases
  incrementally (bit-identical to the batched path under the same seed)
  while debiting the budget atomically per yield, for long-lived clients
  that do not know their batch size up front.

Composition caveat: Pufferfish privacy does not compose in general.  The
``K * max_k eps_k`` accounting implemented by the accountant is *proved* for
the Markov Quilt Mechanism with fixed active quilts (Theorem 4.4); for other
mechanisms the tracked total is a spend ledger, not a composition theorem —
the engine enforces it as a conservative operational limit either way.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Iterable, Sequence

import numpy as np

from repro.core.accounting import BaseAccountant, RenyiAccountant
from repro.core.composition import CompositionAccountant
from repro.core.laplace import Calibration, Mechanism, PrivateRelease
from repro.core.queries import Query
from repro.exceptions import ValidationError
from repro.serving.cache import CalibrationCache
from repro.serving.fingerprint import mechanism_fingerprint
from repro.serving.stream import ReleaseSession
from repro.utils.rngtools import resolve_rng


class PrivacyEngine:
    """Serve private releases from one mechanism against one budget.

    Parameters
    ----------
    mechanism:
        Any :class:`~repro.core.laplace.Mechanism` (Wasserstein, MQM,
        MQMExact/MQMApprox, or a baseline).
    cache:
        Calibration cache; defaults to a fresh in-memory LRU.  Pass a
        :class:`~repro.serving.cache.CalibrationCache` backed by a
        :class:`~repro.serving.cache.JSONFileCache` to persist calibrations
        across processes.
    epsilon_budget:
        Optional total epsilon this engine may spend (Theorem 4.4
        accounting: ``K * max_k eps_k`` over K releases).  ``None`` means
        unlimited.
    accountant:
        The accounting regime enforcing that budget: ``"linear"`` (default;
        :class:`~repro.core.composition.CompositionAccountant`, the paper's
        Theorem 4.4 rule), ``"renyi"``
        (:class:`~repro.core.accounting.RenyiAccountant`, Rényi-Pufferfish
        strong composition — long streams stop strictly later under the
        same budget), or a preconstructed
        :class:`~repro.core.accounting.BaseAccountant` instance (mutually
        exclusive with ``epsilon_budget``; configure the instance's own
        ``budget`` / ``delta`` / ``orders`` instead).
    rng:
        Seed or generator for the engine's noise stream; per-call ``rng``
        arguments override it.
    parallel:
        Shard cache-missing calibrations across worker processes (``True``
        for one worker per core, an int for an explicit worker count, or a
        preconfigured :class:`~repro.parallel.ParallelCalibrator`).  The
        sharded result is bit-identical to the serial one and lands in the
        same cache entry, so warm hits stay O(1) lookups either way.
    tenant:
        Optional tenant name this engine serves (multi-tenant deployments;
        surfaced in :meth:`stats` and diagnostics).  The engine itself is
        tenant-agnostic — budget isolation comes from the accountant, e.g. a
        :class:`~repro.service.ledger.ReservationAccountant` bound to one
        tenant's durable ledger.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        *,
        cache: CalibrationCache | None = None,
        epsilon_budget: float | None = None,
        accountant: "str | BaseAccountant | None" = None,
        rng: "int | np.random.Generator | None" = None,
        parallel: "bool | int | ParallelCalibrator | None" = None,  # noqa: F821
        tenant: str | None = None,
    ) -> None:
        self.mechanism = mechanism
        self.tenant = tenant
        self.cache = cache if cache is not None else CalibrationCache()
        if accountant is None or accountant == "linear":
            self.accountant: BaseAccountant = CompositionAccountant(
                budget=epsilon_budget
            )
        elif accountant == "renyi":
            self.accountant = RenyiAccountant(budget=epsilon_budget)
        elif accountant == "sliding":
            from repro.core.windowed import SlidingWindowAccountant

            self.accountant = SlidingWindowAccountant(budget=epsilon_budget)
        elif isinstance(accountant, BaseAccountant):
            if epsilon_budget is not None:
                raise ValidationError(
                    "pass epsilon_budget or a preconstructed accountant, not "
                    "both — set the budget on the accountant instance"
                )
            self.accountant = accountant
        else:
            raise ValidationError(
                f"accountant must be 'linear', 'renyi', 'sliding', or a "
                f"BaseAccountant instance, got {accountant!r}"
            )
        self._rng = resolve_rng(rng)
        self._n_releases = 0
        # Guards the release counter only; budget atomicity lives in the
        # accountant's own lock (streams and batches share both).
        self._count_lock = threading.Lock()
        if parallel is None or parallel is False:
            self.calibrator = None
        else:
            from repro.parallel import as_calibrator

            self.calibrator = as_calibrator(parallel)

    # -- calibration ----------------------------------------------------
    def calibrate(self, query: Query, data: Any) -> Calibration:
        """The (cached) expensive step: the noise scale for this workload.

        Does not touch the budget — calibration reads the distribution class
        and the data's segment shape, never the record values, so it is free
        to repeat.  With the engine's ``parallel`` option set, a cache miss
        is computed sharded across worker processes; hits never spawn
        anything.
        """
        compute = None
        if self.calibrator is not None:
            compute = lambda: self.calibrator.calibrate(  # noqa: E731
                self.mechanism, query, data
            )
        calibration, _ = self.cache.get_or_compute(
            self.mechanism, query, data, compute=compute
        )
        return calibration

    # -- single release -------------------------------------------------
    def release(
        self,
        data: Any,
        query: Query,
        rng: "int | np.random.Generator | None" = None,
    ) -> PrivateRelease:
        """One budgeted release through the cached calibration."""
        return self.release_batch([(data, query)], rng=rng)[0]

    # -- batched release ------------------------------------------------
    def release_batch(
        self,
        requests: Sequence[tuple[Any, Query]],
        rng: "int | np.random.Generator | None" = None,
    ) -> list[PrivateRelease]:
        """Answer a batch of ``(data, query)`` requests with one noise draw.

        The batch is atomic against the budget: if answering all requests
        would exceed it, :class:`~repro.exceptions.BudgetExhaustedError` is
        raised — carrying the exact ``spent`` / ``remaining`` ledger with
        ``n_completed == 0`` — and *nothing* is released or recorded.  Noise
        for the whole batch comes from a single vectorized standard-Laplace
        draw scaled per coordinate, which is bit-identical to sequential
        :meth:`Mechanism.release` calls against the same generator state.
        """
        requests = list(requests)
        if not requests:
            return []
        epsilon = self.mechanism.epsilon
        gen = resolve_rng(rng) if rng is not None else self._rng

        # Repeated-release batches reuse the same (data, query) objects many
        # times; resolve each distinct request once — one cache lookup (with
        # its fingerprint/key computation) and one query evaluation, however
        # large the batch.  The id-keyed memo is safe because the request
        # objects are referenced by ``requests`` for the whole call.
        calib_memo: dict[tuple[int, int], Calibration] = {}
        answers: dict[tuple[int, int], Any] = {}
        calibrations = []
        true_values = []
        for data, query in requests:
            memo_key = (id(data), id(query))
            if memo_key not in calib_memo:
                calib_memo[memo_key] = self.calibrate(query, data)
                answers[memo_key] = query(getattr(data, "concatenated", data))
            calibrations.append(calib_memo[memo_key])
            true_values.append(answers[memo_key])

        # Record the whole batch atomically BEFORE any noise exists: a batch
        # that does not fit the budget raises here and releases nothing.
        self.accountant.record_many(
            len(requests),
            epsilon,
            mechanism=self.mechanism.name,
            quilt_signature=self._quilt_signature(),
            rdp_curve=self._rdp_curve(),
        )

        dims = np.array([query.output_dim for _, query in requests], dtype=np.int64)
        scales = np.repeat([c.scale for c in calibrations], dims)
        # Zero-scale coordinates consume no randomness (matching the scalar
        # path's "no noise" baseline behavior), so draw only for the rest.
        noise = np.zeros(int(dims.sum()))
        positive = scales > 0
        if positive.any():
            noise[positive] = scales[positive] * self.mechanism.standard_noise(
                gen, int(positive.sum())
            )

        with self._count_lock:
            self._n_releases += len(requests)
        releases: list[PrivateRelease] = []
        offset = 0
        for (data, query), calibration, true_value in zip(
            requests, calibrations, true_values
        ):
            coords = noise[offset : offset + query.output_dim]
            offset += query.output_dim
            if query.output_dim == 1:
                noisy: float | np.ndarray = float(true_value) + float(coords[0])
            else:
                noisy = np.asarray(true_value, dtype=float) + coords
            releases.append(
                PrivateRelease(
                    value=noisy,
                    true_value=true_value,
                    noise_scale=calibration.scale,
                    epsilon=epsilon,
                    mechanism=self.mechanism.name,
                    details=dict(calibration.details),
                )
            )
        return releases

    def release_repeated(
        self,
        data: Any,
        query: Query,
        n_releases: int,
        rng: "int | np.random.Generator | None" = None,
    ) -> list[PrivateRelease]:
        """``n_releases`` independent releases of one query on one dataset —
        the serving hot path: one calibration lookup, one vectorized draw."""
        if n_releases < 1:
            raise ValidationError(f"n_releases must be >= 1, got {n_releases}")
        return self.release_batch([(data, query)] * n_releases, rng=rng)

    # -- streaming releases ----------------------------------------------
    def stream(
        self,
        data: Any,
        query: Query,
        *,
        rng: "int | np.random.Generator | None" = None,
        block_size: int = 64,
        max_releases: int | None = None,
    ) -> ReleaseSession:
        """Open a :class:`~repro.serving.stream.ReleaseSession` on this engine.

        The session yields releases incrementally (one at a time or in
        caller-sized chunks via :meth:`ReleaseSession.take`), drawing noise
        in amortized vectorized blocks while debiting the budget atomically
        per yield.  Under the same ``rng`` seed the yielded values are
        bit-identical to the :meth:`release_batch` prefix of the same
        length.  Sessions share this engine's calibration cache, budget,
        and release counter; see ``docs/architecture.md`` for the streaming
        ADR.
        """
        return ReleaseSession(
            self,
            data,
            query,
            rng=rng,
            block_size=block_size,
            max_releases=max_releases,
        )

    def with_accountant(
        self,
        accountant: BaseAccountant,
        *,
        tenant: str | None = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> "PrivacyEngine":
        """A sibling engine over the same mechanism, cache, and calibrator,
        but debiting a different accountant.

        This is the multi-tenant handle: the service keeps one warm base
        engine per mechanism and hands each session a clone bound to its
        tenant's :class:`~repro.service.ledger.ReservationAccountant`, so
        every tenant shares the (expensive, tenant-agnostic) calibrations
        while budgets stay strictly isolated.  The clone gets its own noise
        stream and release counter.
        """
        clone = PrivacyEngine.__new__(PrivacyEngine)
        clone.mechanism = self.mechanism
        clone.cache = self.cache
        clone.calibrator = self.calibrator
        clone.accountant = accountant
        clone.tenant = tenant if tenant is not None else self.tenant
        clone._rng = resolve_rng(rng)
        clone._n_releases = 0
        clone._count_lock = threading.Lock()
        return clone

    def _debit_one(self, quilt_signature: Hashable) -> None:
        """Atomically record one streamed release against the budget.

        Raises :class:`~repro.exceptions.BudgetExhaustedError` (payload
        attached by the accountant; the session fills in ``n_completed``)
        without counting the release when the budget refuses.
        """
        self.accountant.record(
            self.mechanism.epsilon,
            mechanism=self.mechanism.name,
            quilt_signature=quilt_signature,
            rdp_curve=self._rdp_curve(),
        )
        with self._count_lock:
            self._n_releases += 1

    def _rdp_curve(self):
        """The mechanism's own Rényi cost curve, if it exposes one.

        Passed to every ``record`` call; the linear accountant ignores it,
        the Rényi accountant charges it instead of the conservative
        pure-release curve.  Called after :meth:`calibrate` has run (the
        engine records post-calibration), so curve implementations may read
        the warm per-node state.
        """
        return getattr(self.mechanism, "rdp_curve", None)

    # -- budget accounting ----------------------------------------------
    @property
    def epsilon_budget(self) -> float | None:
        """Total budget, or ``None`` when unlimited."""
        return self.accountant.budget

    def spent_epsilon(self) -> float:
        """The composed guarantee accumulated so far (``K * max_k eps_k``
        under linear accounting; the converted Rényi guarantee at the
        accountant's delta under ``accountant="renyi"``)."""
        return self.accountant.total_epsilon()

    def remaining_budget(self) -> float | None:
        """Budget left, or ``None`` when unlimited."""
        return self.accountant.remaining()

    def _quilt_signature(self) -> tuple:
        """Signature recorded with each release.

        For the Markov Quilt Mechanism this is its active-quilt signature, so
        the accountant enforces exactly the Theorem 4.4 same-quilt condition;
        for every other mechanism the engine's (constant) mechanism
        fingerprint keeps the accountant's consistency check vacuous.
        """
        if hasattr(self.mechanism, "quilt_signature"):
            return self.mechanism.quilt_signature()
        return mechanism_fingerprint(self.mechanism)

    # -- introspection ---------------------------------------------------
    @property
    def n_releases(self) -> int:
        """Total releases served by this engine."""
        return self._n_releases

    def stats(self) -> dict[str, Any]:
        """Operational snapshot: cache effectiveness and budget position."""
        return {
            "mechanism": self.mechanism.name,
            "epsilon": self.mechanism.epsilon,
            "tenant": self.tenant,
            "parallel_workers": (
                self.calibrator.max_workers if self.calibrator is not None else None
            ),
            "n_releases": self._n_releases,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
            "cache_entries": len(self.cache),
            "spent_epsilon": self.spent_epsilon(),
            "epsilon_budget": self.epsilon_budget,
            "remaining_budget": self.remaining_budget(),
        }


def warm_engines(
    engines: Iterable[PrivacyEngine], workload: Sequence[tuple[Any, Query]]
) -> None:
    """Pre-calibrate a fleet of engines against a known workload.

    A deployment that knows its query mix ahead of time calls this at
    startup so the first real request never pays the calibration cost.
    """
    for engine in engines:
        for data, query in workload:
            engine.calibrate(query, data)
