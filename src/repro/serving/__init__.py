"""Serving layer: calibrate once, release many.

This package adapts the paper's one-shot mechanisms to a serving workload
(fixed instantiation, heavy release traffic) — the operational setting that
the composition literature on Pufferfish privacy treats as central.

* :class:`PrivacyEngine` — wraps any mechanism; cached calibration, batched
  vectorized releases, streaming sessions, enforced epsilon budget.
* :class:`ReleaseSession` — incremental (streamed) releases with per-yield
  atomic budget accounting (see :mod:`repro.serving.stream`).
* :class:`CalibrationCache` — memoizes noise-scale computations, keyed on
  content fingerprints (see :mod:`repro.serving.fingerprint`).
* Backends: :class:`InMemoryLRUCache` (default) and :class:`JSONFileCache`
  (persists calibrations across processes).
"""

from repro.serving.cache import (
    CacheBackend,
    CalibrationCache,
    InMemoryLRUCache,
    JSONFileCache,
)
from repro.serving.engine import PrivacyEngine, warm_engines
from repro.serving.fingerprint import (
    cache_key,
    data_signature,
    mechanism_fingerprint,
    query_signature,
)
from repro.serving.stream import ReleaseSession

__all__ = [
    "CacheBackend",
    "CalibrationCache",
    "InMemoryLRUCache",
    "JSONFileCache",
    "PrivacyEngine",
    "ReleaseSession",
    "cache_key",
    "data_signature",
    "mechanism_fingerprint",
    "query_signature",
    "warm_engines",
]
