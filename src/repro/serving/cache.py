"""Calibration cache: pluggable backends plus the keyed front-end.

The expensive half of every mechanism (the noise-scale computation) is
memoized here.  Backends store JSON-safe payloads keyed by the opaque string
keys of :mod:`repro.serving.fingerprint`:

* :class:`InMemoryLRUCache` — a bounded, process-local LRU; the default.
* :class:`JSONFileCache` — a write-through on-disk store so calibrations
  survive process restarts (the "warm start a new server replica" path).

:class:`CalibrationCache` ties a backend to the key construction and tracks
hit/miss statistics.  It never invents keys: a calibration is only ever
returned for exactly the (mechanism fingerprint, query signature, data
signature, epsilon) combination it was computed under — see
``docs/architecture.md`` for why anything looser would be a privacy bug.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.core.laplace import Calibration, Mechanism
from repro.core.queries import Query
from repro.exceptions import ValidationError
from repro.serving.fingerprint import cache_key


class CacheBackend(ABC):
    """Minimal key-value store for JSON-safe calibration payloads."""

    @abstractmethod
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload, or ``None`` on a miss."""

    @abstractmethod
    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store (or overwrite) one payload."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    def clear(self) -> None:  # pragma: no cover - overridden where used
        """Drop every entry (optional for backends)."""
        raise NotImplementedError


class InMemoryLRUCache(CacheBackend):
    """Bounded in-memory LRU backend (thread-safe).

    Parameters
    ----------
    max_entries:
        Eviction threshold.  Calibration payloads are tiny (a scale plus
        diagnostics), so the default comfortably covers thousands of distinct
        (family, query, epsilon) combinations.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
            return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class JSONFileCache(CacheBackend):
    """Write-through JSON file backend.

    The whole store is one JSON object ``{key: payload}``.  Writes go through
    an atomic replace (write to a sibling temp file, then ``os.replace``) so
    a crash mid-write never corrupts the store, and each flush re-reads the
    file and merges its current contents under this process's entries — two
    processes sharing one cache file therefore accumulate each other's
    calibrations instead of clobbering them.  (Merging is safe because
    entries are content-keyed and deterministic: both writers can only ever
    hold the same value for the same key.)  Suitable for the calibration
    workload — hundreds of entries, written once and read many times — not
    as a general-purpose database.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, Any]] = {}
        if self.path.exists():
            try:
                loaded = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise ValidationError(
                    f"calibration cache file {self.path} is unreadable: {error}"
                ) from error
            if not isinstance(loaded, dict):
                raise ValidationError(
                    f"calibration cache file {self.path} must hold a JSON object"
                )
            self._entries = loaded

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, payload: dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = payload
            self._flush_locked(merge=True)

    def _flush_locked(self, *, merge: bool = False) -> None:
        if merge and self.path.exists():
            # Pick up entries other processes persisted since our last read;
            # our own entries win (values for a shared key are identical by
            # construction — content-keyed, deterministic computation).
            try:
                on_disk = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):  # torn read: ours survive
                on_disk = {}
            if isinstance(on_disk, dict):
                merged = dict(on_disk)
                merged.update(self._entries)
                self._entries = merged
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(self._entries, stream)
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):  # pragma: no cover - crash cleanup
                os.unlink(temp_path)
            raise

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._flush_locked()


class CalibrationCache:
    """Keyed front-end: memoizes :meth:`Mechanism.calibrate` results.

    Parameters
    ----------
    backend:
        Where payloads live; defaults to a fresh :class:`InMemoryLRUCache`.

    Attributes
    ----------
    hits, misses:
        Lookup statistics since construction (or :meth:`reset_stats`).
    """

    def __init__(self, backend: CacheBackend | None = None) -> None:
        self.backend = backend if backend is not None else InMemoryLRUCache()
        self.hits = 0
        self.misses = 0

    def key_for(self, mechanism: Mechanism, query: Query, data: Any) -> str:
        """The cache key this triple resolves to (exposed for testing)."""
        return cache_key(mechanism, query, data)

    def get(self, mechanism: Mechanism, query: Query, data: Any) -> Calibration | None:
        """Cached calibration for the triple, or ``None``."""
        payload = self.backend.get(self.key_for(mechanism, query, data))
        if payload is None:
            return None
        return Calibration.from_payload(payload)

    def get_or_compute(
        self, mechanism: Mechanism, query: Query, data: Any
    ) -> tuple[Calibration, bool]:
        """``(calibration, was_hit)`` — computing and storing on a miss.

        On a hit, a mechanism exposing ``warm_start`` is handed the stored
        internal state (the per-length sigma tables of the chain mechanisms,
        the ``W`` bounds of the Wasserstein Mechanism), so even its *direct*
        ``noise_scale`` calls become lookups afterwards.  On a miss, the
        mechanism's exported state rides along with the payload.
        """
        key = self.key_for(mechanism, query, data)
        payload = self.backend.get(key)
        if payload is not None:
            self.hits += 1
            calibration = Calibration.from_payload(payload)
            state = payload.get("state")
            if state and hasattr(mechanism, "warm_start"):
                mechanism.warm_start(state)
            return calibration, True
        self.misses += 1
        calibration = mechanism.calibrate(query, data)
        stored = calibration.to_payload()
        if hasattr(mechanism, "export_calibration_state"):
            stored["state"] = mechanism.export_calibration_state()
        self.backend.put(key, stored)
        return calibration, False

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are kept)."""
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.backend)
