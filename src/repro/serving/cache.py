"""Calibration cache: pluggable backends plus the keyed front-end.

The expensive half of every mechanism (the noise-scale computation) is
memoized here.  Backends store JSON-safe payloads keyed by the opaque string
keys of :mod:`repro.serving.fingerprint`:

* :class:`InMemoryLRUCache` — a bounded, process-local LRU; the default.
* :class:`JSONFileCache` — a write-through on-disk store so calibrations
  survive process restarts (the "warm start a new server replica" path).

:class:`CalibrationCache` ties a backend to the key construction and tracks
hit/miss statistics.  It never invents keys: a calibration is only ever
returned for exactly the (mechanism fingerprint, query signature, data
signature, epsilon) combination it was computed under — see
``docs/architecture.md`` for why anything looser would be a privacy bug.
"""

from __future__ import annotations

import contextlib
import copy
import json
import os
import tempfile
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.core.laplace import Calibration, Mechanism
from repro.core.queries import Query
from repro.exceptions import ValidationError
from repro.faults import fire
from repro.serving.fingerprint import cache_key
from repro.utils.filelock import InterProcessLock


class CacheBackend(ABC):
    """Minimal key-value store for JSON-safe calibration payloads."""

    @abstractmethod
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload, or ``None`` on a miss."""

    @abstractmethod
    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store (or overwrite) one payload."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    def clear(self) -> None:  # pragma: no cover - overridden where used
        """Drop every entry (optional for backends)."""
        raise NotImplementedError


class InMemoryLRUCache(CacheBackend):
    """Bounded in-memory LRU backend (thread-safe).

    Parameters
    ----------
    max_entries:
        Eviction threshold.  Calibration payloads are tiny (a scale plus
        diagnostics), so the default comfortably covers thousands of distinct
        (family, query, epsilon) combinations.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
        # Hand out a private copy: the stored payload is shared by every
        # future hit, and callers (``CalibrationCache.get_or_compute``) pass
        # its ``"state"`` sub-dict into ``mechanism.warm_start`` — a
        # mechanism that mutates its warm-start structures must not corrupt
        # the cache entry behind every later tenant's back.
        return copy.deepcopy(payload) if payload is not None else None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        payload = copy.deepcopy(payload)  # detach from the caller's reference
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class JSONFileCache(CacheBackend):
    """Write-through JSON file backend.

    The whole store is one JSON object ``{key: payload}``.  Writes go through
    an atomic replace (write to a sibling temp file, then ``os.replace``) so
    a crash mid-write never corrupts the store, and each flush re-reads the
    file and merges its current contents under this process's entries — two
    processes sharing one cache file therefore accumulate each other's
    calibrations instead of clobbering them.  (Merging is safe because
    entries are content-keyed and deterministic: both writers can only ever
    hold the same value for the same key.)

    The read-merge-replace sequence is serialized across writers — threads
    *and* processes — by an exclusive lock on a ``<path>.lock`` sidecar
    (:class:`~repro.utils.filelock.InterProcessLock`: ``fcntl`` flock where
    available, an ``O_CREAT|O_EXCL`` lock-file fallback with bounded retry
    and a stale-holder TTL everywhere else); without it, two writers that
    both read before either replaced would silently drop one side's entries
    (the lost-update race ``tests/test_cache_concurrency.py`` hammers).  A
    miss in :meth:`get`
    re-reads the file (when its stat changed) before answering, so entries
    another process persisted after this backend was constructed are found
    without a restart.  Suitable for the calibration workload — hundreds of
    entries, written once and read many times — not as a general-purpose
    database.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock_path = Path(str(self.path) + ".lock")
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, Any]] = {}
        self._disk_stat: tuple[int, int] | None = None
        if self.path.exists():
            stat_before = self._stat()  # before the read; see _read_disk_locked
            try:
                loaded = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise ValidationError(
                    f"calibration cache file {self.path} is unreadable: {error}"
                ) from error
            if not isinstance(loaded, dict):
                raise ValidationError(
                    f"calibration cache file {self.path} must hold a JSON object"
                )
            self._entries = loaded
            self._disk_stat = stat_before

    @contextlib.contextmanager
    def _file_lock(self) -> Iterator[None]:
        """Exclusive cross-process lock held for a read-merge-replace cycle.

        Advisory and cooperative: every writer in this codebase takes it.
        The sidecar (never the data file itself) is locked so the atomic
        ``os.replace`` of the data file cannot invalidate the lock.  On
        platforms without ``fcntl``, :class:`~repro.utils.filelock.
        InterProcessLock` transparently switches to its ``O_CREAT|O_EXCL``
        lock-file mode — still a real mutual-exclusion guarantee, with
        bounded retry instead of an indefinite block.
        """
        with InterProcessLock(self._lock_path):
            yield

    def _stat(self) -> tuple[int, int] | None:
        try:
            stat = self.path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _read_disk_locked(self) -> None:
        """Merge the file's current contents under our in-memory entries.

        The stat is captured *before* the read: if another process replaces
        the file in between, the recorded stat mismatches the new file and
        the next miss re-reads (a harmless retry) — recording it after the
        read could pair the new stat with the old contents and make the
        newer entries permanently invisible to this process.
        """
        stat_before = self._stat()
        try:
            on_disk = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            # Missing file (nothing to merge), or an unreadable one: keep
            # ours; the next changed-stat miss retries.
            return
        if isinstance(on_disk, dict):
            merged = dict(on_disk)
            merged.update(self._entries)
            self._entries = merged
        self._disk_stat = stat_before

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                # Another process may have persisted this entry since our
                # last read; re-read only when the file actually changed.
                if self._stat() != self._disk_stat:
                    self._read_disk_locked()
                payload = self._entries.get(key)
        # Same isolation contract as :class:`InMemoryLRUCache`: a caller
        # mutating the returned payload must not corrupt the in-memory view
        # (which the next flush would also persist to disk).
        return copy.deepcopy(payload) if payload is not None else None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        payload = copy.deepcopy(payload)  # detach from the caller's reference
        with self._lock, self._file_lock():
            self._entries[key] = payload
            self._flush_locked(merge=True)

    def _flush_locked(self, *, merge: bool = False) -> None:
        fire("cache.flush", path=str(self.path))
        if merge and self.path.exists():
            # Pick up entries other processes persisted since our last read;
            # our own entries win (values for a shared key are identical by
            # construction — content-keyed, deterministic computation).
            self._read_disk_locked()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Temp files matching our prefix belong to writers that died between
        # mkstemp and os.replace (live ones hold the file lock we are inside)
        # — sweep them so a crash never accumulates garbage past the next
        # successful flush.
        for orphan in self.path.parent.glob(f"{self.path.name}*.tmp"):
            with contextlib.suppress(OSError):
                orphan.unlink()
        handle, temp_path = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(self._entries, stream)
            fire("cache.flush.replace", path=str(self.path))
            os.replace(temp_path, self.path)
            self._disk_stat = self._stat()
            fire("cache.flush.after", path=str(self.path))
        except BaseException as error:
            # A *simulated* crash must leave the temp file behind exactly as
            # a real one would — the orphan sweep above is what reclaims it.
            if not getattr(error, "simulates_crash", False):
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
            raise

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock, self._file_lock():
            self._entries.clear()
            self._flush_locked()


class CalibrationCache:
    """Keyed front-end: memoizes :meth:`Mechanism.calibrate` results.

    Parameters
    ----------
    backend:
        Where payloads live; defaults to a fresh :class:`InMemoryLRUCache`.

    Attributes
    ----------
    hits, misses:
        Lookup statistics since construction (or :meth:`reset_stats`).
        The engine shares one cache across service worker threads, so the
        counters are mutated under a dedicated lock — unlocked ``+= 1``
        read-modify-writes drift under load and make ``hit_rate`` lie.

    :guarded: hits, misses
    """

    def __init__(self, backend: CacheBackend | None = None) -> None:
        self.backend = backend if backend is not None else InMemoryLRUCache()
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def key_for(self, mechanism: Mechanism, query: Query, data: Any) -> str:
        """The cache key this triple resolves to (exposed for testing)."""
        return cache_key(mechanism, query, data)

    def get(self, mechanism: Mechanism, query: Query, data: Any) -> Calibration | None:
        """Cached calibration for the triple, or ``None``."""
        payload = self.backend.get(self.key_for(mechanism, query, data))
        if payload is None:
            return None
        return Calibration.from_payload(payload)

    def get_or_compute(
        self,
        mechanism: Mechanism,
        query: Query,
        data: Any,
        compute: "Callable[[], Calibration] | None" = None,
    ) -> tuple[Calibration, bool]:
        """``(calibration, was_hit)`` — computing and storing on a miss.

        On a hit, a mechanism exposing ``warm_start`` is handed the stored
        internal state (the per-length sigma tables of the chain mechanisms,
        the ``W`` bounds of the Wasserstein Mechanism), so even its *direct*
        ``noise_scale`` calls become lookups afterwards.  On a miss, the
        mechanism's exported state rides along with the payload.

        ``compute`` overrides how the miss is filled (the engine passes the
        sharded :class:`~repro.parallel.ParallelCalibrator` path here); it
        must produce the same calibration — and leave the mechanism in the
        same warm state — as ``mechanism.calibrate`` would, which the
        parallel calibrator guarantees bit-for-bit.
        """
        key = self.key_for(mechanism, query, data)
        payload = self.backend.get(key)
        if payload is not None:
            with self._stats_lock:
                self.hits += 1
            calibration = Calibration.from_payload(payload)
            state = payload.get("state")
            if state and hasattr(mechanism, "warm_start"):
                mechanism.warm_start(state)
            return calibration, True
        with self._stats_lock:
            self.misses += 1
        calibration = compute() if compute is not None else mechanism.calibrate(query, data)
        stored = calibration.to_payload()
        if hasattr(mechanism, "export_calibration_state"):
            stored["state"] = mechanism.export_calibration_state()
        self.backend.put(key, stored)
        return calibration, False

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        with self._stats_lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are kept)."""
        with self._stats_lock:
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self.backend)
