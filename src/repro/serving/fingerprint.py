"""Cache-key construction for the serving layer.

A calibration is reusable exactly when *everything the noise scale depends
on* is unchanged: the mechanism (with its distribution class Theta, its
epsilon, and any search knobs), the query, and the shape of the data the
chain mechanisms calibrate against (the multiset of segment lengths — never
the record values, which the scale computation must not read).  This module
turns those four components into a stable string key.

Design rule (see ``docs/architecture.md`` for the full ADR): **an over-coarse
key is a privacy bug, an over-fine key is only a cache miss.**  Every
fallback in this module therefore errs toward uniqueness:

* mechanisms without a content-based :meth:`~repro.core.laplace.Mechanism.
  calibration_fingerprint` fingerprint as their instance identity, salted
  with a per-process token so entries can never be confused across processes
  sharing one on-disk cache;
* queries wrapping anonymous callables include ``id(func)`` in their
  signature (two different lambdas never alias);
* datasets fingerprint as their full sorted length multiset, which every
  mechanism's scale computation is invariant to, even though most read less.
"""

from __future__ import annotations

import hashlib
import uuid
from typing import Any

import numpy as np

from repro.core.laplace import Mechanism
from repro.core.queries import Query, signature_is_process_local

#: Per-process salt for identity-based (non-content) fingerprints.  Two
#: processes writing to one shared JSON cache can therefore never alias each
#: other's uncacheable-by-content mechanisms.
_PROCESS_SALT = uuid.uuid4().hex


def mechanism_fingerprint(mechanism: Mechanism) -> tuple:
    """The mechanism component of a cache key.

    Uses the mechanism's own :meth:`~repro.core.laplace.Mechanism.
    calibration_fingerprint`.  The base-class implementation embeds
    ``id(self)``; to keep that safe across interpreter lifetimes (ids are
    reused after garbage collection only for *dead* objects, but a JSON cache
    outlives the process) the per-process salt is appended whenever an
    ``("instance", ...)`` marker is present.
    """
    fingerprint = mechanism.calibration_fingerprint()
    if any(
        isinstance(part, tuple) and part and part[0] == "instance" for part in fingerprint
    ):
        fingerprint = fingerprint + (("process", _PROCESS_SALT),)
    return fingerprint


def query_signature(query: Query) -> tuple:
    """The query component of a cache key (see :meth:`Query.signature`)."""
    signature = query.signature()
    # Signatures containing anonymous-callable tokens (tagged ``("id", ...)``
    # by the query layer) are process-local; salt them so a shared on-disk
    # cache cannot alias them either.
    if signature_is_process_local(signature):
        signature = signature + (("process", _PROCESS_SALT),)
    return signature


def data_signature(data: Any) -> tuple:
    """The data-shape component of a cache key.

    Noise scales in this library depend on the data only through its segment
    structure: MQM reads the set of segment lengths, GroupDP the longest
    segment, the DP baselines and the Wasserstein Mechanism nothing at all.
    Fingerprinting the full sorted length multiset is therefore always
    sufficient (never under-keys any mechanism) at worst costing misses for
    mechanisms that read less.
    """
    lengths = getattr(data, "segment_lengths", None)
    if lengths:
        return ("segments", tuple(sorted(int(n) for n in lengths)))
    return ("array", int(np.asarray(data).size))


def cache_key(mechanism: Mechanism, query: Query, data: Any) -> str:
    """Deterministic string key for one (mechanism, query, data) triple.

    Epsilon is part of every mechanism fingerprint but is appended once more
    explicitly — the cost is zero and it makes the "epsilon changed, so the
    entry missed" property independent of any subclass's fingerprint
    discipline.
    """
    parts = (
        mechanism_fingerprint(mechanism),
        query_signature(query),
        data_signature(data),
        float(mechanism.epsilon),
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()
