"""Streaming release sessions: incremental releases with exact accounting.

:meth:`~repro.serving.engine.PrivacyEngine.release_batch` serves a batch
whose size is known up front; a long-lived client wants to *draw* releases —
one at a time, or in chunks it sizes as it goes — without the engine
buffering a whole batch or the client committing to a count.
:class:`ReleaseSession` is that handle.  Its contract:

* **Bit-identical prefix.**  A seeded session yields exactly the values
  ``release_batch([(data, query)] * n, rng=seed)`` would return, release by
  release, for every prefix length ``n`` — whatever ``block_size`` is and
  however the caller chunks its draws.  This holds because numpy
  ``Generator`` draws (Laplace and standard-normal alike — the session
  dispatches on the mechanism's ``noise_kind``) fill arrays
  sample-by-sample from the bit stream
  (splitting one draw of size ``n`` into consecutive smaller draws is
  bit-identical) and the session performs the exact arithmetic of the
  batched path (``scale * draw`` per coordinate, zero-scale coordinates
  consuming no randomness).
* **Amortized noise.**  Noise is pre-drawn in vectorized blocks of
  ``block_size`` releases, so the steady-state per-release cost is a slice
  plus a ledger append — no per-release cache-key computation, query
  evaluation, or scalar RNG call.
* **Per-yield atomic debit, no over-spend ever.**  The epsilon budget is
  debited through the engine's (thread-safe)
  :class:`~repro.core.composition.CompositionAccountant` *before* a value
  leaves the session.  Pre-drawn noise that the budget no longer covers is
  never released: the draw raises
  :class:`~repro.exceptions.BudgetExhaustedError` carrying the exact
  ``spent`` / ``remaining`` / ``n_completed`` ledger.  Blocks are drawn
  eagerly but debited lazily — pre-drawing is budget-neutral.
* **Thread safety.**  Multiple threads may drain one session (each release
  is yielded exactly once) and multiple sessions may share one engine
  budget (the accountant's lock makes the check-then-record cycle atomic).
* **Warm starts.**  Calibration goes through the engine's
  :class:`~repro.serving.cache.CalibrationCache`, so a second session on
  the same workload never repeats the quilt search.
* **Clean close/exhaust.**  Iteration ends (``StopIteration``) at
  ``max_releases`` or after :meth:`ReleaseSession.close`; sessions are
  context managers, and :meth:`ReleaseSession.stats` reports the ledger at
  any point.

Composition semantics are inherited from the engine: per-yield records are
exactly what ``release_batch`` would have recorded for the same count, so
Theorem 4.4's ``K * max_k eps_k`` accounting (valid for MQM under a fixed
active quilt, a conservative spend ledger otherwise) is unchanged by
streaming — see the ADR in ``docs/architecture.md``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.core.laplace import PrivateRelease
from repro.core.queries import Query
from repro.exceptions import BudgetExhaustedError, ValidationError
from repro.utils.rngtools import resolve_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.engine import PrivacyEngine


class ReleaseSession:
    """A streaming handle over one ``(data, query)`` workload.

    Create via :meth:`~repro.serving.engine.PrivacyEngine.stream`; the
    constructor calibrates immediately (a cache hit when the engine is
    warm), so the first draw pays no setup beyond its noise block.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.serving.engine.PrivacyEngine`; its
        accountant, cache, and release counter are shared with every other
        path on the engine.
    data, query:
        The workload, with the same conventions as ``release_batch``.
    rng:
        Seed or generator for this session's noise stream; ``None`` uses
        the engine's stream (sessions sharing it interleave draws).
    block_size:
        Releases worth of noise drawn per vectorized block.  Any value
        yields bit-identical output; larger blocks amortize better.
    max_releases:
        Optional hard cap after which iteration raises ``StopIteration``
        (the *exhausted* state).  ``None`` streams until closed or the
        budget refuses.

    :guarded: _noise, _pos, _blocks_drawn
    """

    def __init__(
        self,
        engine: "PrivacyEngine",
        data: Any,
        query: Query,
        *,
        rng: "int | np.random.Generator | None" = None,
        block_size: int = 64,
        max_releases: int | None = None,
    ) -> None:
        if block_size < 1:
            raise ValidationError(f"block_size must be >= 1, got {block_size}")
        if max_releases is not None and max_releases < 1:
            raise ValidationError(
                f"max_releases must be >= 1 or None, got {max_releases}"
            )
        self.engine = engine
        self.data = data
        self.query = query
        self.block_size = int(block_size)
        self.max_releases = None if max_releases is None else int(max_releases)
        self._gen = resolve_rng(rng) if rng is not None else engine._rng
        # The one potentially expensive step; warm across sessions via the
        # engine's CalibrationCache.
        self._calibration = engine.calibrate(query, data)
        self._true_value = query(getattr(data, "concatenated", data))
        self._true_array = (
            None
            if query.output_dim == 1
            else np.asarray(self._true_value, dtype=float)
        )
        # Fixed for the session: the calibration (hence the active quilt for
        # MQM) is set above and never changes underneath the ledger.
        self._signature = engine._quilt_signature()
        self._noise = np.empty(0)
        self._pos = 0
        self._n_yielded = 0
        self._blocks_drawn = 0
        self._closed = False
        self._lock = threading.RLock()

    # -- iteration --------------------------------------------------------
    def __iter__(self) -> Iterator[PrivateRelease]:
        return self

    def __next__(self) -> PrivateRelease:
        with self._lock:
            if self._closed or (
                self.max_releases is not None
                and self._n_yielded >= self.max_releases
            ):
                raise StopIteration
            # Debit before any noise is touched: a refused draw must leave
            # the ledger exactly where it was and release nothing.
            try:
                self.engine._debit_one(self._signature)
            except BudgetExhaustedError as error:
                error.n_completed = self._n_yielded
                raise
            dim = self.query.output_dim
            if self._pos >= self._noise.size:
                self._refill_locked()
            coords = self._noise[self._pos : self._pos + dim]
            self._pos += dim
            self._n_yielded += 1
            if dim == 1:
                noisy: float | np.ndarray = float(self._true_value) + float(coords[0])
            else:
                noisy = self._true_array + coords
            return PrivateRelease(
                value=noisy,
                true_value=self._true_value,
                noise_scale=self._calibration.scale,
                epsilon=self.engine.mechanism.epsilon,
                mechanism=self.engine.mechanism.name,
                details=dict(self._calibration.details),
            )

    def _refill_locked(self) -> None:
        """Draw the next vectorized noise block (``self._lock`` held).

        The block never extends past ``max_releases``, so a capped session
        leaves the generator positioned exactly where the equivalent batch
        call would.  Zero-scale calibrations consume no randomness, matching
        the batched path's "no noise" baseline behavior.
        """
        block = self.block_size
        if self.max_releases is not None:
            block = min(block, self.max_releases - self._n_yielded)
        size = block * self.query.output_dim
        scale = self._calibration.scale
        if scale > 0:
            self._noise = scale * self.engine.mechanism.standard_noise(
                self._gen, size
            )
        else:
            self._noise = np.zeros(size)
        self._pos = 0
        self._blocks_drawn += 1

    def take(self, n: int) -> list[PrivateRelease]:
        """Up to ``n`` releases as one chunk.

        Shorter chunks signal the end of the stream: exhaustion
        (``max_releases``) or a closed session return whatever was drawn
        (possibly ``[]``).  If the budget refuses mid-chunk, the releases
        already debited are returned rather than lost — the very next draw
        (or ``take``) raises the same
        :class:`~repro.exceptions.BudgetExhaustedError`, so the refusal is
        never silently swallowed; only a chunk whose *first* draw is refused
        raises immediately.
        """
        if n < 1:
            raise ValidationError(f"take(n) requires n >= 1, got {n}")
        chunk: list[PrivateRelease] = []
        for _ in range(n):
            try:
                chunk.append(next(self))
            except StopIteration:
                break
            except BudgetExhaustedError:
                if not chunk:
                    raise
                break
        return chunk

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def exhausted(self) -> bool:
        """Whether the ``max_releases`` cap has been reached."""
        return self.max_releases is not None and self._n_yielded >= self.max_releases

    @property
    def n_yielded(self) -> int:
        """Releases yielded so far."""
        return self._n_yielded

    def close(self) -> dict[str, Any]:
        """End the session and drop buffered noise; returns final stats.

        Idempotent; after closing, draws raise ``StopIteration`` and
        ``take`` returns ``[]``.  Nothing is refunded — only debited
        (yielded) releases were ever recorded.
        """
        with self._lock:
            self._closed = True
            self._noise = np.empty(0)
            self._pos = 0
            return self.stats()

    def __enter__(self) -> "ReleaseSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection ------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The session ledger: what was yielded, spent, and buffered."""
        with self._lock:
            epsilon = self.engine.mechanism.epsilon
            return {
                "mechanism": self.engine.mechanism.name,
                "epsilon": epsilon,
                "n_yielded": self._n_yielded,
                # Sum of the yields' epsilons — the session's own debit
                # trail; the engine's composed guarantee is K * max eps.
                "epsilon_streamed": self._n_yielded * epsilon,
                "noise_scale": self._calibration.scale,
                "block_size": self.block_size,
                "blocks_drawn": self._blocks_drawn,
                "noise_buffered": (self._noise.size - self._pos)
                // self.query.output_dim,
                "max_releases": self.max_releases,
                "closed": self._closed,
                "exhausted": self.exhausted,
                "engine_spent_epsilon": self.engine.spent_epsilon(),
                "engine_remaining_budget": self.engine.remaining_budget(),
            }
