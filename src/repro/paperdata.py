"""Every number the paper reports, collected for side-by-side comparison.

The experiment harnesses print "paper vs measured" rows using these
constants; EXPERIMENTS.md is assembled from that output.  Absolute agreement
is not expected (our substrates are simulators — see DESIGN.md Section 4);
the *shape* (orderings, rough factors, crossovers, N/A regions) is what the
reproduction validates.
"""

from __future__ import annotations

#: Section 3.1 flu example: Wasserstein bound vs group-DP sensitivity.
FLU_EXAMPLE = {
    "count_distribution": [0.1, 0.15, 0.5, 0.15, 0.1],
    "conditional_given_0": [0.2, 0.225, 0.5, 0.075, 0.0],
    "conditional_given_1": [0.0, 0.075, 0.5, 0.225, 0.2],
    "wasserstein_bound": 2.0,
    "group_dp_sensitivity": 4.0,
}

#: Section 4.3 composition example (T=3 chain, epsilon=10).
COMPOSITION_EXAMPLE = {
    "initial": [0.8, 0.2],
    "transition": [[0.9, 0.1], [0.4, 0.6]],
    "epsilon": 10.0,
    # quilt -> (max-influence, card(X_N), score); log values exact.
    "scores": {
        "trivial": 0.3,
        "left": 0.2437,
        "right": 0.2437,
        "both": 0.1558,
    },
    "influences": {"trivial": 0.0, "left": 1.791759, "right": 1.791759, "both": 3.583519},
    "active_quilt": "both",
}

#: Section 4.4 running example (T=100, Theta={theta1, theta2}, epsilon=1).
RUNNING_EXAMPLE = {
    "theta1": {"initial": [1.0, 0.0], "transition": [[0.9, 0.1], [0.4, 0.6]]},
    "theta2": {"initial": [0.9, 0.1], "transition": [[0.8, 0.2], [0.3, 0.7]]},
    "epsilon": 1.0,
    "sigma_theta1": 13.0219,       # achieved at X8 by quilt {X3, X13}
    "sigma_theta2": 10.6402,       # achieved at X6 by quilt {X10}
    "pi_min": 0.2,
    "eigengap_general": 0.75,      # eigengap of P P* for both thetas
    "stationary_theta1": [0.8, 0.2],
    "stationary_theta2": [0.6, 0.4],
}

#: Theorem 2.4 worked example: conditioning can increase max-divergence.
ROBUSTNESS_EXAMPLE = {
    "theta": [0.9, 0.05, 0.05],
    "theta_tilde": [0.01, 0.95, 0.04],
    "unconditional": 90.0,     # max-divergence = log(90)
    "conditional": 91.0962,    # after removing D3: log(91.0962)
}

#: Figure 4 upper row: GroupDP errors quoted in the caption per epsilon.
FIG4_SYNTHETIC_GROUPDP = {0.2: 5.0, 1.0: 1.0, 5.0: 0.2}

#: Figure 4 upper row sweep (alpha grid; the dashed GK16 line sits where the
#: influence spectral norm reaches 1, independent of epsilon).
FIG4_SYNTHETIC = {
    "T": 100,
    "alphas": [0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4],
    "epsilons": [0.2, 1.0, 5.0],
    "n_trials": 500,
}

#: Table 1 — activity L1 errors (epsilon = 1, 20 trials).
TABLE1 = {
    "columns": ["cyclist_agg", "cyclist_ind", "older_agg", "older_ind", "over_agg", "over_ind"],
    "DP": [0.2918, None, 0.8746, None, 0.4763, None],
    "GroupDP": [0.0834, 2.3157, 0.1138, 1.7860, 0.0458, 1.1492],
    "GK16": [None, None, None, None, None, None],
    "MQMApprox": [0.0107, 0.6319, 0.0156, 0.2790, 0.0048, 0.1967],
    "MQMExact": [0.0074, 0.4077, 0.0098, 0.1742, 0.0033, 0.1316],
}

#: Table 2 — seconds to compute the Laplace scale parameter (epsilon = 1).
TABLE2 = {
    "columns": ["synthetic", "cyclist", "older_woman", "overweight_woman", "power"],
    "GK16": [6.3589e-4, None, None, None, None],
    "MQMApprox": [1.8458e-4, 0.0064, 0.0060, 0.0028, 0.0567],
    "MQMExact": [7.6794e-4, 1.5186, 1.2786, 0.6299, 282.2273],
}

#: Table 3 — electricity L1 errors (20 trials).
TABLE3 = {
    "epsilons": [0.2, 1.0, 5.0],
    "GroupDP": [516.1555, 102.8868, 19.8712],
    "GK16": [None, None, None],
    "MQMApprox": [0.3369, 0.0614, 0.0113],
    "MQMExact": [0.1298, 0.0188, 0.0022],
    "n_states": 51,
    "length": 1_000_000,
}

#: Activity dataset shape parameters quoted in Section 5.3.1.
ACTIVITY_DATASET = {
    "groups": {"cyclist": 40, "older_woman": 16, "overweight_woman": 36},
    "n_activities": 4,
    "sampling_seconds": 12,
    "mean_observations": 9000,
    "gap_minutes": 10,
}
