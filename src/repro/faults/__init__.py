"""Deterministic fault injection for the privacy service's durable paths.

The budget ledger's exactness guarantees ("spent exactly once", "never
strand epsilon") are only trustworthy if they hold under *failure* —
stores that throw mid-commit, locks that time out, clients that vanish
between reserve and consume.  This package provides the machinery to
prove that: named **fault points** compiled into the hot paths
(:class:`~repro.service.stores.LedgerStore` transactions, the
:class:`~repro.serving.cache.JSONFileCache` flush,
:class:`~repro.service.ledger.TenantLedger` operations, the ASGI app),
and a seeded :class:`FaultInjector` that fires configured faults at them
— transient errors, latency, or simulated crashes — on a reproducible
schedule.

With no injector installed, a fault point is one global read and a
``None`` check; production code pays effectively nothing.

See :mod:`repro.faults.injector` for the model and
``docs/architecture.md`` for the fault-model ADR.
"""

from repro.faults.points import (
    FAULT_POINTS,
    declared_points,
    matching_points,
    never_fired,
    unmatched_patterns,
)
from repro.faults.injector import (
    ENV_VAR,
    ERROR_KINDS,
    EXIT_STATUS,
    FaultInjector,
    FaultRule,
    SimulatedCrashError,
    current,
    fire,
    injected,
    injector_from_spec,
    install,
    install_from_env,
    uninstall,
)

__all__ = [
    "ENV_VAR",
    "ERROR_KINDS",
    "EXIT_STATUS",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultRule",
    "SimulatedCrashError",
    "current",
    "declared_points",
    "fire",
    "matching_points",
    "never_fired",
    "unmatched_patterns",
    "injected",
    "injector_from_spec",
    "install",
    "install_from_env",
    "uninstall",
]
