"""The fault injector: seeded, named-point, deterministic.

The model has three pieces:

* **Fault points** are string names compiled into production code —
  ``"ledger.json.commit.replace"``, ``"tenant.consume"``,
  ``"app.request"`` — each a call to :func:`fire` with keyword context
  (tenant, path, ...).  The full catalogue lives in ``docs/api.md``.
* **Rules** (:class:`FaultRule`) match points by ``fnmatch`` pattern and
  describe one fault: raise a transient error (``io`` / ``lock_timeout``
  / ``sqlite_busy``), sleep (``latency``), simulate a crash in-process
  (``crash`` — raises :class:`SimulatedCrashError`, which crash-path
  cleanup handlers deliberately do *not* tidy up after, so partial state
  is left behind exactly as a power loss would), or kill the process for
  real (``exit`` — ``os._exit``, for subprocess tests).  Rules can skip
  the first ``after`` matches, fire at most ``times`` times, and fire
  probabilistically.
* The **injector** (:class:`FaultInjector`) owns the rules, a seeded RNG
  for the probabilistic decisions, and thread-safe counters — the same
  seed and workload replays the same fault schedule.

Installation is process-global (:func:`install` / the :func:`injected`
context manager) because the instrumented code spans layers that share no
constructor path; with nothing installed :func:`fire` is a no-op.  Worker
processes inherit injection through the ``REPRO_FAULTS`` environment
variable (a JSON spec, read once at import), so multi-process chaos tests
can arm children they are about to SIGKILL.
"""

from __future__ import annotations

import errno
import fnmatch
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

import contextlib

from repro.exceptions import ValidationError
from repro.utils.filelock import LockTimeoutError


class SimulatedCrashError(BaseException):
    """An in-process stand-in for SIGKILL / power loss at a fault point.

    Derives from :class:`BaseException` (not :class:`Exception`) so it
    sails through ``except Exception`` recovery paths the way a real
    crash would, and carries ``simulates_crash = True`` so the few
    crash-path cleanup handlers that catch ``BaseException`` (the
    temp-file unlinks in the stores) know to leave partial state on disk
    — cleaning up would defeat the point of simulating a crash.
    """

    simulates_crash = True


def _make_io_error(message: str) -> BaseException:
    return OSError(errno.EIO, message)


def _make_lock_timeout(message: str) -> BaseException:
    return LockTimeoutError(message)


def _make_sqlite_busy(message: str) -> BaseException:
    return sqlite3.OperationalError(f"database is locked ({message})")


#: Named transient-error families an ``error`` rule can raise.
ERROR_KINDS: "dict[str, Callable[[str], BaseException]]" = {
    "io": _make_io_error,
    "lock_timeout": _make_lock_timeout,
    "sqlite_busy": _make_sqlite_busy,
}

_ACTIONS = ("error", "latency", "crash", "exit")

#: Exit status used by ``exit`` rules — distinctive enough that a test
#: harness can tell an injected death from an ordinary failure.
EXIT_STATUS = 17


@dataclass
class FaultRule:
    """One fault: where it fires, what it does, and on what schedule.

    Parameters
    ----------
    point:
        ``fnmatch`` pattern over fault-point names (``"ledger.json.*"``).
    action:
        ``"error"`` (raise ``ERROR_KINDS[error]``), ``"latency"`` (sleep
        ``delay`` seconds), ``"crash"`` (raise
        :class:`SimulatedCrashError`), or ``"exit"`` (``os._exit`` — only
        meaningful in sacrificial subprocesses).
    error:
        Error family for ``action="error"``; one of :data:`ERROR_KINDS`.
    after:
        Skip the first ``after`` matching hits before arming (fire "on
        the third commit", not the first).
    times:
        Fire at most this many times; ``None`` fires on every armed match.
    probability:
        Chance an armed match actually fires, decided by the injector's
        seeded RNG — the knob for randomized-but-reproducible schedules.
    delay:
        Sleep length for ``action="latency"``.
    message:
        Carried into the injected exception for log forensics.
    """

    point: str
    action: str = "error"
    error: str = "io"
    after: int = 0
    times: "int | None" = 1
    probability: float = 1.0
    delay: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValidationError(
                f"rule action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.action == "error" and self.error not in ERROR_KINDS:
            raise ValidationError(
                f"rule error must be one of {sorted(ERROR_KINDS)}, "
                f"got {self.error!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError(
                f"rule probability must be in [0, 1], got {self.probability}"
            )
        if self.after < 0 or self.delay < 0:
            raise ValidationError("rule after/delay must be non-negative")
        if self.times is not None and self.times < 1:
            raise ValidationError(
                f"rule times must be >= 1 or None, got {self.times}"
            )


@dataclass
class _RuleState:
    rule: FaultRule
    hits: int = 0  # matches seen (armed or not)
    fired: int = 0  # faults actually raised/slept


class FaultInjector:
    """Fires configured :class:`FaultRule` s at named fault points.

    Deterministic: the same seed, rules, and sequence of :meth:`fire`
    calls produces the same fault schedule (probabilistic decisions come
    from one seeded ``random.Random``; counters are per rule).  Thread
    safe: counters and the RNG sit behind one lock, so concurrent
    sessions draw from one global schedule.

    ``history`` keeps the last :attr:`max_history` fired events for
    forensics (``max_history=0`` disables it); :meth:`stats` and
    :meth:`fired` count from durable per-point counters that never trim,
    so they stay exact however long a chaos run fires.
    """

    def __init__(
        self,
        rules: "Sequence[FaultRule | Mapping[str, Any]]" = (),
        *,
        seed: int = 0,
        max_history: int = 1000,
        validate_points: bool = False,
    ) -> None:
        import random

        self._states = [
            _RuleState(r if isinstance(r, FaultRule) else FaultRule(**r))
            for r in rules
        ]
        if validate_points:
            from repro.faults import points as _points

            _points.validate_patterns([s.rule.point for s in self._states])
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.max_history = int(max_history)
        if self.max_history < 0:
            raise ValidationError(
                f"max_history must be >= 0, got {max_history}"
            )
        self.history: list[dict[str, Any]] = []
        self._fired_per_point: dict[str, int] = {}

    @property
    def rules(self) -> list[FaultRule]:
        return [s.rule for s in self._states]

    def fire(self, point: str, **context: Any) -> None:
        """Evaluate every rule against ``point``; raise/sleep as configured.

        At most one rule acts per call (the first that decides to fire,
        in rule order) — a point that matches an ``error`` rule and a
        ``latency`` rule does not sleep on the way to raising.
        """
        action: "tuple[FaultRule, dict[str, Any]] | None" = None
        with self._lock:
            for state in self._states:
                rule = state.rule
                if not fnmatch.fnmatchcase(point, rule.point):
                    continue
                state.hits += 1
                if state.hits <= rule.after:
                    continue
                if rule.times is not None and state.fired >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                state.fired += 1
                self._fired_per_point[point] = (
                    self._fired_per_point.get(point, 0) + 1
                )
                event = {
                    "point": point,
                    "action": rule.action,
                    "rule": rule.point,
                    "context": context,
                }
                if self.max_history > 0:
                    self.history.append(event)
                    if len(self.history) > self.max_history:
                        del self.history[: -self.max_history]
                action = (rule, event)
                break
        if action is None:
            return
        rule, _ = action
        if rule.action == "latency":
            time.sleep(rule.delay)
        elif rule.action == "error":
            raise ERROR_KINDS[rule.error](
                f"{rule.message} [injected at {point}]"
            )
        elif rule.action == "crash":
            raise SimulatedCrashError(
                f"{rule.message} [simulated crash at {point}]"
            )
        else:  # "exit": a real, uncleanable process death.
            os._exit(EXIT_STATUS)

    def stats(self) -> dict[str, Any]:
        """Counts per rule pattern: hits seen, faults fired."""
        with self._lock:
            return {
                "rules": [
                    {
                        "point": s.rule.point,
                        "action": s.rule.action,
                        "hits": s.hits,
                        "fired": s.fired,
                    }
                    for s in self._states
                ],
                "total_fired": sum(s.fired for s in self._states),
            }

    def unmatched_rules(self) -> "tuple[str, ...]":
        """Armed rule patterns matching no point in the canonical registry.

        The lenient companion to ``validate_points=True`` — a pattern
        listed here will never fire at any declared production point
        (synthetic unit-test points aside), which usually means a typo
        in a chaos plan.
        """
        from repro.faults import points as _points

        return _points.unmatched_patterns(s.rule.point for s in self._states)

    def fired_per_point(self) -> "dict[str, int]":
        """Snapshot of the durable per-point fired counters."""
        with self._lock:
            return dict(self._fired_per_point)

    def fired(self, pattern: str = "*") -> int:
        """Total faults fired at points matching ``pattern``.

        Counted from durable per-point counters, not the bounded
        ``history`` buffer — exact even when a long chaos run fires more
        than :attr:`max_history` faults (or history is disabled).
        """
        with self._lock:
            return sum(
                count
                for point, count in self._fired_per_point.items()
                if fnmatch.fnmatchcase(point, pattern)
            )


# -- process-global installation -------------------------------------------
#
# The instrumented code spans layers (stores, cache, ledger, app) that share
# no constructor, so the injector is a process global.  `fire` is the only
# thing hot paths touch: one global load and a None check when idle.

_current: "FaultInjector | None" = None


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process's active injector (returns it)."""
    global _current
    _current = injector
    return injector


def uninstall() -> None:
    """Deactivate fault injection (idempotent)."""
    global _current
    _current = None


def current() -> "FaultInjector | None":
    """The active injector, or ``None``."""
    return _current


def fire(point: str, **context: Any) -> None:
    """Hit one fault point — the call compiled into production code.

    No-op (one global read) unless an injector is installed.
    """
    injector = _current
    if injector is not None:
        injector.fire(point, **context)


@contextlib.contextmanager
def injected(
    injector: "FaultInjector | Sequence[FaultRule | Mapping[str, Any]]",
    *,
    seed: int = 0,
) -> Iterator[FaultInjector]:
    """Install an injector (or build one from rules) for a ``with`` block,
    restoring whatever was installed before on exit."""
    global _current
    if not isinstance(injector, FaultInjector):
        injector = FaultInjector(injector, seed=seed)
    previous = _current
    install(injector)
    try:
        yield injector
    finally:
        _current = previous


# -- environment activation (worker processes) ------------------------------

ENV_VAR = "REPRO_FAULTS"


def injector_from_spec(spec: "str | Mapping[str, Any]") -> FaultInjector:
    """Build an injector from a JSON spec: ``{"seed": 0, "rules": [...]}``.

    Each rule entry is a :class:`FaultRule` field mapping.  This is the
    wire format of the ``REPRO_FAULTS`` environment variable.  Spec rules
    are validated against the canonical registry
    (:mod:`repro.faults.points`) by default — an env-armed chaos plan
    whose pattern matches no declared point would silently prove nothing.
    Set ``"validate": false`` in the spec to arm arbitrary patterns.
    """
    if isinstance(spec, str):
        try:
            spec = json.loads(spec)
        except json.JSONDecodeError as error:
            raise ValidationError(f"fault spec is not valid JSON: {error}") from error
    if not isinstance(spec, Mapping):
        raise ValidationError(
            f"fault spec must be a JSON object, got {type(spec).__name__}"
        )
    rules = spec.get("rules", [])
    if not isinstance(rules, Sequence) or isinstance(rules, (str, bytes)):
        raise ValidationError("fault spec 'rules' must be a list")
    return FaultInjector(
        rules,
        seed=int(spec.get("seed", 0)),
        validate_points=bool(spec.get("validate", True)),
    )


def install_from_env(environ: "Mapping[str, str] | None" = None) -> "FaultInjector | None":
    """Install an injector from ``REPRO_FAULTS`` if set (else no-op).

    Called once at import so spawned worker processes inherit the parent's
    fault plan through the environment; harmless to call again.
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_VAR)
    if not spec:
        return None
    return install(injector_from_spec(spec))


install_from_env()
