"""The canonical fault-point registry.

Every ``fire("<name>")`` call compiled into production code must be
declared here — this module is the single source of truth the rest of
the system checks against:

* :class:`~repro.faults.injector.FaultInjector` can validate that armed
  rule patterns actually match a declared point (``validate_points=True``
  or :func:`unmatched_patterns` for the lenient form), so a typo'd
  chaos-test pattern fails loudly instead of silently never firing.
* ``GET /admin/faults`` reports declared-but-never-fired points, making
  chaos *coverage* gaps visible at runtime, not just rule typos.
* The ``R5`` rule in :mod:`repro.staticcheck` cross-checks every
  ``fire(...)`` call site in the tree and every fnmatch pattern used by
  tests/benchmarks against this catalogue at lint time.

Keep descriptions to one line: they double as the ``/admin/faults``
legend and the ``docs/api.md`` catalogue.  Pure stdlib — the linter
imports this in containers without numpy.
"""

from __future__ import annotations

import fnmatch
from typing import Iterable, Sequence

#: name -> one-line description of where the point sits and what a fault
#: there simulates.  Sorted by name; keep it that way.
FAULT_POINTS: "dict[str, str]" = {
    "app.request": (
        "ASGI dispatch, after routing but before the handler runs — "
        "faults the request path itself"
    ),
    "cache.flush": (
        "JSONFileCache flush, before the temp file is written — "
        "a calibration-cache write that never starts"
    ),
    "cache.flush.after": (
        "JSONFileCache flush, after the atomic replace — a crash with "
        "the new cache contents already durable"
    ),
    "cache.flush.replace": (
        "JSONFileCache flush, between temp-file write and atomic "
        "replace — a crash that strands the temp file"
    ),
    "ledger.json.commit": (
        "JSON store commit, before the state file is rewritten — "
        "a transaction that dies with nothing durable"
    ),
    "ledger.json.commit.after": (
        "JSON store commit, after the atomic replace — a crash the "
        "client sees as failure but the ledger recorded"
    ),
    "ledger.json.commit.replace": (
        "JSON store commit, between temp-file write and atomic "
        "replace — torn-write territory"
    ),
    "ledger.json.read": (
        "JSON store transaction entry, while reading ledger state "
        "off disk"
    ),
    "ledger.memory.commit": (
        "in-memory store commit, before state is swapped in"
    ),
    "ledger.memory.commit.after": (
        "in-memory store commit, after state is swapped in — "
        "committed-but-reported-failed"
    ),
    "ledger.memory.read": "in-memory store transaction entry",
    "ledger.sqlite.begin": (
        "SQLite store BEGIN IMMEDIATE — lock acquisition and "
        "busy-timeout territory"
    ),
    "ledger.sqlite.commit": (
        "SQLite store commit, before the UPSERT and COMMIT run"
    ),
    "ledger.sqlite.commit.after": (
        "SQLite store commit, after COMMIT returned — durable but "
        "unacknowledged"
    ),
    "store.retry": (
        "RetryingLedgerStore, just before a backoff sleep — observes "
        "(or perturbs) the retry schedule itself"
    ),
    "tenant.advance_window": (
        "TenantLedger.advance_window entry, before the windowed "
        "reclamation transaction opens"
    ),
    "tenant.consume": (
        "TenantLedger.consume / consume_idempotent entry, before the "
        "debit transaction opens"
    ),
    "tenant.release_unused": (
        "TenantLedger.release_unused entry, before the refund "
        "transaction opens"
    ),
    "tenant.reserve": (
        "TenantLedger.reserve entry, before the admission transaction "
        "opens"
    ),
    "tenant.sweep": (
        "TenantLedger.sweep entry, before expired reservations are "
        "reclaimed"
    ),
}


def declared_points() -> "tuple[str, ...]":
    """Every declared fault-point name, sorted."""
    return tuple(sorted(FAULT_POINTS))


def is_declared(point: str) -> bool:
    """Whether ``point`` (an exact name, not a pattern) is declared."""
    return point in FAULT_POINTS


def matching_points(pattern: str) -> "tuple[str, ...]":
    """Declared points an ``fnmatch`` pattern matches (sorted)."""
    return tuple(
        name
        for name in sorted(FAULT_POINTS)
        if fnmatch.fnmatchcase(name, pattern)
    )


def unmatched_patterns(patterns: "Iterable[str]") -> "tuple[str, ...]":
    """The subset of ``patterns`` matching zero declared points.

    Order-preserving and deduplicating; the lenient companion to
    :func:`validate_patterns` for callers that want to warn or report
    instead of raise.
    """
    seen: "set[str]" = set()
    missed: "list[str]" = []
    for pattern in patterns:
        if pattern in seen:
            continue
        seen.add(pattern)
        if not matching_points(pattern):
            missed.append(pattern)
    return tuple(missed)


def validate_patterns(patterns: "Sequence[str]") -> None:
    """Raise ``ValidationError`` if any pattern matches no declared point.

    Used by :class:`~repro.faults.injector.FaultInjector` when built with
    ``validate_points=True``: a chaos plan naming a point that does not
    exist would otherwise arm, never fire, and silently prove nothing.
    """
    missed = unmatched_patterns(patterns)
    if missed:
        from repro.exceptions import ValidationError

        raise ValidationError(
            "fault rule pattern(s) match no declared fault point: "
            + ", ".join(repr(p) for p in missed)
            + " (see repro.faults.points.FAULT_POINTS)"
        )


def never_fired(fired_counts: "dict[str, int]") -> "tuple[str, ...]":
    """Declared points absent from (or zero in) a fired-count mapping.

    ``fired_counts`` is the shape of ``FaultInjector._fired_per_point`` /
    the per-point totals behind :meth:`FaultInjector.fired` — the
    ``/admin/faults`` handler uses this to surface chaos coverage gaps.
    """
    return tuple(
        name
        for name in sorted(FAULT_POINTS)
        if fired_counts.get(name, 0) == 0
    )
