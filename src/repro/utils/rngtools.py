"""Random-generator plumbing.

Every stochastic routine in this library accepts an optional ``rng`` argument
that may be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`resolve_rng` canonicalizes all three
forms so call sites stay one-line.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

RngLike = "int | np.random.Generator | None"


def resolve_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` creates a freshly-seeded generator; an ``int`` seeds a new
    generator deterministically; an existing generator is returned as-is.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise ValidationError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng).__name__}"
    )
