"""Input validation helpers.

These helpers normalize user input into canonical ``numpy`` representations
and raise :class:`~repro.exceptions.ValidationError` with actionable messages
when the input is malformed.  They are used at every public API boundary so
that internal code can assume well-formed arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError

#: Absolute tolerance used when checking that probabilities sum to one.
PROBABILITY_ATOL = 1e-8


def check_positive(value: float, name: str) -> float:
    """Return ``value`` unchanged after checking it is strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_unit_interval(value: float, name: str, *, open_ends: bool = False) -> float:
    """Return ``value`` after checking it lies in [0, 1] (or (0, 1))."""
    value = float(value)
    if open_ends:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must lie strictly inside (0, 1), got {value!r}")
    elif not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_unit_interval` for readability at call sites."""
    return check_unit_interval(value, name)


def as_probability_vector(
    values: Sequence[float] | np.ndarray,
    name: str = "probability vector",
    *,
    normalize: bool = False,
) -> np.ndarray:
    """Validate and return a 1-D probability vector as ``float64``.

    Parameters
    ----------
    values:
        Candidate vector of non-negative reals.
    name:
        Used in error messages.
    normalize:
        When true, rescale a non-negative vector with positive total mass to
        sum to one instead of rejecting it.
    """
    vec = np.asarray(values, dtype=float)
    if vec.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {vec.shape}")
    if vec.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(vec)):
        raise ValidationError(f"{name} contains non-finite entries")
    if np.any(vec < 0):
        raise ValidationError(f"{name} contains negative entries")
    total = float(vec.sum())
    if normalize:
        if total <= 0:
            raise ValidationError(f"{name} has zero total mass and cannot be normalized")
        return vec / total
    if abs(total - 1.0) > PROBABILITY_ATOL:
        raise ValidationError(f"{name} must sum to 1 (got {total!r}); pass normalize=True to rescale")
    # Renormalize exactly so downstream cumulative sums terminate at 1.0.
    return vec / total


def as_transition_matrix(
    matrix: Sequence[Sequence[float]] | np.ndarray,
    name: str = "transition matrix",
) -> np.ndarray:
    """Validate and return a row-stochastic square matrix as ``float64``."""
    mat = np.asarray(matrix, dtype=float)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {mat.shape}")
    if mat.shape[0] == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(mat)):
        raise ValidationError(f"{name} contains non-finite entries")
    if np.any(mat < 0):
        raise ValidationError(f"{name} contains negative entries")
    row_sums = mat.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=PROBABILITY_ATOL):
        bad = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValidationError(
            f"{name} rows must sum to 1; row {bad} sums to {row_sums[bad]!r}"
        )
    return mat / row_sums[:, None]


def as_state_sequence(
    values: Sequence[int] | np.ndarray,
    n_states: int,
    name: str = "state sequence",
) -> np.ndarray:
    """Validate a 1-D sequence of integer state labels in ``[0, n_states)``."""
    seq = np.asarray(values)
    if seq.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {seq.shape}")
    if seq.size and not np.issubdtype(seq.dtype, np.integer):
        as_int = seq.astype(np.int64)
        if not np.array_equal(as_int, seq):
            raise ValidationError(f"{name} must contain integer state labels")
        seq = as_int
    seq = seq.astype(np.int64, copy=False)
    if seq.size and (seq.min() < 0 or seq.max() >= n_states):
        raise ValidationError(
            f"{name} labels must lie in [0, {n_states}), got range "
            f"[{seq.min()}, {seq.max()}]"
        )
    return seq
