"""Shared utilities: input validation and random-generator handling.

Names resolve lazily (PEP 562): :mod:`repro.utils.filelock` is pure
stdlib and is imported by the (also stdlib-only) fault-injection and
lint tooling, so importing this package must not drag in the
numpy-backed ``rngtools``/``validation`` modules.
"""

from __future__ import annotations

import importlib
from typing import Any

_LAZY_EXPORTS: "dict[str, str]" = {
    "as_probability_vector": "repro.utils.validation",
    "as_state_sequence": "repro.utils.validation",
    "as_transition_matrix": "repro.utils.validation",
    "check_positive": "repro.utils.validation",
    "check_probability": "repro.utils.validation",
    "check_unit_interval": "repro.utils.validation",
    "resolve_rng": "repro.utils.rngtools",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        value = getattr(importlib.import_module(module_name), name)
        globals()[name] = value
        return value
    if name in ("filelock", "rngtools", "validation"):
        module = importlib.import_module(f"repro.utils.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro.utils' has no attribute {name!r}")


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(__all__))
