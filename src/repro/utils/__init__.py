"""Shared utilities: input validation and random-generator handling."""

from repro.utils.rngtools import resolve_rng
from repro.utils.validation import (
    as_probability_vector,
    as_state_sequence,
    as_transition_matrix,
    check_positive,
    check_probability,
    check_unit_interval,
)

__all__ = [
    "as_probability_vector",
    "as_state_sequence",
    "as_transition_matrix",
    "check_positive",
    "check_probability",
    "check_unit_interval",
    "resolve_rng",
]
