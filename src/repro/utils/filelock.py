"""Portable inter-process file locking.

Two cooperating implementations behind one context-manager interface:

* **``fcntl`` flock** (POSIX): an exclusive advisory lock on the lock file
  itself.  Blocking, fair enough in practice, released automatically by the
  kernel when the process dies — the preferred mode wherever ``fcntl``
  exists.
* **Lock-file fallback** (any platform): atomically creating the lock file
  with ``O_CREAT | O_EXCL`` *is* acquiring the lock; deleting it releases.
  ``O_EXCL`` creation is atomic on every mainstream filesystem, so two
  processes can never both think they created the file.  Because a crashed
  holder leaves the file behind, the fallback breaks locks whose file is
  older than ``stale_ttl`` seconds, and bounds the wait with ``timeout``
  (raising :class:`LockTimeoutError` rather than hanging forever).

The fallback exists because :class:`~repro.serving.cache.JSONFileCache`
used to degrade to *no cross-process lock at all* on platforms without
``fcntl`` — a silent lost-update window.  Consumers (the calibration cache,
the JSON ledger store) now always get a real mutual-exclusion guarantee;
only its failure mode differs per platform.

The module-level ``fcntl`` name is resolved at *acquire* time, so tests can
``monkeypatch.setattr(filelock, "fcntl", None)`` to force the fallback path
on POSIX hosts.
"""

from __future__ import annotations

import contextlib
import os
import time
from pathlib import Path
from typing import Iterator

try:  # POSIX advisory file locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None  # type: ignore[assignment]

from repro.exceptions import ReproError


class LockTimeoutError(ReproError, TimeoutError):
    """The lock-file fallback could not acquire the lock within ``timeout``.

    Only the fallback path can raise this — the ``fcntl`` path blocks
    indefinitely (matching its historical behavior).  Subclasses
    :class:`TimeoutError` so generic timeout handling keeps working.
    """

    http_status = 503  # transient contention; the client may retry
    #: Default retry hint; the raise site overrides it with the actual
    #: configured lock timeout (the bound on a healthy holder's tenure).
    retry_after = 1.0


class InterProcessLock:
    """Exclusive lock shared by threads *and* processes, keyed by a path.

    Parameters
    ----------
    path:
        The lock file.  Under ``fcntl`` the file persists and is flocked;
        under the fallback its existence is the lock (it is created on
        acquire and deleted on release).
    timeout:
        Fallback only: seconds to keep retrying before
        :class:`LockTimeoutError`.
    poll_interval:
        Fallback only: sleep between creation attempts.
    stale_ttl:
        Fallback only: a lock file older than this many seconds is presumed
        abandoned by a crashed holder and broken (deleted, then re-raced).
        Must comfortably exceed the longest legitimate critical section.

    Not reentrant: one instance guards one critical section at a time.
    Instances are cheap — create one per acquisition site rather than
    sharing, or serialize shared use behind a thread lock (both the cache
    and the ledger store do the latter).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        timeout: float = 60.0,
        poll_interval: float = 0.005,
        stale_ttl: float = 300.0,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        if stale_ttl <= 0:
            raise ValueError(f"stale_ttl must be positive, got {stale_ttl}")
        self.path = Path(path)
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)
        self.stale_ttl = float(stale_ttl)
        self._handle = None  # fcntl mode: the flocked file object
        self._owns_file = False  # fallback mode: we created path and must unlink

    # -- acquisition -----------------------------------------------------
    def acquire(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            self._acquire_flock()
        else:
            self._acquire_fallback()

    def _acquire_flock(self) -> None:
        handle = open(self.path, "a")
        fcntl.flock(handle, fcntl.LOCK_EX)
        self._handle = handle

    def _acquire_fallback(self) -> None:
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    error = LockTimeoutError(
                        f"could not acquire lock file {self.path} within "
                        f"{self.timeout:g}s (held by another process? a stale "
                        f"holder is broken after {self.stale_ttl:g}s)"
                    )
                    error.retry_after = self.timeout
                    raise error
                time.sleep(self.poll_interval)
                continue
            with os.fdopen(fd, "w") as stream:
                # Diagnostics only (who holds it); correctness never reads it.
                stream.write(f"{os.getpid()}\n")
            self._owns_file = True
            return

    def _break_if_stale(self) -> None:
        """Delete the lock file if its mtime exceeds the stale TTL.

        Racy by design: several waiters may decide to break at once, but
        ``unlink`` of an already-unlinked file just fails quietly and the
        winners still race through one atomic ``O_EXCL`` create — mutual
        exclusion is preserved, only the *break* is best-effort.
        """
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return  # already released; retry the create immediately
        if age > self.stale_ttl:
            with contextlib.suppress(OSError):
                self.path.unlink()

    # -- release ---------------------------------------------------------
    def release(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            fcntl.flock(handle, fcntl.LOCK_UN)
            handle.close()
        elif self._owns_file:
            self._owns_file = False
            with contextlib.suppress(OSError):
                self.path.unlink()

    def __enter__(self) -> "InterProcessLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


@contextlib.contextmanager
def interprocess_lock(
    path: str | Path,
    *,
    timeout: float = 60.0,
    stale_ttl: float = 300.0,
) -> Iterator[None]:
    """One-shot convenience wrapper around :class:`InterProcessLock`."""
    lock = InterProcessLock(path, timeout=timeout, stale_ttl=stale_ttl)
    lock.acquire()
    try:
        yield
    finally:
        lock.release()
