"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``experiments``
    Run one (or all) paper experiments at the full or fast profile.
``verify``
    Numerically verify the Pufferfish inequality for MQMExact on a small
    chain instantiation (a self-check of the installed build).  Calibration
    goes through the serving engine, so this also exercises the cache path.
``throughput``
    Quick cold-versus-warm serving demonstration: releases/second with
    per-release recalibration versus a warm :class:`repro.serving.
    PrivacyEngine`, printed as JSON.
``stream``
    Streaming-session demonstration: steady-state per-release latency of a
    :class:`repro.serving.ReleaseSession` drained in chunks versus repeated
    single ``release()`` calls on a warm engine, plus a seeded
    stream-equals-batch-prefix self-check, printed as JSON (exit 1 if the
    prefix check ever fails).
``accounting``
    Accountant comparison demonstration: drain one epsilon budget through a
    streamed Markov Quilt workload under linear (Theorem 4.4) and Rényi
    accounting — Laplace and Gaussian noise — and report how many releases
    each regime served, printed as JSON (exit 1 if Rényi ever serves fewer
    than linear, which the inf-order grid entry makes impossible).
``calibrate``
    Run the Table 2 synthetic calibration sweep serially and sharded across
    ``--workers`` processes (:class:`repro.parallel.ParallelCalibrator`),
    printing wall times, the speedup, and the bit-identity check as JSON.
``serve``
    Run the multi-tenant privacy service (:mod:`repro.service`) on a local
    HTTP port over a durable tenant-ledger store (``--store`` path; SQLite
    for ``.sqlite``/``.db`` suffixes, a JSON file otherwise, in-memory when
    omitted).  Several service processes may share one store — budgets
    hold across all of them.
``lint``
    Run the stdlib-only AST invariant linter (:mod:`repro.staticcheck`)
    over a tree: lock discipline, check-then-act atomicity, crash-
    exception safety, determinism, fault-point conformance, transaction
    discipline.  Pure stdlib — works before numpy installs.
``info``
    Print version and the experiment inventory.
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENTS = (
    "fig4_synthetic",
    "fig4_activity",
    "table1_activity",
    "table2_runtime",
    "table3_power",
    "section3_flu",
    "section44_running_example",
    "general_networks",
    "structured_scenarios",
)


def _cmd_experiments(args: argparse.Namespace) -> int:
    import importlib

    from repro.experiments.config import FAST, FULL

    profile = FAST if args.profile == "fast" else FULL
    names = EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        print(f"=== {name} ({profile.name} profile) ===")
        if name == "fig4_synthetic":
            module.main(profile.synthetic)
        elif name in ("fig4_activity", "table1_activity"):
            module.main(profile.activity)
        elif name == "table2_runtime":
            module.main(profile.activity, profile.power)
        elif name == "table3_power":
            module.main(profile.power)
        else:
            module.main()
        print()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis.verification import verify_pufferfish
    from repro.core.framework import entrywise_instantiation
    from repro.core.models import MarkovChainModel
    from repro.core.mqm_chain import MQMExact
    from repro.core.queries import StateFrequencyQuery
    from repro.distributions.chain_family import FiniteChainFamily
    from repro.distributions.markov import MarkovChain
    from repro.serving import PrivacyEngine

    chain = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]])
    length = args.length
    inst = entrywise_instantiation(length, 2, [MarkovChainModel(chain, length)])
    query = StateFrequencyQuery(1, length)
    mech = MQMExact(FiniteChainFamily([chain]), args.epsilon, max_window=length)
    engine = PrivacyEngine(mech)
    scale = engine.calibrate(query, np.zeros(length, dtype=int)).scale
    report = verify_pufferfish(inst, query, scale, args.epsilon)
    print(report.summary())
    return 0 if report.satisfied else 1


def _demo_chain_workload(length: int):
    """The 4-state MQM chain workload shared by the serving demos
    (``throughput`` and ``stream``): ``(family, data, query)``."""
    from repro.core.queries import StateFrequencyQuery
    from repro.distributions.chain_family import FiniteChainFamily
    from repro.distributions.markov import MarkovChain

    chain = MarkovChain(
        [0.25, 0.25, 0.25, 0.25],
        [
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.1, 0.1, 0.7, 0.1],
            [0.1, 0.1, 0.1, 0.7],
        ],
    ).with_stationary_initial()
    family = FiniteChainFamily([chain])
    data = chain.sample(length, rng=0)
    query = StateFrequencyQuery(1, length)
    return family, data, query


def _cmd_throughput(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.core.mqm_chain import MQMExact
    from repro.serving import PrivacyEngine

    length = args.length
    family, data, query = _demo_chain_workload(length)

    cold_releases = min(args.releases, 20)
    start = time.perf_counter()
    for _ in range(cold_releases):
        MQMExact(family, args.epsilon, max_window=args.window).release(data, query, rng=1)
    cold_seconds = time.perf_counter() - start

    engine = PrivacyEngine(MQMExact(family, args.epsilon, max_window=args.window), rng=1)
    engine.calibrate(query, data)
    start = time.perf_counter()
    engine.release_repeated(data, query, args.releases)
    warm_seconds = time.perf_counter() - start

    cold_rps = cold_releases / cold_seconds
    warm_rps = args.releases / warm_seconds
    print(
        json.dumps(
            {
                "workload": {"mechanism": "MQMExact", "length": length, "k": 4},
                "cold": {"releases": cold_releases, "seconds": cold_seconds, "rps": cold_rps},
                "warm": {"releases": args.releases, "seconds": warm_seconds, "rps": warm_rps},
                "speedup": warm_rps / cold_rps,
            },
            indent=2,
        )
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.core.mqm_chain import MQMExact
    from repro.serving import PrivacyEngine

    family, data, query = _demo_chain_workload(args.length)

    def make_engine() -> PrivacyEngine:
        return PrivacyEngine(
            MQMExact(family, args.epsilon, max_window=args.window), rng=1
        )

    # Baseline: repeated single release() calls on a warm engine (per-call
    # cache lookup + query evaluation + scalar-sized noise draw).
    single_engine = make_engine()
    single_engine.calibrate(query, data)
    single_n = min(args.releases, 500)
    start = time.perf_counter()
    for _ in range(single_n):
        single_engine.release(data, query)
    single_seconds = time.perf_counter() - start

    # Streamed: one session drained in chunks.
    stream_engine = make_engine()
    stream_engine.calibrate(query, data)
    session = stream_engine.stream(
        data, query, rng=2, block_size=args.block_size, max_releases=args.releases
    )
    start = time.perf_counter()
    drained = 0
    while True:
        chunk = session.take(args.chunk)
        if not chunk:
            break
        drained += len(chunk)
    stream_seconds = time.perf_counter() - start

    # Self-check: the streamed values are the release_batch prefix, bit for
    # bit, under a shared seed.
    check_n = 64
    prefix = [
        r.value
        for r in make_engine().stream(data, query, rng=3, block_size=7).take(check_n)
    ]
    batch = [
        r.value
        for r in make_engine().release_batch([(data, query)] * check_n, rng=3)
    ]
    bit_identical = prefix == batch

    single_rps = single_n / single_seconds
    stream_rps = drained / stream_seconds
    print(
        json.dumps(
            {
                "workload": {
                    "mechanism": "MQMExact",
                    "length": args.length,
                    "k": 4,
                    "max_window": args.window,
                    "epsilon": args.epsilon,
                },
                "single": {
                    "releases": single_n,
                    "seconds": single_seconds,
                    "rps": single_rps,
                },
                "stream": {
                    "releases": drained,
                    "seconds": stream_seconds,
                    "rps": stream_rps,
                    "per_release_us": 1e6 * stream_seconds / max(drained, 1),
                    "chunk": args.chunk,
                    "block_size": args.block_size,
                },
                "speedup": stream_rps / single_rps,
                "session_stats": session.close(),
                "bit_identical_prefix": bit_identical,
            },
            indent=2,
        )
    )
    # A streamed value differing from the batched path would be a
    # correctness bug, not a performance result — fail loudly.
    return 0 if bit_identical else 1


def _cmd_accounting(args: argparse.Namespace) -> int:
    import json

    from repro.core import GaussianMarkovQuiltMechanism, MarkovQuiltMechanism
    from repro.core.accounting import RenyiAccountant
    from repro.core.composition import CompositionAccountant
    from repro.core.queries import CountQuery
    from repro.distributions.structured import hub_and_spoke_network
    from repro.exceptions import BudgetExhaustedError
    from repro.serving import PrivacyEngine

    import numpy as np

    network = hub_and_spoke_network(3, 2)
    data = np.ones(len(network.nodes))
    query = CountQuery()

    def drain(mechanism, accountant) -> dict:
        """Serve releases from one budget until the accountant refuses."""
        engine = PrivacyEngine(mechanism, accountant=accountant, rng=0)
        with engine.stream(data, query, block_size=64) as session:
            try:
                while True:
                    next(session)
            except BudgetExhaustedError as error:
                ledger = error.ledger()
            return {
                "served": session.n_yielded,
                "spent": engine.spent_epsilon(),
                "refusal": ledger,
            }

    def laplace() -> MarkovQuiltMechanism:
        return MarkovQuiltMechanism([network], args.epsilon)

    def gaussian() -> GaussianMarkovQuiltMechanism:
        return GaussianMarkovQuiltMechanism(
            [network], args.epsilon, delta=args.delta
        )

    def renyi() -> RenyiAccountant:
        return RenyiAccountant(budget=args.budget, delta=args.delta)

    report = {
        "workload": {
            "network": "hub_and_spoke(3, 2)",
            "epsilon": args.epsilon,
            "delta": args.delta,
            "budget": args.budget,
        },
        "laplace_linear": drain(laplace(), CompositionAccountant(budget=args.budget)),
        "laplace_renyi": drain(laplace(), renyi()),
        "gaussian_renyi": drain(gaussian(), renyi()),
    }
    ratio = report["laplace_renyi"]["served"] / max(
        report["laplace_linear"]["served"], 1
    )
    report["renyi_vs_linear_ratio"] = ratio
    print(json.dumps(report, indent=2))
    # Rényi accounting stopping before linear would be a correctness bug
    # (the inf-order grid entry pins it to the linear total) — fail loudly.
    return 0 if ratio >= 1.0 else 1


def _cmd_calibrate(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.table2_runtime import parallel_sweep_timings

    report = parallel_sweep_timings(
        args.workers,
        epsilon=args.epsilon,
        length=args.length,
        grid_points=args.grid_points,
    )
    print(json.dumps(report, indent=2))
    # A scale mismatch between the serial and sharded paths would be a
    # correctness bug, not a performance result — fail loudly.
    return 0 if report["bit_identical"] else 1


def _cmd_temporal(args: argparse.Namespace) -> int:
    import json
    import math
    import time

    from repro.core import MarkovQuiltMechanism, SlidingWindowAccountant
    from repro.distributions import TemporalNetwork
    from repro.distributions.structured import (
        BlockQuiltGenerator,
        block_node,
        household_blocks_network,
    )
    from repro.exceptions import BudgetExhaustedError

    import numpy as np

    blocks = tuple(
        tuple(block_node(i, j) for j in range(args.block_size))
        for i in range(args.blocks)
    )
    generator = BlockQuiltGenerator(blocks)
    base = household_blocks_network(args.blocks, args.block_size)

    temporal = TemporalNetwork(base)
    start = time.perf_counter()
    mechanism, cold_report = temporal.calibrated_mechanism(
        args.epsilon, quilt_generator=generator
    )
    cold_seconds = time.perf_counter() - start
    sigma_cold = mechanism.sigma_max()

    # Perturb one CPD and recalibrate: only quilts whose separator closures
    # touch the edited node should recompute.
    edited = block_node(0, args.block_size - 1)
    k = base.n_states(edited)
    shape = base.cpd(edited).shape
    cpd = np.full(shape, 1.0 / k)
    temporal.update_cpd(edited, cpd)

    start = time.perf_counter()
    warm_mechanism, warm_report = temporal.calibrated_mechanism(
        args.epsilon, quilt_generator=generator
    )
    warm_seconds = time.perf_counter() - start

    fresh = MarkovQuiltMechanism(
        [temporal.network], args.epsilon, quilt_generator=generator
    )
    fresh.sigma_max()
    bit_identical = fresh._sigma_cache == warm_mechanism._sigma_cache

    # Sliding-window budget drain: each window admits exactly
    # floor(budget / epsilon) releases, and expiry reclaims them forever.
    accountant = SlidingWindowAccountant(budget=args.budget)
    expected = math.floor(args.budget / args.epsilon)
    per_window: list[int] = []
    for _ in range(args.windows):
        served = 0
        try:
            while True:
                accountant.record(args.epsilon)
                served += 1
        except BudgetExhaustedError:
            pass
        per_window.append(served)
        accountant.advance_window()
    windows_ok = all(count == expected for count in per_window)

    print(
        json.dumps(
            {
                "workload": {
                    "network": f"household_blocks({args.blocks}, {args.block_size})",
                    "nodes": len(temporal.nodes),
                    "epsilon": args.epsilon,
                    "budget": args.budget,
                    "windows": args.windows,
                },
                "cold": {
                    "seconds": cold_seconds,
                    "recomputed_nodes": cold_report.recomputed_nodes,
                    "sigma_max": sigma_cold,
                },
                "incremental": {
                    "seconds": warm_seconds,
                    "edited_node": edited,
                    "reused_nodes": warm_report.reused_nodes,
                    "recomputed_nodes": warm_report.recomputed_nodes,
                    "reuse_fraction": warm_report.reuse_fraction,
                    "speedup": cold_seconds / max(warm_seconds, 1e-12),
                },
                "bit_identical": bit_identical,
                "sliding_window": {
                    "expected_per_window": expected,
                    "served_per_window": per_window,
                    "sustained": windows_ok,
                },
            },
            indent=2,
        )
    )
    # A reused sigma differing from the from-scratch calibration, or a window
    # admitting the wrong number of releases, would be a correctness bug, not
    # a performance result — fail loudly.
    return 0 if bit_identical and windows_ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import create_app
    from repro.service.server import serve

    app = create_app(
        args.store,
        reservation_ttl=args.reservation_ttl,
        request_timeout=args.request_timeout,
        max_concurrency=args.max_concurrency,
    )
    serve(app, host=args.host, port=args.port)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.staticcheck import cli as lint_cli

    argv = [args.root, "--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.strict:
        argv.append("--strict")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_cli.main(argv)


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro

    print(f"pufferfish-repro {repro.__version__}")
    print("experiments:", ", ".join(EXPERIMENTS))
    print("see README.md for the quickstart, docs/architecture.md for the layer")
    print("diagram, and docs/api.md for the public API reference")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    # Accept dashed spellings (structured-scenarios == structured_scenarios).
    p_exp.add_argument(
        "name",
        type=lambda s: s.replace("-", "_"),
        choices=("all", *EXPERIMENTS),
    )
    p_exp.add_argument("--profile", choices=("fast", "full"), default="fast")
    p_exp.set_defaults(func=_cmd_experiments)

    p_verify = sub.add_parser("verify", help="numeric Pufferfish self-check")
    p_verify.add_argument("--epsilon", type=float, default=1.0)
    p_verify.add_argument("--length", type=int, default=5)
    p_verify.set_defaults(func=_cmd_verify)

    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
        return parsed

    p_tp = sub.add_parser(
        "throughput", help="cold vs warm-cache serving demo (JSON output)"
    )
    p_tp.add_argument("--epsilon", type=float, default=1.0)
    p_tp.add_argument("--length", type=positive_int, default=2000)
    p_tp.add_argument("--window", type=positive_int, default=64)
    p_tp.add_argument("--releases", type=positive_int, default=1000)
    p_tp.set_defaults(func=_cmd_throughput)

    p_stream = sub.add_parser(
        "stream",
        help="streamed vs repeated-single-release serving demo (JSON output)",
    )
    p_stream.add_argument("--epsilon", type=float, default=1.0)
    p_stream.add_argument("--length", type=positive_int, default=2000)
    p_stream.add_argument("--window", type=positive_int, default=64)
    p_stream.add_argument("--releases", type=positive_int, default=5000)
    p_stream.add_argument(
        "--chunk", type=positive_int, default=100,
        help="releases drawn per session.take() call",
    )
    p_stream.add_argument(
        "--block-size", type=positive_int, default=256,
        help="releases worth of noise pre-drawn per vectorized block",
    )
    p_stream.set_defaults(func=_cmd_stream)

    p_acc = sub.add_parser(
        "accounting",
        help="linear vs Rényi releases-per-budget demo (JSON output)",
    )
    p_acc.add_argument("--epsilon", type=float, default=0.2)
    p_acc.add_argument("--delta", type=float, default=1e-5)
    p_acc.add_argument("--budget", type=float, default=12.0)
    p_acc.set_defaults(func=_cmd_accounting)

    p_cal = sub.add_parser(
        "calibrate",
        help="serial vs sharded calibration of the Table 2 sweep (JSON output)",
    )
    p_cal.add_argument(
        "--workers", type=positive_int, default=None,
        help="worker processes for the sharded run (default: CPU count)",
    )
    p_cal.add_argument("--epsilon", type=float, default=1.0)
    p_cal.add_argument("--length", type=positive_int, default=100)
    p_cal.add_argument(
        "--grid-points", type=positive_int, default=5,
        help="per-axis (p0, p1) grid resolution; the paper's Table 2 uses 9",
    )
    p_cal.set_defaults(func=_cmd_calibrate)

    p_temporal = sub.add_parser(
        "temporal",
        help="incremental recalibration + sliding-window budget demo "
        "(JSON output)",
    )
    p_temporal.add_argument("--epsilon", type=float, default=0.5)
    p_temporal.add_argument(
        "--blocks", type=positive_int, default=6,
        help="independent household blocks in the scenario network",
    )
    p_temporal.add_argument(
        "--block-size", type=positive_int, default=4,
        help="chain length inside each block",
    )
    p_temporal.add_argument("--budget", type=float, default=2.0)
    p_temporal.add_argument(
        "--windows", type=positive_int, default=5,
        help="sliding windows to drain in the budget demo",
    )
    p_temporal.set_defaults(func=_cmd_temporal)

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant privacy service over HTTP"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787)
    p_serve.add_argument(
        "--store", default=None,
        help="tenant-ledger path: *.sqlite/*.db for SQLite, any other "
        "suffix for the JSON file store; omit for in-memory (no durability)",
    )
    p_serve.add_argument(
        "--reservation-ttl", type=float, default=3600.0,
        help="seconds before an abandoned reservation stops counting "
        "against admission",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request wall-clock deadline in seconds; past it the "
        "client gets 503 RequestTimeout with Retry-After",
    )
    p_serve.add_argument(
        "--max-concurrency", type=int, default=64,
        help="requests in flight before new ones are refused with "
        "503 ServiceSaturated + Retry-After (backpressure, not queueing)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="AST invariant lint over the tree (stdlib-only; rules R1-R6)",
    )
    p_lint.add_argument(
        "root", nargs="?", default=".",
        help="tree to lint (default: current directory)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    p_lint.add_argument(
        "--select", default=None,
        help="comma list of rule ids/names to run (default: all)",
    )
    p_lint.add_argument(
        "--strict", action="store_true",
        help="also fail on suppressions that no longer suppress anything",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_info = sub.add_parser("info", help="version and inventory")
    p_info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
