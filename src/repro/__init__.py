"""pufferfish-repro: a reproduction of "Pufferfish Privacy Mechanisms for
Correlated Data" (Song, Wang, Chaudhuri; SIGMOD 2017).

Public API highlights
---------------------
* :class:`~repro.core.wasserstein.WassersteinMechanism` — Algorithm 1, the
  first mechanism for any Pufferfish instantiation.
* :class:`~repro.core.markov_quilt.MarkovQuiltMechanism` — Algorithm 2 for
  Bayesian networks.
* :class:`~repro.core.mqm_chain.MQMExact` / :class:`~repro.core.mqm_chain.MQMApprox`
  — Algorithms 3 and 4 for Markov chains.
* Baselines: :class:`~repro.baselines.dp.EntryDPMechanism`,
  :class:`~repro.baselines.group_dp.GroupDPMechanism`,
  :class:`~repro.baselines.gk16.GK16Mechanism`.
* Substrates: :class:`~repro.distributions.markov.MarkovChain`,
  :class:`~repro.distributions.bayesnet.DiscreteBayesianNetwork`, chain
  families, discrete distributions and their divergences.
* Inference: :class:`~repro.inference.engine.InferenceEngine` — the
  einsum variable-elimination engine behind every general-network
  marginal/conditional (``repro.inference``).
* Accounting: :class:`~repro.core.composition.CompositionAccountant`
  (linear, Theorem 4.4) and :class:`~repro.core.accounting.RenyiAccountant`
  (Rényi-Pufferfish strong composition), with
  :class:`~repro.core.gaussian.GaussianMarkovQuiltMechanism` as the
  Gaussian-noise MQM variant built for the Rényi regime.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.baselines import (
    EntryDPMechanism,
    GK16Mechanism,
    GroupDPMechanism,
    IndividualDPMechanism,
)
from repro.core import (
    BaseAccountant,
    Calibration,
    CompositionAccountant,
    CountQuery,
    FluCliqueModel,
    GaussianMarkovQuiltMechanism,
    MQMApprox,
    MQMExact,
    MarkovChainModel,
    MarkovQuiltMechanism,
    Mechanism,
    PrivateRelease,
    PufferfishInstantiation,
    Query,
    RelativeFrequencyHistogram,
    RenyiAccountant,
    Secret,
    SecretPair,
    StateFrequencyQuery,
    TabularDataModel,
    WassersteinMechanism,
    adversary_distance,
    chain_max_influence,
    effective_epsilon,
    entrywise_instantiation,
    pure_rdp_curve,
    wasserstein_bound,
)
from repro.data import StudyGroup, TimeSeriesDataset
from repro.inference import InferenceEngine, engine_for
from repro.parallel import ParallelCalibrator
from repro.serving import (
    CalibrationCache,
    InMemoryLRUCache,
    JSONFileCache,
    PrivacyEngine,
    ReleaseSession,
)
from repro.distributions import (
    DiscreteBayesianNetwork,
    DiscreteDistribution,
    FiniteChainFamily,
    IntervalChainFamily,
    MarkovChain,
    max_divergence,
    total_variation,
    w_infinity,
)

__version__ = "1.0.0"

__all__ = [
    "BaseAccountant",
    "Calibration",
    "CalibrationCache",
    "CompositionAccountant",
    "CountQuery",
    "DiscreteBayesianNetwork",
    "DiscreteDistribution",
    "EntryDPMechanism",
    "FiniteChainFamily",
    "FluCliqueModel",
    "GK16Mechanism",
    "GaussianMarkovQuiltMechanism",
    "GroupDPMechanism",
    "IndividualDPMechanism",
    "InMemoryLRUCache",
    "InferenceEngine",
    "IntervalChainFamily",
    "JSONFileCache",
    "MQMApprox",
    "MQMExact",
    "MarkovChain",
    "MarkovChainModel",
    "MarkovQuiltMechanism",
    "Mechanism",
    "ParallelCalibrator",
    "PrivacyEngine",
    "PrivateRelease",
    "PufferfishInstantiation",
    "Query",
    "RelativeFrequencyHistogram",
    "ReleaseSession",
    "RenyiAccountant",
    "Secret",
    "SecretPair",
    "StateFrequencyQuery",
    "StudyGroup",
    "TabularDataModel",
    "TimeSeriesDataset",
    "WassersteinMechanism",
    "adversary_distance",
    "chain_max_influence",
    "effective_epsilon",
    "engine_for",
    "entrywise_instantiation",
    "max_divergence",
    "pure_rdp_curve",
    "total_variation",
    "w_infinity",
    "wasserstein_bound",
]
