"""pufferfish-repro: a reproduction of "Pufferfish Privacy Mechanisms for
Correlated Data" (Song, Wang, Chaudhuri; SIGMOD 2017).

Public API highlights
---------------------
* :class:`~repro.core.wasserstein.WassersteinMechanism` — Algorithm 1, the
  first mechanism for any Pufferfish instantiation.
* :class:`~repro.core.markov_quilt.MarkovQuiltMechanism` — Algorithm 2 for
  Bayesian networks.
* :class:`~repro.core.mqm_chain.MQMExact` / :class:`~repro.core.mqm_chain.MQMApprox`
  — Algorithms 3 and 4 for Markov chains.
* Baselines: :class:`~repro.baselines.dp.EntryDPMechanism`,
  :class:`~repro.baselines.group_dp.GroupDPMechanism`,
  :class:`~repro.baselines.gk16.GK16Mechanism`.
* Substrates: :class:`~repro.distributions.markov.MarkovChain`,
  :class:`~repro.distributions.bayesnet.DiscreteBayesianNetwork`, chain
  families, discrete distributions and their divergences.
* Inference: :class:`~repro.inference.engine.InferenceEngine` — the
  einsum variable-elimination engine behind every general-network
  marginal/conditional (``repro.inference``).
* Accounting: :class:`~repro.core.composition.CompositionAccountant`
  (linear, Theorem 4.4) and :class:`~repro.core.accounting.RenyiAccountant`
  (Rényi-Pufferfish strong composition), with
  :class:`~repro.core.gaussian.GaussianMarkovQuiltMechanism` as the
  Gaussian-noise MQM variant built for the Rényi regime.

Lazy imports
------------
The public names resolve on first attribute access (PEP 562) instead of
at import: ``import repro`` must work in a container with **no numpy**
so the stdlib-only tooling (``python -m repro lint``,
:mod:`repro.staticcheck`, :mod:`repro.faults`) can run before
dependencies install.  The numpy-backed subpackages load the moment one
of their names is touched.  :mod:`repro.faults` alone is imported
eagerly: its import reads ``REPRO_FAULTS`` and arms the process-global
injector, which spawned chaos-test workers rely on.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from __future__ import annotations

import importlib
from typing import Any

# Eager and stdlib-only: importing repro.faults arms REPRO_FAULTS-spec'd
# injection in worker processes (see repro.faults.injector.install_from_env).
import repro.faults  # noqa: F401

__version__ = "1.0.0"

#: public name -> defining submodule, resolved lazily on first access.
_LAZY_EXPORTS: "dict[str, str]" = {
    "EntryDPMechanism": "repro.baselines",
    "GK16Mechanism": "repro.baselines",
    "GroupDPMechanism": "repro.baselines",
    "IndividualDPMechanism": "repro.baselines",
    "BaseAccountant": "repro.core",
    "Calibration": "repro.core",
    "CompositionAccountant": "repro.core",
    "CountQuery": "repro.core",
    "FluCliqueModel": "repro.core",
    "GaussianMarkovQuiltMechanism": "repro.core",
    "MQMApprox": "repro.core",
    "MQMExact": "repro.core",
    "MarkovChainModel": "repro.core",
    "MarkovQuiltMechanism": "repro.core",
    "Mechanism": "repro.core",
    "PrivateRelease": "repro.core",
    "PufferfishInstantiation": "repro.core",
    "Query": "repro.core",
    "RelativeFrequencyHistogram": "repro.core",
    "RenyiAccountant": "repro.core",
    "Secret": "repro.core",
    "SecretPair": "repro.core",
    "StateFrequencyQuery": "repro.core",
    "TabularDataModel": "repro.core",
    "WassersteinMechanism": "repro.core",
    "adversary_distance": "repro.core",
    "chain_max_influence": "repro.core",
    "effective_epsilon": "repro.core",
    "entrywise_instantiation": "repro.core",
    "pure_rdp_curve": "repro.core",
    "wasserstein_bound": "repro.core",
    "StudyGroup": "repro.data",
    "TimeSeriesDataset": "repro.data",
    "InferenceEngine": "repro.inference",
    "engine_for": "repro.inference",
    "ParallelCalibrator": "repro.parallel",
    "CalibrationCache": "repro.serving",
    "InMemoryLRUCache": "repro.serving",
    "JSONFileCache": "repro.serving",
    "PrivacyEngine": "repro.serving",
    "ReleaseSession": "repro.serving",
    "DiscreteBayesianNetwork": "repro.distributions",
    "DiscreteDistribution": "repro.distributions",
    "FiniteChainFamily": "repro.distributions",
    "IntervalChainFamily": "repro.distributions",
    "MarkovChain": "repro.distributions",
    "max_divergence": "repro.distributions",
    "total_variation": "repro.distributions",
    "w_infinity": "repro.distributions",
}

#: subpackages reachable as ``repro.<name>`` attributes without an
#: explicit ``import repro.<name>``.
_LAZY_SUBMODULES = frozenset(
    {
        "analysis",
        "baselines",
        "core",
        "data",
        "distributions",
        "exceptions",
        "experiments",
        "inference",
        "parallel",
        "service",
        "serving",
        "staticcheck",
        "utils",
    }
)

__all__ = sorted(_LAZY_EXPORTS) + ["faults"]


def __getattr__(name: str) -> Any:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        module = importlib.import_module(module_name)
        value = getattr(module, name)
        globals()[name] = value  # cache: resolve once per process
        return value
    if name in _LAZY_SUBMODULES:
        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(__all__) | set(_LAZY_SUBMODULES))
