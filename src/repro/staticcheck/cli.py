"""Command-line front end: ``python -m repro lint``.

Pure stdlib by design — this must run in a bare container before numpy
installs (``repro/__init__`` is lazy for exactly this reason).

Exit codes: 0 clean, 1 unsuppressed findings (or, with ``--strict``,
unused suppressions), 2 usage errors (argparse).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST invariant lint: lock discipline (R1), check-then-act "
            "atomicity (R2), crash-exception safety (R3), determinism "
            "(R4), fault-point conformance (R5), transaction discipline "
            "(R6)."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=".",
        help="tree to lint (default: current directory; rule file "
        "targets are matched relative to it)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma list of rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on suppressions that no longer suppress anything",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.staticcheck.engine import LintConfig, Linter
    from repro.staticcheck.rules import all_rules

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:<24} {rule.title}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"repro lint: not a directory: {args.root}", file=sys.stderr)
        return 2
    select = (
        frozenset(t.strip() for t in args.select.split(",") if t.strip())
        if args.select
        else None
    )
    linter = Linter(LintConfig(root=root, select=select))
    result = linter.run()
    if args.format == "json":
        print(result.render_json())
    else:
        print(result.render_text(strict=args.strict))
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
