"""The invariant-lint engine: files, suppressions, findings, output.

The engine is deliberately small: walk the tree, parse each targeted
file once, hand the parsed unit to every interested rule, then subtract
per-line suppression comments.  All policy lives in the rules
(:mod:`repro.staticcheck.rules`); all mechanism lives here.

Suppression contract
--------------------
A finding is suppressed by a comment **on the finding's line**::

    clone._apply_locked(staged)  # repro-lint: disable=R1 -- clone is frame-private

* ``disable=`` takes rule ids (``R1``), rule names
  (``lock-discipline``), a comma list, or ``all``.
* The ``-- justification`` text is **required**; a bare suppression is
  itself a finding (``bad-suppression``), because an unexplained
  exception to an invariant is exactly what the linter exists to stop.
* A suppression that suppresses nothing is reported under ``--strict``
  (``unused-suppression``) so stale exceptions get cleaned up.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.staticcheck.astutil import build_parents

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.rules import Rule

#: Directories never descended into while walking the lint root.
SKIP_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".venv",
        "venv",
        ".eggs",
        ".pytest_cache",
        ".mypy_cache",
        "node_modules",
        "build",
        "dist",
    }
)

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_.,\- ]*?)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # short id: "R1".."R6", or "lint" for engine findings
    name: str  # rule slug: "lock-discipline", "bad-suppression", ...
    path: str  # posix path relative to the lint root
    line: int
    col: int
    message: str

    def to_dict(self) -> "dict[str, Any]":
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{self.name}] {self.message}"
        )


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment."""

    path: str
    line: int
    rules: "frozenset[str]"  # ids/names as written, lowercased; may hold "all"
    justification: str
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        if finding.rule == "lint":
            return False  # engine findings are not suppressible
        targets = {finding.rule.lower(), finding.name.lower(), "all"}
        return bool(self.rules & targets)


@dataclass
class FileUnit:
    """One parsed source file handed to the rules."""

    path: Path  # absolute
    rel: str  # posix, relative to the lint root
    source: str
    tree: ast.Module
    parents: "dict[ast.AST, ast.AST]" = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, rel: str) -> "FileUnit":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
        return cls(path=path, rel=rel, source=source, tree=tree,
                   parents=build_parents(tree))


@dataclass
class LintConfig:
    """Engine configuration.

    ``fault_points`` overrides the declared-point set R5 validates
    against (fixture tests use this); when ``None`` the engine extracts
    it from ``src/repro/faults/points.py`` under the lint root, falling
    back to the installed registry.
    """

    root: Path
    select: "frozenset[str] | None" = None  # rule ids/names; None = all
    fault_points: "frozenset[str] | None" = None


@dataclass
class LintResult:
    findings: "list[Finding]"  # unsuppressed, sorted
    suppressed: "list[Finding]"
    unused_suppressions: "list[Suppression]"
    files_checked: int
    rules_run: "list[str]"

    def exit_code(self, strict: bool = False) -> int:
        if self.findings:
            return 1
        if strict and self.unused_suppressions:
            return 1
        return 0

    def to_dict(self) -> "dict[str, Any]":
        return {
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "unused_suppressions": [
                {"path": s.path, "line": s.line, "rules": sorted(s.rules)}
                for s in self.unused_suppressions
            ],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self, strict: bool = False) -> str:
        lines = [f.render() for f in self.findings]
        if strict:
            lines.extend(
                f"{s.path}:{s.line}:1: lint[unused-suppression] suppression "
                f"for {', '.join(sorted(s.rules))} matched no finding"
                for s in self.unused_suppressions
            )
        summary = (
            f"{len(self.findings)} finding(s), {len(self.suppressed)} "
            f"suppressed, {len(self.unused_suppressions)} unused "
            f"suppression(s); {self.files_checked} file(s), "
            f"rules: {', '.join(self.rules_run)}"
        )
        lines.append(summary)
        return "\n".join(lines)


def _scan_suppressions(
    unit: FileUnit,
) -> "tuple[dict[int, Suppression], list[Finding]]":
    """All suppression comments in a file, plus malformed-comment findings."""
    suppressions: "dict[int, Suppression]" = {}
    malformed: "list[Finding]" = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(unit.source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # ast parsed it; be forgiving here
        comments = [
            (number, "#" + line.split("#", 1)[1])
            for number, line in enumerate(unit.source.splitlines(), 1)
            if "#" in line
        ]
    for line_number, text in comments:
        if "repro-lint" not in text:
            continue
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            malformed.append(
                Finding(
                    rule="lint",
                    name="bad-suppression",
                    path=unit.rel,
                    line=line_number,
                    col=1,
                    message=(
                        "unparseable repro-lint comment; expected "
                        "'# repro-lint: disable=<rule> -- <justification>'"
                    ),
                )
            )
            continue
        rules = frozenset(
            token.strip().lower()
            for token in match.group("rules").split(",")
            if token.strip()
        )
        why = (match.group("why") or "").strip()
        if not rules or not why:
            malformed.append(
                Finding(
                    rule="lint",
                    name="bad-suppression",
                    path=unit.rel,
                    line=line_number,
                    col=1,
                    message=(
                        "suppression needs both a rule list and a "
                        "justification: "
                        "'# repro-lint: disable=<rule> -- <why>'"
                    ),
                )
            )
            continue
        suppressions[line_number] = Suppression(
            path=unit.rel, line=line_number, rules=rules, justification=why
        )
    return suppressions, malformed


def _extract_registry_points(points_file: Path) -> "frozenset[str] | None":
    """String keys of the ``FAULT_POINTS`` dict literal, via AST only."""
    try:
        tree = ast.parse(points_file.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in ast.walk(tree):
        targets: "list[ast.expr]" = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        named = any(
            isinstance(t, ast.Name) and t.id == "FAULT_POINTS"
            for t in targets
        )
        if named and isinstance(value, ast.Dict):
            return frozenset(
                key.value
                for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
    return None


class Linter:
    """Runs a rule battery over a tree and folds in suppressions."""

    def __init__(
        self,
        config: LintConfig,
        rules: "Sequence[Rule] | None" = None,
    ) -> None:
        from repro.staticcheck.rules import ALL_RULES

        self.config = config
        candidates = list(ALL_RULES if rules is None else rules)
        if config.select is not None:
            wanted = {token.lower() for token in config.select}
            candidates = [
                rule
                for rule in candidates
                if rule.rule_id.lower() in wanted or rule.name.lower() in wanted
            ]
        self.rules = candidates

    # -- context shared with rules ----------------------------------------
    def declared_fault_points(self) -> "frozenset[str]":
        if self.config.fault_points is not None:
            return self.config.fault_points
        registry = self.config.root / "src" / "repro" / "faults" / "points.py"
        if registry.is_file():
            extracted = _extract_registry_points(registry)
            if extracted is not None:
                return extracted
        try:  # fall back to the installed registry (pure stdlib import)
            from repro.faults.points import FAULT_POINTS

            return frozenset(FAULT_POINTS)
        except Exception:
            return frozenset()

    # -- file collection ---------------------------------------------------
    def _iter_files(self) -> "Iterable[tuple[Path, str]]":
        root = self.config.root
        for path in sorted(root.rglob("*.py")):
            rel_parts = path.relative_to(root).parts
            if any(part in SKIP_DIRS for part in rel_parts):
                continue
            yield path, "/".join(rel_parts)

    def run(self) -> LintResult:
        raw: "list[Finding]" = []
        suppressed_bucket: "list[Finding]" = []
        engine_findings: "list[Finding]" = []
        all_suppressions: "list[Suppression]" = []
        files_checked = 0

        for path, rel in self._iter_files():
            interested = [r for r in self.rules if r.targets_file(rel)]
            if not interested:
                continue
            try:
                unit = FileUnit.load(path, rel)
            except SyntaxError as error:
                engine_findings.append(
                    Finding(
                        rule="lint",
                        name="parse-error",
                        path=rel,
                        line=error.lineno or 1,
                        col=error.offset or 1,
                        message=f"file does not parse: {error.msg}",
                    )
                )
                continue
            except (OSError, UnicodeDecodeError) as error:
                engine_findings.append(
                    Finding(
                        rule="lint",
                        name="parse-error",
                        path=rel,
                        line=1,
                        col=1,
                        message=f"file is unreadable: {error}",
                    )
                )
                continue
            files_checked += 1
            suppressions, malformed = _scan_suppressions(unit)
            engine_findings.extend(malformed)
            all_suppressions.extend(suppressions.values())
            for rule in interested:
                for finding in rule.check(unit, self):
                    suppression = suppressions.get(finding.line)
                    if suppression is not None and suppression.covers(finding):
                        suppression.used = True
                        suppressed_bucket.append(finding)
                    else:
                        raw.append(finding)

        key = lambda f: (f.path, f.line, f.col, f.rule)  # noqa: E731
        return LintResult(
            findings=sorted(raw + engine_findings, key=key),
            suppressed=sorted(suppressed_bucket, key=key),
            unused_suppressions=sorted(
                (s for s in all_suppressions if not s.used),
                key=lambda s: (s.path, s.line),
            ),
            files_checked=files_checked,
            rules_run=[rule.rule_id for rule in self.rules],
        )
