"""R4 determinism in fingerprint-feeding modules.

The serving cache key is a content fingerprint: the same mechanism,
query, and data must hash to the same key in every process, forever —
that is what makes the calibration cache shareable and the chaos suite's
bit-identity assertions meaningful.  Anything nondeterministic in the
modules that feed :mod:`repro.serving.fingerprint` (wall clocks, the
process-global RNGs, salted builtin ``hash()``, iteration order of a
``set``) can silently poison a fingerprint or a cached calibration.

Flagged, as *calls*: ``time.time``/``time_ns``, ``datetime.now`` and
friends, the module-level ``random.*`` functions (seeded
``random.Random(seed)`` instances are fine), legacy global
``np.random.*`` (explicit ``np.random.default_rng``/``Generator``
construction is fine), and builtin ``hash()``.  Flagged, as iteration:
``for``/comprehension loops directly over a ``set`` literal, set
comprehension, or ``set()``/``frozenset()`` call that is not wrapped in
``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.staticcheck.astutil import dotted_name
from repro.staticcheck.engine import FileUnit, Finding
from repro.staticcheck.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.engine import Linter

#: numpy.random members that construct *seedable* generators.
_SEEDABLE_NP = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "SFC64"}
)
#: random-module members that construct seedable instances.
_SEEDABLE_STDLIB = frozenset({"Random", "SystemRandom"})


def _banned_call(name: str) -> "str | None":
    """A human reason if calling dotted ``name`` is nondeterministic."""
    if name in ("time.time", "time.time_ns"):
        return "wall-clock read"
    parts = name.split(".")
    if parts[-1] in ("now", "utcnow", "today") and any(
        p in ("datetime", "date") for p in parts[:-1]
    ):
        return "wall-clock read"
    if (
        len(parts) == 2
        and parts[0] == "random"
        and parts[1] not in _SEEDABLE_STDLIB
    ):
        return "process-global stdlib RNG"
    if (
        len(parts) >= 2
        and parts[-2] == "random"
        and parts[0] in ("np", "numpy")
        and parts[-1] not in _SEEDABLE_NP
    ):
        return "legacy global numpy RNG"
    if name == "hash":
        return "builtin hash() is salted per process (PYTHONHASHSEED)"
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismRule(Rule):
    """R4: no hidden nondeterminism where fingerprints are computed."""

    rule_id = "R4"
    name = "determinism"
    title = "fingerprint-feeding modules stay deterministic"
    default_targets = (
        "src/repro/serving/fingerprint.py",
        "src/repro/serving/cache.py",
        "src/repro/serving/engine.py",
        "src/repro/serving/stream.py",
        "src/repro/core/*.py",
        "src/repro/distributions/*.py",
        "src/repro/inference/*.py",
    )

    def check(self, unit: FileUnit, linter: "Linter") -> "Iterator[Finding]":
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                reason = None if name is None else _banned_call(name)
                if reason is not None:
                    yield self.finding(
                        unit,
                        node,
                        f"nondeterministic call '{name}' ({reason}) in a "
                        "fingerprint-feeding module — cache keys and "
                        "calibrations must replay bit-identically",
                    )
            iters: "list[ast.AST]" = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if _is_set_expr(candidate):
                    yield self.finding(
                        unit,
                        candidate,
                        "iteration over a set in a fingerprint-feeding "
                        "module — ordering is arbitrary; wrap in "
                        "sorted(...)",
                    )
