"""R3 crash-exception safety.

:class:`~repro.faults.injector.SimulatedCrashError` derives from
``BaseException`` precisely so ``except Exception`` recovery paths can't
swallow a simulated power loss.  The remaining holes are syntactic and
this rule closes them:

* a **bare** ``except:`` or ``except BaseException:`` that never
  re-raises *does* swallow the crash — broad handlers must contain a
  ``raise`` (the repo idiom: inspect ``simulates_crash``, clean up only
  for real errors, then re-raise unconditionally);
* an ``except Exception: pass`` directly wrapping a fault-point
  ``fire(...)`` call silently eats the injected *transient* errors the
  chaos suite relies on observing.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.staticcheck.astutil import (
    call_name,
    terminal_attr,
    walk_excluding_nested_defs,
)
from repro.staticcheck.engine import FileUnit, Finding
from repro.staticcheck.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.engine import Linter


def _handler_breadth(handler: ast.ExceptHandler) -> "str | None":
    """``"base"`` for bare/``BaseException`` handlers, ``"exception"``
    for ``Exception``-wide ones, ``None`` for anything narrower."""
    node = handler.type
    if node is None:
        return "base"
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = {terminal_attr(e) for e in exprs}
    if "BaseException" in names:
        return "base"
    if "Exception" in names:
        return "exception"
    return None


def _direct_nodes(statements: "list[ast.stmt]") -> "Iterator[ast.AST]":
    """Every node directly executed by ``statements`` (no nested defs)."""
    for stmt in statements:
        yield stmt
        yield from walk_excluding_nested_defs(stmt)


def _contains_raise(statements: "list[ast.stmt]") -> bool:
    return any(
        isinstance(n, ast.Raise) for n in _direct_nodes(statements)
    )


def _is_silent(statements: "list[ast.stmt]") -> bool:
    """A handler body that does nothing observable: pass/continue/docstring."""
    for stmt in statements:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


class CrashSafetyRule(Rule):
    """R3: broad handlers re-raise; no silent swallows around fault points."""

    rule_id = "R3"
    name = "crash-safety"
    title = "SimulatedCrashError must survive every handler"
    default_targets = ("src/repro/*.py",)
    default_excludes = ("src/repro/staticcheck/*",)

    def check(self, unit: FileUnit, linter: "Linter") -> "Iterator[Finding]":
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Try):
                continue
            body_fires = any(
                isinstance(n, ast.Call) and call_name(n) == "fire"
                for n in _direct_nodes(node.body)
            )
            for handler in node.handlers:
                breadth = _handler_breadth(handler)
                if breadth == "base":
                    if not _contains_raise(handler.body):
                        yield self.finding(
                            unit,
                            handler,
                            "bare/BaseException handler never re-raises "
                            "— it would swallow SimulatedCrashError and "
                            "tidy up after a simulated power loss; "
                            "clean up conditionally "
                            "(getattr(error, 'simulates_crash', False)) "
                            "and re-raise",
                        )
                elif breadth == "exception":
                    if body_fires and _is_silent(handler.body):
                        yield self.finding(
                            unit,
                            handler,
                            "except Exception silently swallows a block "
                            "containing a fault point — injected "
                            "transient errors would vanish; handle, "
                            "log, or re-raise",
                        )
