"""R1 lock discipline and R2 check-then-act atomicity.

The repo's threading story is conventions, not types: a method named
``*_locked`` documents "caller holds my lock", a budget check is only
meaningful if the matching debit happens before the lock drops, and a
streaming session must debit *before* a noise value escapes through
``yield``.  These rules make the conventions structural.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.staticcheck.astutil import (
    call_name,
    class_docstring_guarded_attrs,
    enclosing_functions,
    guard_region,
    receiver_of,
    walk_excluding_nested_defs,
)
from repro.staticcheck.engine import FileUnit, Finding
from repro.staticcheck.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.engine import Linter

_CONCURRENT_MODULES = (
    "src/repro/serving/stream.py",
    "src/repro/serving/engine.py",
    "src/repro/serving/cache.py",
    "src/repro/service/stores.py",
    "src/repro/service/ledger.py",
    "src/repro/service/app.py",
    "src/repro/core/accounting.py",
)

#: Constructors run before the object is shared; guarded attributes may
#: be initialised there without the lock.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "_init_runtime"}
)


class LockDisciplineRule(Rule):
    """R1: ``*_locked`` members only touched under an owning lock.

    A reference to ``<obj>.<something>_locked`` must sit inside a
    ``with <...lock/mutex>:`` block, inside another ``*_locked``
    function (the guard transfers to *its* callers), or inside a nested
    closure (deferred execution — transaction handlers, which R6
    polices separately).  Additionally, attributes a class docstring
    declares via ``:guarded: a, b`` may only be touched under a guard
    (constructors exempt).
    """

    rule_id = "R1"
    name = "lock-discipline"
    title = "*_locked members only under their lock"
    default_targets = _CONCURRENT_MODULES

    def check(self, unit: FileUnit, linter: "Linter") -> "Iterator[Finding]":
        parents = unit.parents
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr.endswith("_locked")
                and guard_region(node, parents) is None
            ):
                yield self.finding(
                    unit,
                    node,
                    f"'{node.attr}' requires its lock: call it inside "
                    "'with <lock>:', from another *_locked method, or "
                    "from a deferred transaction closure",
                )
        for cls in (
            n for n in ast.walk(unit.tree) if isinstance(n, ast.ClassDef)
        ):
            guarded = class_docstring_guarded_attrs(cls)
            if not guarded:
                continue
            for node in ast.walk(cls):
                if not (
                    isinstance(node, ast.Attribute)
                    and node.attr in guarded
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    continue
                functions = enclosing_functions(node, parents)
                if any(
                    f.name in _CONSTRUCTION_METHODS for f in functions
                ):
                    continue
                if guard_region(node, parents) is None:
                    yield self.finding(
                        unit,
                        node,
                        f"attribute 'self.{node.attr}' is declared "
                        ":guarded: in the class docstring; touch it "
                        "only under the class lock",
                    )


#: Method names that *observe* remaining budget.
CHECK_METHODS = frozenset({"preview", "remaining"})
#: Method names that *spend* budget.
ACT_METHODS = frozenset(
    {"record", "record_many", "consume", "consume_idempotent"}
)
#: Calls that debit budget ahead of a streamed release.
DEBIT_METHODS = ACT_METHODS | {"_debit_one"}


def _outermost_function(
    node: ast.AST, parents: "dict[ast.AST, ast.AST]"
) -> "ast.AST | None":
    functions = enclosing_functions(node, parents)
    return functions[-1] if functions else None


class CheckThenActRule(Rule):
    """R2: a budget check and its debit share one atomic region.

    Reading remaining budget under the lock and debiting after it drops
    (or in a different transaction) is the classic lost-update: two
    sessions both observe "1 release left" and both debit.  Within one
    method, a ``preview``/``remaining`` call and a ``record``/
    ``consume`` call *on the same receiver* must resolve to the same
    guard region (the same ``with <lock>:`` block or the same deferred
    closure).

    Separately: in session/stream generators, a ``yield`` must be
    preceded by a debit call — budget is spent before a noisy value can
    escape to the caller.
    """

    rule_id = "R2"
    name = "check-then-act"
    title = "budget check and debit in one atomic region"
    default_targets = _CONCURRENT_MODULES

    def check(self, unit: FileUnit, linter: "Linter") -> "Iterator[Finding]":
        parents = unit.parents
        yield from self._check_pairing(unit, parents)
        yield from self._check_yield_domination(unit, parents)

    # -- (a) check/act pairing --------------------------------------------
    def _check_pairing(self, unit, parents):
        groups: "dict[tuple[int, str], dict[str, list[ast.Call]]]" = {}
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            receiver = receiver_of(node)
            if callee is None or receiver is None:
                continue
            kind = (
                "check"
                if callee in CHECK_METHODS
                else "act"
                if callee in ACT_METHODS
                else None
            )
            if kind is None:
                continue
            outer = _outermost_function(node, parents)
            if outer is None:
                continue
            bucket = groups.setdefault(
                (id(outer), receiver), {"check": [], "act": []}
            )
            bucket[kind].append(node)
        for bucket in groups.values():
            if not bucket["check"] or not bucket["act"]:
                continue
            check_regions = {
                guard_region(c, parents) for c in bucket["check"]
            }
            for act in bucket["act"]:
                act_region = guard_region(act, parents)
                if act_region is None or act_region not in check_regions:
                    yield self.finding(
                        unit,
                        act,
                        f"debit '{call_name(act)}' does not share an "
                        "atomic region with the budget check on "
                        f"'{receiver_of(act)}' — the check can go stale "
                        "before the debit lands",
                    )

    # -- (b) debit-before-yield -------------------------------------------
    def _check_yield_domination(self, unit, parents):
        for func in ast.walk(unit.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            owner = parents.get(func)
            session_like = (
                "session" in func.name.lower()
                or "stream" in func.name.lower()
                or (
                    isinstance(owner, ast.ClassDef)
                    and "session" in owner.name.lower()
                )
            )
            if not session_like:
                continue
            body = [
                n
                for stmt in func.body
                for n in (stmt, *walk_excluding_nested_defs(stmt))
            ]
            yields = [
                n for n in body if isinstance(n, (ast.Yield, ast.YieldFrom))
            ]
            if not yields:
                continue
            debit_lines = [
                n.lineno
                for n in body
                if isinstance(n, ast.Call) and call_name(n) in DEBIT_METHODS
            ]
            for node in yields:
                if not any(line <= node.lineno for line in debit_lines):
                    yield self.finding(
                        unit,
                        node,
                        "yield in a session generator is not dominated "
                        "by a debit call — a release would escape "
                        "before budget is spent",
                    )
