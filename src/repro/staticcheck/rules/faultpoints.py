"""R5 fault-point conformance.

The chaos suite's power comes from *named* fault points: production code
calls ``fire("ledger.json.commit")`` and tests arm fnmatch patterns
against those names.  Both sides can rot silently — a ``fire()`` site
nobody registered is invisible to coverage reporting, and a typo'd test
pattern arms a rule that never fires and proves nothing.  This rule
pins both sides to the canonical registry
(:mod:`repro.faults.points`):

* in ``src/``: every ``fire(...)`` call takes a **string literal** name
  that is **declared** in the registry;
* in ``tests/`` and ``benchmarks/``: every literal pattern — a
  ``FaultRule("<pattern>", ...)`` argument or a ``{"point": ...}`` spec
  entry — matches at least one declared point, *or* at least one
  synthetic point the same file fires directly (unit tests of the
  injector itself invent points like ``"p"``; that is fine as long as
  the file actually fires them).
"""

from __future__ import annotations

import ast
import fnmatch
from typing import TYPE_CHECKING, Iterator

from repro.staticcheck.astutil import (
    call_name,
    keyword_str,
    literal_str_arg,
)
from repro.staticcheck.engine import FileUnit, Finding
from repro.staticcheck.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.engine import Linter


def _fired_literals(unit: FileUnit) -> "frozenset[str]":
    """Every string literal passed to a ``fire(...)`` call in the file."""
    points = set()
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Call) and call_name(node) == "fire":
            literal = literal_str_arg(node)
            if literal is not None:
                points.add(literal)
    return frozenset(points)


def _pattern_sites(unit: FileUnit) -> "Iterator[tuple[ast.AST, str]]":
    """Literal fault patterns armed in a test/bench file.

    ``FaultRule("<pat>", ...)`` / ``FaultRule(point="<pat>")`` calls and
    ``{"point": "<pat>", ...}`` dict literals (the ``REPRO_FAULTS`` wire
    form).  Non-literal patterns are invisible to static analysis and
    are skipped.
    """
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Call) and call_name(node) == "FaultRule":
            pattern = literal_str_arg(node)
            if pattern is None:
                pattern = keyword_str(node, "point")
            if pattern is not None:
                yield node, pattern
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "point"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    yield value, value.value


class FaultPointRule(Rule):
    """R5: fire sites declared; armed patterns match declared points."""

    rule_id = "R5"
    name = "fault-points"
    title = "fault points declared and patterns resolvable"
    default_targets = (
        "src/repro/*.py",
        "tests/*.py",
        "benchmarks/*.py",
    )
    default_excludes = (
        # The injector and the registry are the mechanism, not users.
        "src/repro/faults/injector.py",
        "src/repro/faults/points.py",
        "src/repro/staticcheck/*",
    )

    def check(self, unit: FileUnit, linter: "Linter") -> "Iterator[Finding]":
        declared = linter.declared_fault_points()
        if unit.rel.startswith("src/"):
            yield from self._check_fire_sites(unit, declared)
        else:
            yield from self._check_patterns(unit, declared)

    def _check_fire_sites(self, unit, declared):
        for node in ast.walk(unit.tree):
            if not (
                isinstance(node, ast.Call) and call_name(node) == "fire"
            ):
                continue
            point = literal_str_arg(node)
            if point is None:
                yield self.finding(
                    unit,
                    node,
                    "fire() needs a string-literal point name — dynamic "
                    "names cannot be checked against the registry or "
                    "reported by coverage",
                )
            elif point not in declared:
                yield self.finding(
                    unit,
                    node,
                    f"fault point '{point}' is not declared in "
                    "repro.faults.points.FAULT_POINTS — add it with a "
                    "one-line description",
                )

    def _check_patterns(self, unit, declared):
        fired_here = _fired_literals(unit)
        for node, pattern in _pattern_sites(unit):
            if any(fnmatch.fnmatchcase(p, pattern) for p in declared):
                continue
            if any(fnmatch.fnmatchcase(p, pattern) for p in fired_here):
                continue
            yield self.finding(
                unit,
                node,
                f"fault pattern '{pattern}' matches no declared fault "
                "point (and none fired in this file) — a typo here arms "
                "a rule that can never fire",
            )
