"""R6 transaction discipline in the tenant ledger.

The ledger's exactly-once story is: a debit
(``_consume_in_state(...)``) and the idempotency record that makes its
retry replayable are written by the **same** transaction closure — the
``handler`` passed to ``store.run(tenant, handler)``.  Split them across
closures (or write either after the transaction returns) and a crash
between the two yields a double-debit or a paid-for refusal on retry.

The rule checks, per method that opens transactions (calls ``*.run(...)``
or uses ``with *.transact(...)``):

* every debit call and every idempotency write (``records[k] = ...`` or
  ``...["idempotency"][k] = ...``) sits inside a transactional region —
  a closure passed to ``*.run(...)`` or a ``with *.transact(...)`` body;
* when a method has both kinds, they share one region.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.staticcheck.astutil import (
    ancestors,
    call_name,
    terminal_attr,
)
from repro.staticcheck.engine import FileUnit, Finding
from repro.staticcheck.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.engine import Linter

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Calls that debit the in-transaction ledger state.
_DEBIT_CALLS = frozenset({"_consume_in_state"})


def _is_transact_with(node: ast.AST) -> bool:
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    return any(
        terminal_attr(item.context_expr) == "transact"
        for item in node.items
    )


def _idempotency_write_target(node: ast.AST) -> bool:
    """Whether a store-context Subscript writes an idempotency record:
    ``records[k] = ...`` or ``<x>["idempotency"][k] = ...``."""
    if not isinstance(node, ast.Subscript):
        return False
    base = node.value
    if isinstance(base, ast.Name) and base.id == "records":
        return True
    if (
        isinstance(base, ast.Subscript)
        and isinstance(base.slice, ast.Constant)
        and base.slice.value == "idempotency"
    ):
        return True
    return False


class TransactionDisciplineRule(Rule):
    """R6: debit and idempotency write inside one transaction closure."""

    rule_id = "R6"
    name = "transaction-discipline"
    title = "ledger debits and idempotency writes share a transaction"
    default_targets = ("src/repro/service/ledger.py",)

    def check(self, unit: FileUnit, linter: "Linter") -> "Iterator[Finding]":
        parents = unit.parents
        for func in ast.walk(unit.tree):
            if not isinstance(func, _FUNCTION_NODES):
                continue
            if any(
                isinstance(a, _FUNCTION_NODES)
                for a in ancestors(func, parents)
            ):
                continue  # nested defs are analysed with their method
            yield from self._check_method(unit, func, parents)

    def _check_method(self, unit, func, parents):
        run_closure_names: "set[str]" = set()
        opens_transactions = False
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and call_name(node) == "run":
                opens_transactions = True
                run_closure_names.update(
                    arg.id for arg in node.args if isinstance(arg, ast.Name)
                )
            elif _is_transact_with(node):
                opens_transactions = True
        if not opens_transactions:
            return

        def region_of(node: ast.AST) -> "ast.AST | None":
            for anc in ancestors(node, parents):
                if anc is func:
                    return None
                if (
                    isinstance(anc, _FUNCTION_NODES)
                    and anc.name in run_closure_names
                ):
                    return anc
                if _is_transact_with(anc):
                    return anc
            return None

        debits: "list[tuple[ast.AST, ast.AST | None]]" = []
        writes: "list[tuple[ast.AST, ast.AST | None]]" = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and call_name(node) in _DEBIT_CALLS:
                debits.append((node, region_of(node)))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if _idempotency_write_target(target):
                        writes.append((target, region_of(node)))

        for node, region in debits + writes:
            if region is None:
                yield self.finding(
                    unit,
                    node,
                    "ledger debit / idempotency write outside any "
                    "transaction closure — move it into the handler "
                    "passed to store.run (or a 'with store.transact' "
                    "body) so commit covers it",
                )
        regions = {
            region
            for _, region in debits + writes
            if region is not None
        }
        if debits and writes and len(regions) > 1:
            anchor = writes[-1][0]
            yield self.finding(
                unit,
                anchor,
                "debit and idempotency write live in different "
                "transaction closures — a crash between the two "
                "commits one without the other (double-debit or "
                "paid-for refusal on retry)",
            )
