"""The invariant-lint rule battery.

Each rule is a small class: an id (``R1``…), a slug, the fnmatch
patterns naming the files it applies to (relative to the lint root;
overridable per instance so fixture tests can point a rule at a scratch
tree), and a ``check(unit, linter)`` generator yielding
:class:`~repro.staticcheck.engine.Finding` s.

Catalogue
---------
* **R1** ``lock-discipline`` — ``*_locked`` members and docstring-declared
  guarded attributes only under their lock (:mod:`.locks`).
* **R2** ``check-then-act`` — budget check and debit in one atomic
  region; debit-before-yield in session generators (:mod:`.locks`).
* **R3** ``crash-safety`` — broad exception handlers must re-raise so
  ``SimulatedCrashError`` survives; no silent swallows around fault
  points (:mod:`.crash`).
* **R4** ``determinism`` — no wall clocks, global RNGs, ``hash()``, or
  set iteration in fingerprint-feeding modules (:mod:`.determinism`).
* **R5** ``fault-points`` — every ``fire()`` site declared in
  :mod:`repro.faults.points`; every test/bench pattern matches a
  declared point (:mod:`.faultpoints`).
* **R6** ``transaction-discipline`` — ledger debits and idempotency
  writes inside the same ``store.run`` closure (:mod:`.transactions`).
"""

from __future__ import annotations

import ast
import fnmatch
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.staticcheck.engine import FileUnit, Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.engine import Linter


class Rule:
    """Base class: targeting plus the finding constructor."""

    rule_id: str = "R0"
    name: str = "rule"
    title: str = ""
    default_targets: "tuple[str, ...]" = ()
    default_excludes: "tuple[str, ...]" = ()

    def __init__(
        self,
        targets: "Sequence[str] | None" = None,
        excludes: "Sequence[str] | None" = None,
    ) -> None:
        self.targets = tuple(
            self.default_targets if targets is None else targets
        )
        self.excludes = tuple(
            self.default_excludes if excludes is None else excludes
        )

    def targets_file(self, rel: str) -> bool:
        if any(fnmatch.fnmatchcase(rel, pat) for pat in self.excludes):
            return False
        return any(fnmatch.fnmatchcase(rel, pat) for pat in self.targets)

    def finding(
        self, unit: FileUnit, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            name=self.name,
            path=unit.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def check(
        self, unit: FileUnit, linter: "Linter"
    ) -> "Iterator[Finding]":  # pragma: no cover - interface
        raise NotImplementedError


from repro.staticcheck.rules.crash import CrashSafetyRule
from repro.staticcheck.rules.determinism import DeterminismRule
from repro.staticcheck.rules.faultpoints import FaultPointRule
from repro.staticcheck.rules.locks import CheckThenActRule, LockDisciplineRule
from repro.staticcheck.rules.transactions import TransactionDisciplineRule

#: Fresh default-configured instances of the full battery, in id order.
def all_rules() -> "list[Rule]":
    return [
        LockDisciplineRule(),
        CheckThenActRule(),
        CrashSafetyRule(),
        DeterminismRule(),
        FaultPointRule(),
        TransactionDisciplineRule(),
    ]


ALL_RULES: "list[Rule]" = all_rules()

__all__ = [
    "ALL_RULES",
    "CheckThenActRule",
    "CrashSafetyRule",
    "DeterminismRule",
    "FaultPointRule",
    "LockDisciplineRule",
    "Rule",
    "TransactionDisciplineRule",
    "all_rules",
]
