"""Invariant lint: AST static analysis for the repo's own conventions.

The concurrency, crash-safety, and determinism guarantees this codebase
makes (exact budgets under threads and injected crashes, bit-identical
fingerprints, debit-before-yield streaming) all rest on *conventions* —
``*_locked`` methods called only under their lock, ``SimulatedCrashError``
never swallowed, fault points declared in one registry.  Dynamic tests
catch violations only when a schedule happens to hit them; this package
checks the conventions *structurally*, on every file, at lint time.

Pure stdlib (``ast`` + ``fnmatch`` + ``tokenize``) by design: the linter
must run in a bare CI container before numpy installs.  Entry point:
``python -m repro lint`` (see :mod:`repro.staticcheck.cli`).

Layout
------
* :mod:`repro.staticcheck.engine` — file walking, parsing, suppression
  comments, finding collection, output formatting.
* :mod:`repro.staticcheck.astutil` — shared AST helpers (parent maps,
  dotted-name chains, lock-guard detection).
* :mod:`repro.staticcheck.rules` — the rule battery (R1–R6).
* :mod:`repro.staticcheck.cli` — argparse front end.

Suppressions are per-line comments with a **required** justification::

    risky_call()  # repro-lint: disable=R1 -- clone is frame-private

A suppression without the ``-- why`` text is itself a finding.
"""

from repro.staticcheck.engine import (
    Finding,
    LintConfig,
    LintResult,
    Linter,
    Suppression,
)
from repro.staticcheck.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "LintResult",
    "Linter",
    "Rule",
    "Suppression",
]
