"""Shared AST helpers for the invariant-lint rules.

Everything here is pure-syntactic: no type inference, no imports of the
linted code.  The helpers encode the repo's *lexical* conventions — a
lock guard is a ``with`` on an attribute whose name ends in ``lock`` or
``mutex``, a deferred closure is a nested ``def`` — which is exactly the
level the conventions themselves are written at.
"""

from __future__ import annotations

import ast
from typing import Iterator

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOCKISH_SUFFIXES = ("lock", "mutex")


def build_parents(tree: ast.AST) -> "dict[ast.AST, ast.AST]":
    """Child -> parent map for every node in ``tree``."""
    parents: "dict[ast.AST, ast.AST]" = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(
    node: ast.AST, parents: "dict[ast.AST, ast.AST]"
) -> "Iterator[ast.AST]":
    """The parent chain of ``node``, innermost first, root last."""
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def dotted_name(node: ast.AST) -> "str | None":
    """``self._ledger.consume`` for a Name/Attribute chain, else None.

    A trailing call in the chain keeps its name (``self._file_lock()``
    reports ``self._file_lock``); anything non-name-like (subscripts,
    literals) yields None.
    """
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_attr(node: ast.AST) -> "str | None":
    """The last segment of a Name/Attribute/Call chain, else None."""
    name = dotted_name(node)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def is_lockish(expr: ast.AST) -> bool:
    """Whether a ``with``-item context expression looks like a lock.

    Matches ``self._lock``, ``self._mutex``, ``self._thread_lock``,
    ``self._streams_lock``, ``self._count_lock``, ``self._file_lock()``
    — any attribute (or zero-ambiguity call) whose terminal name ends in
    ``lock`` or ``mutex``.
    """
    name = terminal_attr(expr)
    if name is None:
        return False
    lowered = name.lower()
    return lowered.endswith(_LOCKISH_SUFFIXES)


def is_lock_with(node: ast.AST) -> bool:
    """Whether ``node`` is a ``with`` statement holding a lock."""
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    return any(is_lockish(item.context_expr) for item in node.items)


def enclosing_functions(
    node: ast.AST, parents: "dict[ast.AST, ast.AST]"
) -> "list[ast.FunctionDef | ast.AsyncFunctionDef]":
    """Function-definition ancestors of ``node``, innermost first."""
    return [
        anc
        for anc in ancestors(node, parents)
        if isinstance(anc, _FUNCTION_NODES)
    ]


def guard_region(
    node: ast.AST, parents: "dict[ast.AST, ast.AST]"
) -> "ast.AST | None":
    """The innermost guard establishing lock discipline over ``node``.

    Walking outward, the guard is the first of:

    * a ``with`` statement on a lock-like attribute (the caller holds
      the lock across the whole block);
    * a function whose name ends in ``_locked`` (the convention: the
      guard is the *caller's* responsibility, transitively checked at
      that caller's call site);
    * a *nested* function definition (a deferred closure — e.g. a
      ``store.run`` transaction handler — which executes under whatever
      discipline its runner establishes; R6 polices those runners).

    Returns the guard node, or ``None`` if an ordinary (top-level or
    method) function is reached first — i.e. the access is unguarded.
    """
    chain = list(ancestors(node, parents))
    for index, anc in enumerate(chain):
        if is_lock_with(anc):
            return anc
        if isinstance(anc, _FUNCTION_NODES):
            if anc.name.endswith("_locked"):
                return anc
            if any(
                isinstance(outer, _FUNCTION_NODES)
                for outer in chain[index + 1 :]
            ):
                return anc  # nested def: a deferred closure
            return None
    return None


def call_name(node: ast.Call) -> "str | None":
    """The called name: ``fire`` for both ``fire(..)`` and ``x.fire(..)``."""
    return terminal_attr(node.func)


def receiver_of(node: ast.Call) -> "str | None":
    """The dotted receiver of a method call: ``self._ledger`` for
    ``self._ledger.consume(...)``; None for bare-name calls."""
    if not isinstance(node.func, ast.Attribute):
        return None
    return dotted_name(node.func.value)


def literal_str_arg(node: ast.Call, position: int = 0) -> "str | None":
    """The ``position``-th positional argument if it is a string literal."""
    if len(node.args) > position:
        arg = node.args[position]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def keyword_str(node: ast.Call, name: str) -> "str | None":
    """The value of keyword ``name`` if it is a string literal."""
    for keyword in node.keywords:
        if keyword.arg == name:
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                return value.value
    return None


def walk_excluding_nested_defs(root: ast.AST) -> "Iterator[ast.AST]":
    """Walk ``root``'s body without descending into nested functions,
    lambdas, or class definitions — "directly executes here" semantics."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (*_FUNCTION_NODES, ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def class_docstring_guarded_attrs(node: ast.ClassDef) -> "set[str]":
    """Attributes a class docstring declares lock-guarded.

    Convention: one or more docstring lines of the form ::

        :guarded: _noise, _pos, _blocks_drawn

    declare that those instance attributes may only be touched under the
    class's lock (R1 enforces it).
    """
    doc = ast.get_docstring(node)
    attrs: "set[str]" = set()
    if not doc:
        return attrs
    for line in doc.splitlines():
        stripped = line.strip()
        if stripped.startswith(":guarded:"):
            names = stripped[len(":guarded:") :]
            attrs.update(
                token.strip() for token in names.split(",") if token.strip()
            )
    return attrs
