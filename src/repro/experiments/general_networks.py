"""E9 — Algorithm 2 on general Bayesian networks beyond the enumeration cap.

The paper's general Markov Quilt Mechanism was demonstrated on networks
whose joints fit exact enumeration; the :mod:`repro.inference` engine lifts
that ceiling.  This experiment calibrates Algorithm 2 on a family of
branching "disease-spread" trees of growing size — including sizes whose
joints are orders of magnitude past the old
:data:`~repro.distributions.bayesnet.MAX_JOINT_SIZE` cap — and reports the
per-size noise multiplier, the engine wall time, and whether the seed-era
enumeration path could have run at all.

On the largest path-graph instance the general mechanism is cross-checked
against the chain-specialized Algorithm 3 (they search the same Lemma 4.6
quilt sets, so their sigmas must agree).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import Table
from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.core.mqm_chain import MQMExact
from repro.distributions.bayesnet import MAX_JOINT_SIZE, DiscreteBayesianNetwork
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain

#: Contagion CPD: P(child infected | parent status).
CONTAGION = np.array([[0.85, 0.15], [0.45, 0.55]])
INITIAL = np.array([0.7, 0.3])
CHAIN_INITIAL = np.array([0.6, 0.4])
CHAIN_TRANSITION = np.array([[0.85, 0.15], [0.2, 0.8]])


def spread_tree(depth: int, branching: int = 2) -> DiscreteBayesianNetwork:
    """A complete ``branching``-ary infection tree of the given depth."""
    net = DiscreteBayesianNetwork()
    net.add_node("n0", 2, cpd=INITIAL)
    frontier = ["n0"]
    counter = 1
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                name = f"n{counter}"
                counter += 1
                net.add_node(name, 2, parents=[parent], cpd=CONTAGION)
                next_frontier.append(name)
        frontier = next_frontier
    return net


def run(
    depths: tuple[int, ...] = (2, 3, 4),
    epsilon: float = 2.0,
    max_radius: int | None = 4,
) -> Table:
    """Calibrate Algorithm 2 on growing trees; report sigma and wall time."""
    table = Table(
        f"Algorithm 2 on infection trees (eps={epsilon:g}, "
        f"joint cap was {MAX_JOINT_SIZE})",
        ["depth", "nodes", "joint size", "enumerable at seed", "sigma_max", "seconds"],
    )
    for depth in depths:
        net = spread_tree(depth)
        mechanism = MarkovQuiltMechanism(
            [net], epsilon=epsilon, max_radius=max_radius
        )
        start = time.perf_counter()
        sigma = mechanism.sigma_max()
        seconds = time.perf_counter() - start
        table.add_row(
            str(depth),
            [
                len(net.nodes),
                net.joint_size(),
                "yes" if net.joint_size() <= MAX_JOINT_SIZE else "NO",
                sigma,
                seconds,
            ],
        )
    return table


def chain_parity(length: int = 24, epsilon: float = 2.0) -> tuple[float, float]:
    """``(general sigma, Algorithm 3 sigma)`` on a beyond-cap path graph.

    Both search the full Lemma 4.6 quilt set, so the values must agree to
    float association — the runtime cross-check that the engine kernels
    compute the same mechanism the chain specialization does.
    """
    net = DiscreteBayesianNetwork.chain(CHAIN_INITIAL, CHAIN_TRANSITION, length)
    quilt_sets = {node: net.chain_quilts(node) for node in net.nodes}
    general = MarkovQuiltMechanism([net], epsilon=epsilon, quilt_sets=quilt_sets)
    chain = MarkovChain(CHAIN_INITIAL, CHAIN_TRANSITION)
    exact = MQMExact(FiniteChainFamily([chain]), epsilon, max_window=length)
    return float(general.sigma_max()), float(exact.sigma_max(length))


def main() -> None:
    table = run()
    print(table.render())
    general, exact = chain_parity()
    agree = np.isclose(general, exact, rtol=1e-9)
    print(
        f"\nPath-graph parity (T=24, joint 2^24 > cap): Algorithm 2 sigma = "
        f"{general:.6f}, Algorithm 3 sigma = {exact:.6f} "
        f"({'agree' if agree else 'MISMATCH'})"
    )
    if not agree:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
