"""Experiment harnesses, one module per paper artifact:

* :mod:`repro.experiments.fig4_synthetic` — Figure 4 upper row (E1)
* :mod:`repro.experiments.fig4_activity` — Figure 4 lower row (E2)
* :mod:`repro.experiments.table1_activity` — Table 1 (E3)
* :mod:`repro.experiments.table2_runtime` — Table 2 (E4)
* :mod:`repro.experiments.table3_power` — Table 3 (E5)
* :mod:`repro.experiments.section3_flu` — the Section 3.1 worked example (E6)
* :mod:`repro.experiments.section44_running_example` — Section 4.4 (E7/E8)
* :mod:`repro.experiments.general_networks` — Algorithm 2 past the old
  enumeration cap via the variable-elimination engine (E9)

Every module exposes ``run(...)`` returning report objects and a ``main()``
that prints them next to the paper's reported values; all are runnable via
``python -m repro.experiments.<name>``.
"""
