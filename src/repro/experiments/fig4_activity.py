"""E2 — Figure 4, lower row: private aggregate activity histograms.

For each cohort the experiment publishes the pooled relative-frequency
histogram over the four activities at eps = 1 under GroupDP, MQMApprox and
MQMExact, next to the exact histogram.  The paper's qualitative claims:

* cohort activity patterns (cyclists most active, overweight women most
  sedentary) are visible through the MQM releases;
* GroupDP noise can wash the patterns out;
* GK16 does not apply (spectral norm >= 1 for these sticky chains).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.baselines.gk16 import GK16Mechanism
from repro.baselines.group_dp import GroupDPMechanism
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import RelativeFrequencyHistogram
from repro.data.activity import ACTIVITY_STATES, generate_study
from repro.data.datasets import StudyGroup
from repro.data.estimation import empirical_chain
from repro.distributions.chain_family import FiniteChainFamily
from repro.experiments.config import FULL, ActivityConfig
from repro.utils.rngtools import resolve_rng


def build_mechanisms(group: StudyGroup, config: ActivityConfig):
    """The singleton-Theta mechanisms for one cohort (the paper's setup:
    P from the whole group's data, q its stationary distribution)."""
    chain = empirical_chain(group, smoothing=config.smoothing)
    family = FiniteChainFamily.singleton(chain)
    approx = MQMApprox(family, config.epsilon)
    pooled = group.pooled_dataset()
    window = approx.optimal_quilt_extent(pooled.longest_segment) or 64
    exact = MQMExact(family, config.epsilon, max_window=window)
    return chain, family, approx, exact


def run(config: ActivityConfig = FULL.activity) -> dict[str, Table]:
    """One table per cohort: mean private histogram per mechanism."""
    rng = resolve_rng(config.seed)
    groups = generate_study(rng, scale=config.scale)
    tables: dict[str, Table] = {}
    for group in groups:
        pooled = group.pooled_dataset()
        query = RelativeFrequencyHistogram(group.n_states, pooled.n_observations)
        exact_hist = query(pooled.concatenated)
        chain, family, approx, exact = build_mechanisms(group, config)
        gk16 = GK16Mechanism(family, config.epsilon)
        rows: dict[str, np.ndarray | None] = {"Exact": exact_hist}
        for name, mech in [("GroupDP", GroupDPMechanism(config.epsilon)),
                           ("MQMApprox", approx), ("MQMExact", exact)]:
            released = np.zeros_like(exact_hist)
            for _ in range(config.n_trials):
                released += np.asarray(mech.release(pooled, query, rng).value)
            rows[name] = released / config.n_trials
        rows["GK16"] = None if not gk16.is_applicable(pooled.longest_segment) else np.zeros(4)
        table = Table(
            f"Figure 4 (lower) — {group.name} aggregate histogram, "
            f"eps={config.epsilon:g}, {config.n_trials} trials "
            f"(GK16 {'N/A' if rows['GK16'] is None else 'applies'})",
            ["mechanism", *ACTIVITY_STATES],
        )
        for name in ("Exact", "GroupDP", "MQMApprox", "MQMExact"):
            table.add_row(name, list(np.asarray(rows[name])))
        tables[group.name] = table
    return tables


def main(config: ActivityConfig = FULL.activity) -> None:
    """Print the per-cohort histogram tables."""
    for table in run(config).values():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
