"""E10 — structured-graph scenarios: dedicated quilt generators vs shells.

The scenario library (:mod:`repro.distributions.structured`) pairs each
structured topology — contagion grids, hub-and-spoke stars, independent
household blocks à la the composition settings of Bai et al. — with a quilt
generator that exploits its shape.  This experiment calibrates Algorithm 2
twice per family, once with the dedicated generator and once with the
default symmetric distance shells, and reports the noise multipliers side
by side.  Because every structured generator merges the shells into its
candidate set, ``sigma_max`` (structured) can never exceed the baseline;
``main`` enforces exactly that and exits non-zero on a violation.

Each family runs at the privacy level where its structure pays: grids at a
moderate epsilon where asymmetric row/column bands beat diamond shells,
hub-and-spoke in the weak-hub/strong-spoke regime where the hub is a cheap
one-node separator, and household blocks at a tight epsilon where the
disconnection dividend (the empty separator) is worth a ~2x noise
reduction.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.analysis.reporting import Table
from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.distributions.structured import (
    StructuredScenario,
    grid_scenario,
    household_blocks_scenario,
    hub_and_spoke_scenario,
)


def default_families(
    quick: bool = False,
) -> tuple[tuple[StructuredScenario, float], ...]:
    """``(scenario, epsilon)`` pairs — one per structured family.

    ``quick`` shrinks every family to smoke-test size (used by the
    benchmarks-smoke CI lane through ``benchmarks/bench_structured.py``).
    """
    if quick:
        return (
            (grid_scenario(3, 3), 8.0),
            (hub_and_spoke_scenario(3, 2), 6.0),
            (household_blocks_scenario(2, 3), 2.0),
        )
    return (
        (grid_scenario(4, 4), 8.0),
        (hub_and_spoke_scenario(4, 4), 6.0),
        (household_blocks_scenario(3, 4), 2.0),
    )


def sigma_comparison(scenario: StructuredScenario, epsilon: float) -> dict:
    """Calibrate one family both ways; return the side-by-side record."""
    start = time.perf_counter()
    structured = MarkovQuiltMechanism(
        scenario.networks, epsilon, quilt_generator=scenario.quilt_generator
    )
    structured_sigma = structured.sigma_max()
    structured_seconds = time.perf_counter() - start
    start = time.perf_counter()
    baseline = MarkovQuiltMechanism(scenario.networks, epsilon)
    baseline_sigma = baseline.sigma_max()
    baseline_seconds = time.perf_counter() - start
    return {
        "family": scenario.name,
        "nodes": len(scenario.reference.nodes),
        "thetas": len(scenario.networks),
        "epsilon": epsilon,
        "structured_sigma": float(structured_sigma),
        "baseline_sigma": float(baseline_sigma),
        "noise_ratio": float(baseline_sigma / structured_sigma),
        "structured_candidates": sum(
            len(quilts) for quilts in structured.quilt_sets.values()
        ),
        "baseline_candidates": sum(
            len(quilts) for quilts in baseline.quilt_sets.values()
        ),
        "structured_seconds": structured_seconds,
        "baseline_seconds": baseline_seconds,
    }


def run(
    families: Sequence[tuple[StructuredScenario, float]] | None = None,
) -> tuple[Table, list[dict]]:
    """Per-family sigma_max comparison table plus the raw records."""
    if families is None:
        families = default_families()
    table = Table(
        "Algorithm 2: dedicated quilt generators vs distance shells",
        [
            "family",
            "nodes",
            "eps",
            "sigma (structured)",
            "sigma (shells)",
            "noise ratio",
            "candidates (s/b)",
        ],
    )
    records = []
    for scenario, epsilon in families:
        record = sigma_comparison(scenario, epsilon)
        records.append(record)
        table.add_row(
            record["family"],
            [
                record["nodes"],
                record["epsilon"],
                record["structured_sigma"],
                record["baseline_sigma"],
                record["noise_ratio"],
                f"{record['structured_candidates']}/{record['baseline_candidates']}",
            ],
        )
    return table, records


def main() -> None:
    table, records = run()
    print(table.render())
    violations = [
        r["family"] for r in records if r["structured_sigma"] > r["baseline_sigma"] + 1e-12
    ]
    improved = [r["family"] for r in records if r["noise_ratio"] > 1.0 + 1e-9]
    print(
        f"\nnever-worse invariant: {'VIOLATED for ' + ', '.join(violations) if violations else 'holds'}; "
        f"strict improvement in {len(improved)}/{len(records)} families "
        f"({', '.join(improved) if improved else 'none'})"
    )
    if violations:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
