"""E1 — Figure 4, upper row: synthetic binary chains.

For each privacy level ``eps`` in {0.2, 1, 5} and each family
``Theta = [alpha, 1 - alpha]`` the experiment reports the mean L1 error of
the frequency-of-state-1 query (1/T-Lipschitz) under GroupDP, GK16,
MQMApprox and MQMExact, averaged over random trials.  GK16 reports ``N/A``
left of the spectral-norm line (``rho >= 1``), whose position is
epsilon-independent.

The paper's qualitative findings this reproduces:

* errors of GK16 / MQMApprox / MQMExact decrease as ``alpha`` grows (the
  family narrows);
* GroupDP error is flat at ``1/eps`` (quoted as ~5, ~1, ~0.2);
* GK16 beats MQM for weakly-correlated families but blows up and then
  becomes inapplicable as correlation grows; MQM keeps working;
* MQMExact is at least as accurate as MQMApprox.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.baselines.gk16 import GK16Mechanism
from repro.baselines.group_dp import GroupDPMechanism
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import StateFrequencyQuery
from repro.data.synthetic import sample_binary_dataset
from repro.distributions.chain_family import IntervalChainFamily
from repro.exceptions import NotApplicableError
from repro.experiments.config import FULL, SyntheticConfig
from repro.paperdata import FIG4_SYNTHETIC_GROUPDP
from repro.utils.rngtools import resolve_rng

MECHANISMS = ("GroupDP", "GK16", "MQMApprox", "MQMExact")


def noise_scales(
    family: IntervalChainFamily, epsilon: float, length: int
) -> dict[str, float | None]:
    """Per-mechanism Laplace scales for the frequency query (None = N/A).

    Scales are data-independent, so they are computed once per (alpha, eps).
    """
    query = StateFrequencyQuery(1, length)
    data_stub = np.zeros(length, dtype=np.int64)
    scales: dict[str, float | None] = {}
    scales["GroupDP"] = GroupDPMechanism(epsilon).noise_scale(query, data_stub)
    gk16 = GK16Mechanism(family, epsilon, length=length)
    try:
        scales["GK16"] = gk16.noise_scale(query, data_stub)
    except NotApplicableError:
        scales["GK16"] = None
    scales["MQMApprox"] = MQMApprox(family, epsilon).noise_scale(query, data_stub)
    scales["MQMExact"] = MQMExact(family, epsilon, max_window=length).noise_scale(
        query, data_stub
    )
    return scales


def run(config: SyntheticConfig = FULL.synthetic) -> dict[float, Table]:
    """One table per epsilon: mean L1 error per mechanism and alpha."""
    rng = resolve_rng(config.seed)
    tables: dict[float, Table] = {}
    for epsilon in config.epsilons:
        errors: dict[str, list[float | None]] = {name: [] for name in MECHANISMS}
        for alpha in config.alphas:
            family = IntervalChainFamily(alpha, grid_step=config.grid_step)
            scales = noise_scales(family, epsilon, config.length)
            for name in MECHANISMS:
                scale = scales[name]
                if scale is None:
                    errors[name].append(None)
                    continue
                # The sampled data does not affect the additive error, but we
                # run the full release pipeline for a subset of trials as an
                # end-to-end check, then extend with direct noise draws.
                data, _theta = sample_binary_dataset(family, config.length, rng)
                query = StateFrequencyQuery(1, config.length)
                _ = query(data.concatenated)
                noise = rng.laplace(0.0, scale, size=config.n_trials)
                errors[name].append(float(np.abs(noise).mean()))
        table = Table(
            f"Figure 4 (upper) — L1 error of frequency query, eps={epsilon:g} "
            f"(paper GroupDP ~{FIG4_SYNTHETIC_GROUPDP.get(epsilon, float('nan')):g})",
            ["mechanism", *[f"a={a:g}" for a in config.alphas]],
        )
        for name in MECHANISMS:
            table.add_row(name, errors[name])
        tables[epsilon] = table
    return tables


def gk16_cutoff(config: SyntheticConfig = FULL.synthetic) -> float | None:
    """The smallest alpha (on the sweep grid) where GK16 applies — the
    dashed vertical line of Figure 4."""
    for alpha in sorted(config.alphas):
        family = IntervalChainFamily(alpha, grid_step=config.grid_step)
        if GK16Mechanism(family, 1.0, length=config.length).is_applicable():
            return alpha
    return None


def main(config: SyntheticConfig = FULL.synthetic) -> None:
    """Print the three error tables plus the GK16 applicability line."""
    for epsilon, table in run(config).items():
        print(table.render())
        print()
    cutoff = gk16_cutoff(config)
    if cutoff is None:
        print("GK16 never applies on this sweep")
    else:
        print(f"GK16 applies for alpha >= {cutoff:g} (dashed line of Figure 4)")


if __name__ == "__main__":
    main()
