"""E7/E8 — the Section 4.3 and 4.4 worked examples.

Reproduces, number for number:

* the T=3 composition example (quilt influences log 6 / log 6 / log 36 and
  scores 0.3 / 0.2437 / 0.2437 / 0.1558, active quilt {X1, X3});
* the T=100 running example (sigma = 13.0219 under theta_1 via quilt
  {X3, X13} at X8, and 10.6402 under theta_2 via {X10} at X6; pi_min = 0.2,
  eigengap of P P* = 0.75 for both thetas).
"""

from __future__ import annotations


from repro.analysis.reporting import Table
from repro.core.mqm_chain import MQMApprox, MQMExact, chain_max_influence
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.paperdata import COMPOSITION_EXAMPLE, RUNNING_EXAMPLE


def composition_example() -> Table:
    """The T=3, eps=10 quilt-scoring walkthrough of Section 4.3."""
    chain = MarkovChain(COMPOSITION_EXAMPLE["initial"], COMPOSITION_EXAMPLE["transition"])
    epsilon = COMPOSITION_EXAMPLE["epsilon"]
    quilts = {
        "trivial (X_N = all)": (None, None, 3),
        "{X1}": (1, None, 2),
        "{X3}": (None, 1, 2),
        "{X1, X3}": (1, 1, 1),
    }
    table = Table(
        "Section 4.3 example — quilts for X2 (T=3, eps=10)",
        ["quilt", "max-influence", "card(X_N)", "score", "paper score"],
    )
    paper_scores = COMPOSITION_EXAMPLE["scores"]
    paper_keys = {"trivial (X_N = all)": "trivial", "{X1}": "left", "{X3}": "right", "{X1, X3}": "both"}
    for name, (a, b, card) in quilts.items():
        influence = chain_max_influence(chain, 1, a, b)
        score = card / (epsilon - influence)
        table.add_row(name, [influence, card, score, paper_scores[paper_keys[name]]])
    return table


def running_example() -> Table:
    """The T=100 sigma computation of Section 4.4."""
    theta1 = MarkovChain(RUNNING_EXAMPLE["theta1"]["initial"], RUNNING_EXAMPLE["theta1"]["transition"])
    theta2 = MarkovChain(RUNNING_EXAMPLE["theta2"]["initial"], RUNNING_EXAMPLE["theta2"]["transition"])
    epsilon = RUNNING_EXAMPLE["epsilon"]
    table = Table(
        "Section 4.4 running example (T=100, eps=1)",
        ["quantity", "measured", "paper"],
    )
    sigma1 = MQMExact(
        FiniteChainFamily([theta1]), epsilon, max_window=100, restrict_support=False
    ).sigma_max(100)
    sigma2 = MQMExact(FiniteChainFamily([theta2]), epsilon, max_window=100).sigma_max(100)
    table.add_row("sigma(theta1), literal Eq. (5)", [sigma1, RUNNING_EXAMPLE["sigma_theta1"]])
    table.add_row("sigma(theta2)", [sigma2, RUNNING_EXAMPLE["sigma_theta2"]])
    tight1 = MQMExact(FiniteChainFamily([theta1]), epsilon, max_window=100).sigma_max(100)
    table.add_row("sigma(theta1), support-restricted Def. 4.1", [tight1, None])
    family = FiniteChainFamily([theta1, theta2])
    table.add_row("pi_min(Theta)", [family.pi_min(), RUNNING_EXAMPLE["pi_min"]])
    gap = min(chain.eigengap(reversible=False) for chain in family.chains())
    table.add_row("eigengap of P P*", [gap, RUNNING_EXAMPLE["eigengap_general"]])
    approx = MQMApprox(family, epsilon, reversible=False)
    table.add_row("MQMApprox sigma (upper bound)", [approx.sigma_max(100), None])
    quilt_influence = chain_max_influence(theta1, 7, 5, 5)
    table.add_row("e({X3,X13} | X8) under theta1", [quilt_influence, None])
    table.add_row("score of {X3,X13} for X8", [9 / (epsilon - quilt_influence), RUNNING_EXAMPLE["sigma_theta1"]])
    return table


def run() -> tuple[Table, Table]:
    """Both worked-example tables."""
    return composition_example(), running_example()


def main() -> None:
    """Print both tables."""
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
