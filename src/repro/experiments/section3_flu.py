"""E6 — the Section 3.1 worked flu example.

A clique of four people with a symmetric infected-count law.  The
Wasserstein Mechanism calibrates to W = 2 while group differential privacy
needs sensitivity 4 — the concrete "half the noise" example the paper uses
to motivate Pufferfish.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.core.framework import Secret, entrywise_instantiation
from repro.core.models import FluCliqueModel
from repro.core.queries import CountQuery
from repro.core.wasserstein import (
    WassersteinMechanism,
    group_sensitivity,
    wasserstein_bound,
)
from repro.paperdata import FLU_EXAMPLE
from repro.utils.rngtools import resolve_rng


def run(epsilon: float = 1.0, n_trials: int = 2000, seed: int = 3) -> Table:
    """Compare Wasserstein-mechanism and GroupDP noise on the flu example."""
    rng = resolve_rng(seed)
    model = FluCliqueModel([4], [FLU_EXAMPLE["count_distribution"]])
    instantiation = entrywise_instantiation(4, 2, [model])
    query = CountQuery()
    w_bound = wasserstein_bound(instantiation, query)
    sensitivity = group_sensitivity(query, 2, 4, [[0, 1, 2, 3]])
    mech = WassersteinMechanism(instantiation, epsilon)
    data = np.array([0, 1, 1, 0])
    errors = [
        abs(mech.release(data, query, rng).value - query(data)) for _ in range(n_trials)
    ]
    group_noise = rng.laplace(0.0, sensitivity / epsilon, size=n_trials)
    table = Table(
        f"Section 3.1 flu example (eps={epsilon:g}, {n_trials} trials)",
        ["quantity", "value"],
    )
    table.add_row("Wasserstein bound W (paper: 2)", [w_bound])
    table.add_row("GroupDP sensitivity (paper: 4)", [sensitivity])
    table.add_row("Wasserstein mean |error|", [float(np.mean(errors))])
    table.add_row("GroupDP mean |error|", [float(np.abs(group_noise).mean())])
    table.add_row("P(flu | released, posterior check)", [model.secret_probability(Secret(0, 1))])
    return table


def main() -> None:
    """Print the flu-example comparison."""
    print(run().render())


if __name__ == "__main__":
    main()
