"""E4 — Table 2: running time of the noise-scale computation.

The paper times "an optimized algorithm that calculates the scale parameter
of the Laplace noise" for GK16, MQMApprox and MQMExact on: the synthetic
setting (averaged over transition matrices on a grid, matching the paper's
``p0, p1 in {0.1, 0.11, ..., 0.9}``), the three activity cohorts, and the
power dataset.

Absolute seconds differ from the paper's 2017 desktop (and our tables are
vectorized differently), but the two orderings the paper highlights hold:
MQMApprox is orders of magnitude faster than MQMExact, and MQMExact's cost
grows with the state space (power's 51 states dominate).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import Table
from repro.baselines.gk16 import GK16Mechanism
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import RelativeFrequencyHistogram, StateFrequencyQuery
from repro.data.activity import generate_study
from repro.data.estimation import empirical_chain
from repro.data.power import generate_power_dataset
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import NotApplicableError
from repro.experiments.config import FULL, ActivityConfig, PowerConfig
from repro.paperdata import TABLE2
from repro.serving.engine import PrivacyEngine
from repro.utils.rngtools import resolve_rng


def time_call(func) -> float:
    """Wall-clock seconds of one invocation."""
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def sweep_workload(
    epsilon: float = 1.0, length: int = 100, grid_points: int = 9
) -> tuple[list[MQMExact], StateFrequencyQuery, np.ndarray]:
    """The Table 2 synthetic calibration sweep as a multi-mechanism workload.

    One ``MQMExact`` per grid chain (the per-theta unit the paper times),
    plus the query and data they calibrate against.  This is the workload
    ``benchmarks/bench_parallel_calibration.py`` and ``python -m repro
    calibrate`` shard across workers.
    """
    grid = np.linspace(0.1, 0.9, grid_points)
    query = StateFrequencyQuery(1, length)
    data = np.zeros(length, dtype=np.int64)
    mechanisms = [
        MQMExact(
            FiniteChainFamily.singleton(
                MarkovChain(
                    IntervalChainFamily.stationary_for(float(p0), float(p1)),
                    IntervalChainFamily.transition_for(float(p0), float(p1)),
                )
            ),
            epsilon,
            max_window=length,
        )
        for p0 in grid
        for p1 in grid
    ]
    return mechanisms, query, data


def parallel_sweep_timings(
    workers: int | None, epsilon: float = 1.0, length: int = 100, grid_points: int = 9
) -> dict[str, float | bool | int]:
    """Serial-versus-sharded wall time for the synthetic calibration sweep.

    Runs the identical per-theta MQMExact calibrations once serially and
    once sharded across ``workers`` processes, and checks the resulting
    scales are bit-identical (they must be — see
    ``docs/architecture.md``).
    """
    from repro.parallel import ParallelCalibrator

    mechanisms, query, data = sweep_workload(epsilon, length, grid_points)
    serial_seconds = time_call(
        lambda: [m.calibrate(query, data) for m in mechanisms]
    )
    serial_scales = [m.calibrate(query, data).scale for m in mechanisms]

    fresh, query, data = sweep_workload(epsilon, length, grid_points)
    calibrator = ParallelCalibrator(max_workers=workers, min_parallel_cost=0.0)
    parallel_seconds = time_call(lambda: calibrator.calibrate_many(fresh, query, data))
    parallel_scales = [m.calibrate(query, data).scale for m in fresh]
    return {
        "workers": calibrator.max_workers,
        "n_shards": len(mechanisms),
        "serial_seconds": float(serial_seconds),
        "parallel_seconds": float(parallel_seconds),
        "speedup": float(serial_seconds / parallel_seconds),
        "bit_identical": serial_scales == parallel_scales,
    }


def synthetic_timings(
    epsilon: float = 1.0, length: int = 100, grid_points: int = 9
) -> dict[str, float | None]:
    """Average per-theta scale-computation time over a (p0, p1) grid."""
    grid = np.linspace(0.1, 0.9, grid_points)
    query = StateFrequencyQuery(1, length)
    data = np.zeros(length, dtype=np.int64)
    times: dict[str, list[float]] = {"GK16": [], "MQMApprox": [], "MQMExact": []}
    for p0 in grid:
        for p1 in grid:
            chain = FiniteChainFamily.singleton(
                MarkovChain(
                    IntervalChainFamily.stationary_for(float(p0), float(p1)),
                    IntervalChainFamily.transition_for(float(p0), float(p1)),
                )
            )
            gk16 = GK16Mechanism(chain, epsilon, length=length)
            try:
                times["GK16"].append(time_call(lambda: gk16.noise_scale(query, data)))
            except NotApplicableError:
                pass
            try:
                approx = MQMApprox(chain, epsilon)
                times["MQMApprox"].append(
                    time_call(lambda: approx.noise_scale(query, data))
                )
            except NotApplicableError:
                pass
            exact = MQMExact(chain, epsilon, max_window=length)
            times["MQMExact"].append(time_call(lambda: exact.noise_scale(query, data)))
    return {
        name: (float(np.mean(values)) if values else None)
        for name, values in times.items()
    }


def dataset_timings(
    family,
    dataset,
    epsilon: float = 1.0,
    *,
    include_warm: bool = False,
    workers: int | None = None,
) -> dict[str, float | None]:
    """Scale-computation time for one estimated-chain dataset.

    Timings go through a cold :class:`~repro.serving.PrivacyEngine` per
    mechanism — the cost measured is one cache-missing calibration, i.e. the
    quantity the paper's Table 2 reports.  With ``include_warm`` a second
    MQMExact engine sharing the first's cache is timed as
    ``MQMExact(warm)``, showing what repeat traffic actually pays.  With
    ``workers`` a third, cold engine is timed as ``MQMExact(parallel)`` —
    the same calibration sharded per segment length across that many worker
    processes (multi-segment datasets are where the shards exist).
    """
    query = RelativeFrequencyHistogram(dataset.n_states, dataset.n_observations)
    out: dict[str, float | None] = {}
    gk16 = PrivacyEngine(GK16Mechanism(family, epsilon))
    try:
        out["GK16"] = time_call(lambda: gk16.calibrate(query, dataset))
    except NotApplicableError:
        out["GK16"] = None
    approx = MQMApprox(family, epsilon)
    out["MQMApprox"] = time_call(lambda: PrivacyEngine(approx).calibrate(query, dataset))
    window = approx.optimal_quilt_extent(dataset.longest_segment) or 64
    exact = PrivacyEngine(MQMExact(family, epsilon, max_window=window))
    out["MQMExact"] = time_call(lambda: exact.calibrate(query, dataset))
    if include_warm:
        warm = PrivacyEngine(
            MQMExact(family, epsilon, max_window=window), cache=exact.cache
        )
        out["MQMExact(warm)"] = time_call(lambda: warm.calibrate(query, dataset))
    if workers is not None:
        sharded = PrivacyEngine(
            MQMExact(family, epsilon, max_window=window), parallel=workers
        )
        out["MQMExact(parallel)"] = time_call(lambda: sharded.calibrate(query, dataset))
    return out


def run(
    activity: ActivityConfig = FULL.activity,
    power: PowerConfig = FULL.power,
    *,
    include_power: bool = True,
    workers: int | None = None,
) -> Table:
    """Regenerate Table 2 (seconds per scale computation).

    ``workers`` adds an ``MQMExact(parallel)`` row: the same calibrations
    sharded across that many worker processes (bit-identical scales).
    """
    rng = resolve_rng(activity.seed)
    columns = ["synthetic"]
    results: dict[str, dict[str, float | None]] = {"synthetic": synthetic_timings()}
    for group in generate_study(rng, scale=activity.scale):
        chain = empirical_chain(group, smoothing=activity.smoothing)
        family = FiniteChainFamily.singleton(chain)
        results[group.name] = dataset_timings(
            family, group.pooled_dataset(), workers=workers
        )
        columns.append(group.name)
    if include_power:
        dataset, _ = generate_power_dataset(power.length, resolve_rng(power.seed))
        chain = empirical_chain(dataset, smoothing=power.smoothing)
        results["power"] = dataset_timings(
            FiniteChainFamily.singleton(chain), dataset, workers=workers
        )
        columns.append("power")
    table = Table(
        "Table 2 — seconds to compute the Laplace scale (eps=1); "
        "paper values in repro.paperdata.TABLE2",
        ["mechanism", *columns],
    )
    mechanisms = ["GK16", "MQMApprox", "MQMExact"]
    if workers is not None:
        mechanisms.append("MQMExact(parallel)")
    for mechanism in mechanisms:
        table.add_row(mechanism, [results[c].get(mechanism) for c in columns])
    return table


def main(
    activity: ActivityConfig = FULL.activity,
    power: PowerConfig = FULL.power,
    workers: int | None = None,
) -> None:
    """Print measured timings next to the paper's."""
    table = run(activity, power, workers=workers)
    print(table.render())
    print()
    paper = Table("Table 2 — paper-reported seconds", ["mechanism", *TABLE2["columns"]])
    for mechanism in ("GK16", "MQMApprox", "MQMExact"):
        paper.add_row(mechanism, TABLE2[mechanism])
    print(paper.render())


if __name__ == "__main__":
    main()
