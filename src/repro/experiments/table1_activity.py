"""E3 — Table 1: L1 errors on the activity cohorts, aggregate and individual
tasks, eps = 1.

* **Aggregate**: publish the pooled relative-frequency histogram of each
  cohort.  Mechanisms: DP (individual-level), GroupDP, GK16 (N/A for these
  sticky chains), MQMApprox, MQMExact.
* **Individual**: publish every participant's own histogram; the reported
  error is the mean L1 error over participants.  The DP baseline is not
  defined for this task (a participant *is* the database), matching the
  paper's N/A entries.

The orderings the paper reports and this experiment reproduces:
``MQMExact < MQMApprox << GroupDP`` on both tasks, ``MQM << DP`` on the
aggregate task, and GK16 inapplicable everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.analysis.runner import run_release_trials
from repro.baselines.dp import IndividualDPMechanism
from repro.baselines.gk16 import GK16Mechanism
from repro.baselines.group_dp import GroupDPMechanism
from repro.core.queries import RelativeFrequencyHistogram
from repro.data.activity import generate_study
from repro.data.datasets import StudyGroup
from repro.experiments.config import FULL, ActivityConfig
from repro.experiments.fig4_activity import build_mechanisms
from repro.paperdata import TABLE1
from repro.utils.rngtools import resolve_rng


def cohort_errors(
    group: StudyGroup, config: ActivityConfig, rng
) -> dict[str, tuple[float | None, float | None]]:
    """(aggregate, individual) mean L1 error per mechanism for one cohort."""
    pooled = group.pooled_dataset()
    agg_query = RelativeFrequencyHistogram(group.n_states, pooled.n_observations)
    chain, family, approx, exact = build_mechanisms(group, config)
    group_dp = GroupDPMechanism(config.epsilon)
    dp = IndividualDPMechanism(config.epsilon, group.participant_sizes())
    gk16_applicable = GK16Mechanism(family, config.epsilon).is_applicable(
        pooled.longest_segment
    )

    def aggregate_error(mechanism) -> float:
        return run_release_trials(mechanism, pooled, agg_query, config.n_trials, rng).mean_l1

    def individual_error(mechanism) -> float:
        errors = []
        for participant in group.participants:
            data = participant.dataset
            query = RelativeFrequencyHistogram(group.n_states, data.n_observations)
            result = run_release_trials(mechanism, data, query, config.n_trials, rng)
            errors.append(result.mean_l1)
        return float(np.mean(errors))

    results: dict[str, tuple[float | None, float | None]] = {
        "DP": (aggregate_error(dp), None),
        "GroupDP": (aggregate_error(group_dp), individual_error(group_dp)),
        "GK16": (None, None) if not gk16_applicable else (0.0, 0.0),
        "MQMApprox": (aggregate_error(approx), individual_error(approx)),
        "MQMExact": (aggregate_error(exact), individual_error(exact)),
    }
    return results


def run(config: ActivityConfig = FULL.activity) -> Table:
    """The full Table 1 (aggregate and individual columns per cohort)."""
    rng = resolve_rng(config.seed)
    groups = generate_study(rng, scale=config.scale)
    per_cohort = {g.name: cohort_errors(g, config, rng) for g in groups}
    columns = ["mechanism"]
    for group in groups:
        columns += [f"{group.name}-agg", f"{group.name}-ind"]
    table = Table(
        f"Table 1 — activity L1 errors, eps={config.epsilon:g}, "
        f"{config.n_trials} trials (paper values in repro.paperdata.TABLE1)",
        columns,
    )
    for mechanism in ("DP", "GroupDP", "GK16", "MQMApprox", "MQMExact"):
        row: list[float | None] = []
        for group in groups:
            agg, ind = per_cohort[group.name][mechanism]
            row += [agg, ind]
        table.add_row(mechanism, row)
    return table


def check_orderings(table: Table) -> list[str]:
    """Assert the paper's qualitative orderings; returns violation messages
    (empty = all hold).  Used by tests and the benchmark harness."""
    violations = []
    rows = table.to_dict()
    n_groups = (len(table.columns) - 1) // 2
    for g in range(n_groups):
        agg_idx, ind_idx = 2 * g, 2 * g + 1
        name = table.columns[1 + agg_idx].rsplit("-", 1)[0]
        exact_agg = rows["MQMExact"][agg_idx]
        approx_agg = rows["MQMApprox"][agg_idx]
        if not exact_agg <= approx_agg:
            violations.append(f"{name}: MQMExact agg > MQMApprox agg")
        if not approx_agg < rows["GroupDP"][agg_idx]:
            violations.append(f"{name}: MQMApprox agg >= GroupDP agg")
        if not approx_agg < rows["DP"][agg_idx]:
            violations.append(f"{name}: MQMApprox agg >= DP agg")
        if not rows["MQMExact"][ind_idx] <= rows["MQMApprox"][ind_idx]:
            violations.append(f"{name}: MQMExact ind > MQMApprox ind")
        if not rows["MQMApprox"][ind_idx] < rows["GroupDP"][ind_idx]:
            violations.append(f"{name}: MQMApprox ind >= GroupDP ind")
        if rows["GK16"][agg_idx] is not None:
            violations.append(f"{name}: GK16 unexpectedly applicable")
    return violations


def main(config: ActivityConfig = FULL.activity) -> None:
    """Print Table 1 with the paper's values for comparison."""
    table = run(config)
    print(table.render())
    print()
    paper = Table("Table 1 — paper-reported values", ["mechanism", *TABLE1["columns"]])
    for mechanism in ("DP", "GroupDP", "GK16", "MQMApprox", "MQMExact"):
        paper.add_row(mechanism, TABLE1[mechanism])
    print(paper.render())
    violations = check_orderings(table)
    print()
    if violations:
        print("ORDERING VIOLATIONS:", "; ".join(violations))
    else:
        print("All paper orderings hold (MQMExact <= MQMApprox << GroupDP, MQM << DP, GK16 N/A).")


if __name__ == "__main__":
    main()
