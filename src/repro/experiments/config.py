"""Shared experiment configuration.

``FULL`` mirrors the paper's parameters; ``FAST`` is a reduced profile used
by the benchmark suite so that every table and figure can be regenerated in
minutes on a laptop.  Errors scale predictably with the reduced parameters
(noise scales are data-size dependent only through segment lengths), so the
FAST profile preserves every qualitative conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SyntheticConfig:
    """Figure 4 upper row parameters."""

    length: int = 100
    alphas: tuple[float, ...] = (0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4)
    epsilons: tuple[float, ...] = (0.2, 1.0, 5.0)
    n_trials: int = 500
    grid_step: float = 0.05
    seed: int = 7


@dataclass(frozen=True)
class ActivityConfig:
    """Figure 4 lower row / Tables 1-2 parameters."""

    epsilon: float = 1.0
    n_trials: int = 20
    scale: float = 1.0  # cohort size multiplier (FAST uses < 1)
    smoothing: float = 0.5
    seed: int = 11


@dataclass(frozen=True)
class PowerConfig:
    """Table 3 parameters."""

    length: int = 1_000_000
    epsilons: tuple[float, ...] = (0.2, 1.0, 5.0)
    n_trials: int = 20
    smoothing: float = 0.05
    seed: int = 13


@dataclass(frozen=True)
class Profile:
    """A bundle of configurations."""

    name: str
    synthetic: SyntheticConfig = field(default_factory=SyntheticConfig)
    activity: ActivityConfig = field(default_factory=ActivityConfig)
    power: PowerConfig = field(default_factory=PowerConfig)


FULL = Profile(name="full")

FAST = Profile(
    name="fast",
    synthetic=SyntheticConfig(
        alphas=(0.1, 0.2, 0.3, 0.4), n_trials=200, grid_step=0.1
    ),
    activity=ActivityConfig(n_trials=10, scale=0.25),
    power=PowerConfig(length=120_000, n_trials=10),
)
