"""E5 — Table 3: electricity consumption.

A single household's power draw (51 discretized states, ~1M minutes, one
unbroken chain) is published as a relative-frequency histogram under
GroupDP, GK16, MQMApprox and MQMExact for eps in {0.2, 1, 5}.

The paper's qualitative findings this reproduces:

* GroupDP is catastrophic (the group is the entire series, so the error is
  ``2 * n_states / eps``, hundreds at eps=0.2);
* GK16 does not apply (spectral norm >= 1);
* MQM errors are orders of magnitude smaller and scale like ``1/eps``, with
  MQMExact below MQMApprox.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.analysis.runner import run_release_trials
from repro.baselines.gk16 import GK16Mechanism
from repro.baselines.group_dp import GroupDPMechanism
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import RelativeFrequencyHistogram
from repro.data.estimation import empirical_chain
from repro.data.power import generate_power_dataset
from repro.distributions.chain_family import FiniteChainFamily
from repro.experiments.config import FULL, PowerConfig
from repro.paperdata import TABLE3
from repro.utils.rngtools import resolve_rng


def run(config: PowerConfig = FULL.power) -> Table:
    """Regenerate Table 3 (L1 error per mechanism and epsilon)."""
    rng = resolve_rng(config.seed)
    dataset, _generator = generate_power_dataset(config.length, rng)
    chain = empirical_chain(dataset, smoothing=config.smoothing)
    family = FiniteChainFamily.singleton(chain)
    query = RelativeFrequencyHistogram(dataset.n_states, dataset.n_observations)
    table = Table(
        f"Table 3 — power L1 errors, T={dataset.n_observations}, "
        f"{config.n_trials} trials (paper values in repro.paperdata.TABLE3)",
        ["mechanism", *[f"eps={e:g}" for e in config.epsilons]],
    )
    rows: dict[str, list[float | None]] = {
        "GroupDP": [],
        "GK16": [],
        "MQMApprox": [],
        "MQMExact": [],
    }
    for epsilon in config.epsilons:
        rows["GroupDP"].append(
            run_release_trials(
                GroupDPMechanism(epsilon), dataset, query, config.n_trials, rng
            ).mean_l1
        )
        gk16 = GK16Mechanism(family, epsilon)
        if gk16.is_applicable(dataset.longest_segment):
            rows["GK16"].append(
                run_release_trials(gk16, dataset, query, config.n_trials, rng).mean_l1
            )
        else:
            rows["GK16"].append(None)
        approx = MQMApprox(family, epsilon)
        rows["MQMApprox"].append(
            run_release_trials(approx, dataset, query, config.n_trials, rng).mean_l1
        )
        window = approx.optimal_quilt_extent(dataset.longest_segment) or 64
        exact = MQMExact(family, epsilon, max_window=window)
        rows["MQMExact"].append(
            run_release_trials(exact, dataset, query, config.n_trials, rng).mean_l1
        )
    for mechanism, values in rows.items():
        table.add_row(mechanism, values)
    return table


def check_orderings(table: Table) -> list[str]:
    """The paper's qualitative claims; returns violation messages."""
    rows = table.to_dict()
    violations = []
    n = len(table.columns) - 1
    for j in range(n):
        if rows["GK16"][j] is not None:
            violations.append(f"col {j}: GK16 unexpectedly applicable")
        if not rows["MQMExact"][j] <= rows["MQMApprox"][j]:
            violations.append(f"col {j}: MQMExact > MQMApprox")
        if not rows["MQMApprox"][j] < rows["GroupDP"][j] / 10:
            violations.append(f"col {j}: MQM not >=10x better than GroupDP")
    for j in range(n - 1):
        if not rows["MQMApprox"][j] > rows["MQMApprox"][j + 1]:
            violations.append(f"MQMApprox not decreasing in eps at col {j}")
    return violations


def main(config: PowerConfig = FULL.power) -> None:
    """Print Table 3 with the paper's values for comparison."""
    table = run(config)
    print(table.render())
    print()
    paper = Table(
        "Table 3 — paper-reported values (T=1,000,000)",
        ["mechanism", *[f"eps={e:g}" for e in TABLE3["epsilons"]]],
    )
    for mechanism in ("GroupDP", "GK16", "MQMApprox", "MQMExact"):
        paper.add_row(mechanism, TABLE3[mechanism])
    print(paper.render())
    violations = check_orderings(table)
    print()
    if violations:
        print("ORDERING VIOLATIONS:", "; ".join(violations))
    else:
        print(
            "All paper orderings hold (GK16 N/A, MQMExact <= MQMApprox << GroupDP, "
            "errors fall with eps)."
        )


if __name__ == "__main__":
    main()
