"""Distances and divergences between finite discrete distributions.

Implements the three quantities the paper leans on:

* :func:`max_divergence` — Definition 2.3, the Renyi divergence of order
  infinity; used by the robustness theorem (Theorem 2.4) and by the
  max-influence of the Markov Quilt Mechanism.
* :func:`w_infinity` — Definition 3.1, the infinity-Wasserstein distance;
  the noise calibrator of the Wasserstein Mechanism (Algorithm 1).
* :func:`total_variation` — used by the GK16 baseline's Dobrushin-style
  influence coefficients.

For distributions on the real line the optimal W-infinity coupling is the
monotone (quantile) coupling, so the distance equals
``sup_u |F_mu^{-1}(u) - F_nu^{-1}(u)|`` and can be computed exactly in
O(n log n) by walking the merged CDF breakpoints.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.discrete import SUPPORT_ATOL, DiscreteDistribution
from repro.exceptions import ValidationError


def _aligned_masses(
    p: DiscreteDistribution, q: DiscreteDistribution
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (atoms, p-masses, q-masses) on the union support."""
    atoms = np.union1d(p.atoms, q.atoms)
    p_mass = np.zeros_like(atoms)
    q_mass = np.zeros_like(atoms)
    p_mass[np.searchsorted(atoms, p.atoms)] = p.probs
    q_mass[np.searchsorted(atoms, q.atoms)] = q.probs
    return atoms, p_mass, q_mass


def total_variation(p: DiscreteDistribution, q: DiscreteDistribution) -> float:
    """Total-variation distance ``sup_A |P(A) - Q(A)|`` in [0, 1]."""
    _, p_mass, q_mass = _aligned_masses(p, q)
    # Clip float round-off (sums of ~eps-sized errors can exceed 1 by 1e-16).
    return float(min(1.0, 0.5 * np.abs(p_mass - q_mass).sum()))


def kl_divergence(p: DiscreteDistribution, q: DiscreteDistribution) -> float:
    """Kullback-Leibler divergence ``KL(p || q)``; ``inf`` if p is not
    absolutely continuous with respect to q."""
    _, p_mass, q_mass = _aligned_masses(p, q)
    on_p = p_mass > SUPPORT_ATOL
    if np.any(q_mass[on_p] <= SUPPORT_ATOL):
        return float("inf")
    ratio = p_mass[on_p] / q_mass[on_p]
    return float(np.dot(p_mass[on_p], np.log(ratio)))


def max_divergence(p: DiscreteDistribution, q: DiscreteDistribution) -> float:
    """Max-divergence ``D_inf(p || q) = sup_{x in supp(p)} log p(x)/q(x)``.

    Definition 2.3 of the paper.  Returns ``inf`` when some atom of ``p`` has
    zero mass under ``q``.
    """
    _, p_mass, q_mass = _aligned_masses(p, q)
    on_p = p_mass > SUPPORT_ATOL
    if np.any(q_mass[on_p] <= SUPPORT_ATOL):
        return float("inf")
    return float(np.max(np.log(p_mass[on_p] / q_mass[on_p])))


def symmetric_max_divergence(p: DiscreteDistribution, q: DiscreteDistribution) -> float:
    """``max(D_inf(p || q), D_inf(q || p))`` — the symmetrized form used in
    the close-adversary bound (Theorem 2.4)."""
    return max(max_divergence(p, q), max_divergence(q, p))


def w_infinity(mu: DiscreteDistribution, nu: DiscreteDistribution) -> float:
    """Exact infinity-Wasserstein distance between distributions on ℝ.

    Definition 3.1:  ``W_inf(mu, nu) = inf_gamma max_{(x,y) in supp(gamma)}
    |x - y|`` over couplings ``gamma`` of ``(mu, nu)``.  On the real line the
    infimum is attained by the monotone coupling, giving
    ``sup_{u in (0,1)} |F_mu^{-1}(u) - F_nu^{-1}(u)|``.

    The quantile functions are step functions whose breakpoints are the
    cumulative masses of each distribution, so the supremum is attained on
    one of the finitely many merged segments; we evaluate at each segment's
    midpoint for numerical robustness.
    """
    mu_clean = DiscreteDistribution.from_pairs(zip(mu.atoms, mu.probs))
    nu_clean = DiscreteDistribution.from_pairs(zip(nu.atoms, nu.probs))
    breaks = np.union1d(np.cumsum(mu_clean.probs), np.cumsum(nu_clean.probs))
    breaks = np.clip(breaks, 0.0, 1.0)
    edges = np.concatenate([[0.0], breaks])
    widths = np.diff(edges)
    positive = widths > SUPPORT_ATOL
    midpoints = (edges[:-1] + edges[1:])[positive] / 2.0
    mu_q = np.atleast_1d(mu_clean.quantile(midpoints))
    nu_q = np.atleast_1d(nu_clean.quantile(midpoints))
    return float(np.max(np.abs(mu_q - nu_q)))


def w_infinity_pooled(
    atoms: np.ndarray, p_mass: np.ndarray, q_mass: np.ndarray
) -> float:
    """:func:`w_infinity` for two distributions given on one shared support.

    ``atoms`` is the sorted pooled support; ``p_mass``/``q_mass`` are
    matching probability vectors (zero entries allowed — an atom one
    distribution never hits simply carries no mass).  This is the
    all-NumPy hot path of Algorithm 1: the merged-CDF breakpoints come
    straight from the two cumulative sums and the quantile functions are
    two ``searchsorted`` calls, with no per-secret
    :class:`~repro.distributions.discrete.DiscreteDistribution`
    construction.  Zero-mass atoms never shift a quantile: their cumulative
    value ties the preceding positive atom, and the left-sided search
    resolves the tie to that atom.
    """
    atoms = np.asarray(atoms, dtype=float)
    p_cdf = np.cumsum(np.asarray(p_mass, dtype=float))
    q_cdf = np.cumsum(np.asarray(q_mass, dtype=float))
    p_cdf[-1] = 1.0
    q_cdf[-1] = 1.0
    breaks = np.clip(np.union1d(p_cdf, q_cdf), 0.0, 1.0)
    edges = np.concatenate([[0.0], breaks])
    widths = np.diff(edges)
    midpoints = (edges[:-1] + edges[1:])[widths > SUPPORT_ATOL] / 2.0
    last = atoms.size - 1
    p_q = atoms[np.minimum(np.searchsorted(p_cdf, midpoints, side="left"), last)]
    q_q = atoms[np.minimum(np.searchsorted(q_cdf, midpoints, side="left"), last)]
    return float(np.max(np.abs(p_q - q_q)))


def renyi_divergence(
    p: DiscreteDistribution, q: DiscreteDistribution, alpha: float
) -> float:
    """Renyi divergence of order ``alpha`` (> 0, != 1).

    Included because the paper situates max-divergence within the Renyi
    family; ``alpha -> inf`` recovers :func:`max_divergence` and
    ``alpha -> 1`` recovers :func:`kl_divergence`.
    """
    if alpha <= 0:
        raise ValidationError(f"Renyi order must be positive, got {alpha!r}")
    if alpha == 1.0:
        return kl_divergence(p, q)
    if np.isinf(alpha):
        return max_divergence(p, q)
    _, p_mass, q_mass = _aligned_masses(p, q)
    on_p = p_mass > SUPPORT_ATOL
    if alpha > 1 and np.any(q_mass[on_p] <= SUPPORT_ATOL):
        return float("inf")
    both = on_p & (q_mass > SUPPORT_ATOL)
    total = float(np.sum(p_mass[both] ** alpha * q_mass[both] ** (1.0 - alpha)))
    if total <= 0:
        return float("inf")
    return float(np.log(total) / (alpha - 1.0))
