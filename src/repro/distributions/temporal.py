"""Temporal scenario networks: editable BNs with incremental recalibration.

The paper's own workloads (activity traces, power readings) are
time-evolving correlated streams, but every scenario elsewhere in the repo
is a static graph.  :class:`TemporalNetwork` wraps a
:class:`~repro.distributions.bayesnet.DiscreteBayesianNetwork` with an
**edit log** — ``append_node`` (the stream grows), ``update_cpd`` (a
re-estimated model), ``retire_window`` (the oldest window is marginalized
out exactly) — and a **windowed clock** that is purely logical: callers
advance it explicitly, so fingerprints and replay stay deterministic (no
wall clocks, per lint rule R4).

Incremental recalibration
-------------------------
A :class:`~repro.core.markov_quilt.MarkovQuiltMechanism` sigma for node
``i`` is determined by (a) the candidate quilt list of ``i`` and (b) the
conditionals ``P(X_Q | X_i)`` of every candidate — and a conditional over
``S`` is a function of the CPDs of ``ancestral_closure(S)`` *only*.  After
an edit with dirty node set ``D``, a previously computed ``(sigma, quilt)``
for node ``i`` therefore survives exactly when:

1. the candidate quilt list of ``i`` on the edited network is identical
   (ordered, including the nearby/remote partitions) to the one it was
   computed under, and
2. for every candidate ``q`` of ``i``,
   ``ancestral_closure(q.quilt | {i})`` avoids ``D``.

Because the inference engine prunes barren nodes (factors outside the
query's ancestral closure never enter the contraction), a surviving sigma
is **bit-identical** to what a from-scratch calibration of the edited
network would compute — not merely close.  :meth:`TemporalNetwork.
calibrated_mechanism` applies the rule: survivors are copied into the new
mechanism's warm cache and only the invalidated nodes re-run the quilt
search.  On the structured families (grid/hub/blocks) a single-node CPD
edit dirties one small ancestral neighborhood, so a k-node edit is a cache
hit for every untouched node instead of a full recalibration.

Window retirement
-----------------
``retire_window`` removes the oldest live window *exactly*: with retired
set ``R`` (required to be ancestrally closed) and frontier
``F = {live nodes with a retired parent}``, the live marginal factorizes as
``P(live) = [prod of unchanged CPDs outside F] * g(F | W)`` where ``W`` is
the set of live non-frontier parents of ``F`` and ``g`` is the retired
block's contribution.  ``g`` is chained over ``F`` in topological order and
each factor is computed by exact inference on an auxiliary network (``W``
as uniform roots, then ``R`` and ``F`` with their original CPDs) — so the
rebuilt network's joint equals the old network's live marginal, and the
stream can run forever on a bounded node count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.distributions.bayesnet import DiscreteBayesianNetwork, MarkovQuilt
from repro.exceptions import ValidationError
from repro.inference import InferenceEngine, invalidate_engine

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.markov_quilt import MarkovQuiltMechanism
    from repro.distributions.structured import QuiltGenerator

#: Refuse to build a retirement conditional with more than this many cells —
#: the frontier chain's tables grow with the product of the frontier's state
#: spaces, and a silent blow-up here would stall the stream.
MAX_RETIRE_TABLE = 1 << 20


@dataclass(frozen=True)
class TemporalEdit:
    """One entry of the edit log.

    ``dirty`` is the set of node names whose CPDs this edit changed (or
    introduced, or rebuilt): the incremental-recalibration rule invalidates
    exactly the cached sigmas whose quilt closures touch a dirty node.
    """

    op: str  # "append" | "update_cpd" | "retire"
    window: int
    dirty: frozenset[str]
    retired_fingerprint: str


@dataclass(frozen=True)
class RecalibrationReport:
    """What one :meth:`TemporalNetwork.calibrated_mechanism` call did."""

    total_nodes: int
    reused_nodes: int
    recomputed_nodes: int
    edits_applied: int
    cold: bool

    @property
    def reuse_fraction(self) -> float:
        """Fraction of nodes served from the previous calibration."""
        return self.reused_nodes / self.total_nodes if self.total_nodes else 0.0


@dataclass
class _CalibrationMemo:
    edit_index: int
    mechanism: "MarkovQuiltMechanism"
    closures: dict = field(default_factory=dict)


class TemporalNetwork:
    """An editable Bayesian network with windowed, logged, exact edits.

    Parameters
    ----------
    base:
        Initial network (defaults to an empty one); its nodes are assigned
        to window ``window``.
    window:
        Initial logical window index.  The clock is injected/logical —
        advance it with :meth:`advance_window`; nothing here reads wall
        time, so an identical edit sequence replays bit-identically.
    """

    def __init__(
        self, base: DiscreteBayesianNetwork | None = None, *, window: int = 0
    ) -> None:
        self._net = base if base is not None else DiscreteBayesianNetwork()
        self._window = int(window)
        self._windows: dict[str, int] = {
            name: self._window for name in self._net.nodes
        }
        self._edits: list[TemporalEdit] = []
        self._calibrations: dict[tuple, _CalibrationMemo] = {}
        self.retired_engine_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> DiscreteBayesianNetwork:
        """The current live network (treat as read-only; edit through me)."""
        return self._net

    @property
    def window(self) -> int:
        """Current logical window index."""
        return self._window

    @property
    def nodes(self) -> tuple[str, ...]:
        """Live node names in insertion (topological) order."""
        return self._net.nodes

    @property
    def edit_log(self) -> tuple[TemporalEdit, ...]:
        """Every edit applied so far, in order."""
        return tuple(self._edits)

    def window_of(self, name: str) -> int:
        """The window a live node was appended under."""
        if name not in self._windows:
            raise ValidationError(f"unknown (or retired) node {name!r}")
        return self._windows[name]

    def live_windows(self) -> tuple[int, ...]:
        """Distinct windows that still hold live nodes, ascending."""
        return tuple(sorted(set(self._windows.values())))

    def fingerprint(self) -> str:
        """Content fingerprint of the current live network."""
        return self._net.fingerprint()

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------
    def advance_window(self, steps: int = 1) -> int:
        """Advance the logical clock; future appends land in the new window."""
        if steps < 1:
            raise ValidationError(f"steps must be >= 1, got {steps}")
        self._window += int(steps)
        return self._window

    def append_node(
        self,
        name: str,
        n_states: int,
        *,
        parents: Sequence[str] = (),
        cpd,
    ) -> None:
        """Append a node to the stream under the current window."""
        retired = self._retire_live_engine()
        self._net.add_node(name, n_states, parents=parents, cpd=cpd)
        self._windows[name] = self._window
        self._edits.append(
            TemporalEdit(
                op="append",
                window=self._window,
                dirty=frozenset((name,)),
                retired_fingerprint=retired,
            )
        )

    def update_cpd(self, name: str, cpd) -> None:
        """Replace one live node's CPD (structure unchanged)."""
        retired = self._retire_live_engine()
        self._net.update_cpd(name, cpd)
        self._edits.append(
            TemporalEdit(
                op="update_cpd",
                window=self._window,
                dirty=frozenset((name,)),
                retired_fingerprint=retired,
            )
        )

    def retire_window(self) -> frozenset[str]:
        """Marginalize the oldest live window out of the network, exactly.

        Requirements (each raises :class:`ValidationError`):

        * at least two distinct live windows (the current frontier of the
          stream is never retired out from under itself),
        * the retired set is ancestrally closed — every parent of a retired
          node is retired with it,
        * the frontier conditionals stay under :data:`MAX_RETIRE_TABLE`.

        Returns the set of retired node names.  The surviving network's
        joint equals the previous network's marginal over the surviving
        nodes (see the module docstring for the factorization), so every
        downstream conditional — and therefore every quilt influence over
        live nodes — is preserved.
        """
        windows = self.live_windows()
        if len(windows) < 2:
            raise ValidationError(
                "retire_window needs at least two live windows; "
                "advance_window and append the next window first"
            )
        oldest = windows[0]
        order = self._net.nodes
        retired = frozenset(n for n in order if self._windows[n] == oldest)
        live = [n for n in order if n not in retired]
        for name in sorted(retired):
            for parent in self._net.parents(name):
                if parent not in retired:
                    raise ValidationError(
                        f"retired window {oldest} is not ancestrally closed: "
                        f"{name!r} keeps live parent {parent!r}"
                    )
        frontier = [
            n
            for n in live
            if any(p in retired for p in self._net.parents(n))
        ]
        rebuilt = self._rebuild_without(retired, live, frontier)
        retired_fp = self._retire_live_engine()
        self._net = rebuilt
        for name in sorted(retired):
            del self._windows[name]
        self._edits.append(
            TemporalEdit(
                op="retire",
                window=oldest,
                # Frontier CPDs are rebuilt (numerically re-derived), so any
                # quilt whose closure touches them must recalibrate; retired
                # names can never appear in a live closure and ride along
                # only for the log's sake.
                dirty=retired | frozenset(frontier),
                retired_fingerprint=retired_fp,
            )
        )
        return retired

    def _retire_live_engine(self) -> str:
        """Evict the registry engine pinned by the pre-edit fingerprint.

        Every edit mints a fresh content fingerprint; without eager
        invalidation an indefinite stream leaves one dead engine plan per
        edit in :func:`repro.inference.engine_for`'s LRU until churn pushes
        it out.  Eviction is always safe — an equal-content network simply
        rebuilds on next use.
        """
        fingerprint = self._net.fingerprint()
        invalidate_engine(fingerprint)
        self.retired_engine_count += 1
        return fingerprint

    def _rebuild_without(
        self,
        retired: frozenset[str],
        live: list[str],
        frontier: list[str],
    ) -> DiscreteBayesianNetwork:
        """The live-marginal network after dropping ``retired``."""
        net = self._net
        frontier_set = set(frontier)
        # Live non-frontier parents of the frontier, in insertion order.
        outside_parents: list[str] = []
        seen: set[str] = set()
        for f in frontier:
            for p in net.parents(f):
                if p not in retired and p not in frontier_set and p not in seen:
                    seen.add(p)
                    outside_parents.append(p)
        position = {name: i for i, name in enumerate(net.nodes)}
        outside_parents.sort(key=position.__getitem__)

        new_parents: dict[str, tuple[str, ...]] = {}
        new_cpds: dict[str, np.ndarray] = {}
        if frontier:
            aux = DiscreteBayesianNetwork()
            for w in outside_parents:
                k = net.n_states(w)
                aux.add_node(w, k, cpd=np.full(k, 1.0 / k))
            for name in net.nodes:
                if name in retired or name in frontier_set:
                    aux.add_node(
                        name,
                        net.n_states(name),
                        parents=net.parents(name),
                        cpd=net.cpd(name),
                    )
            # Direct construction: a throwaway network must not occupy a
            # registry slot.
            engine = InferenceEngine(aux)
            conditioning: list[str] = []
            running_outside: set[str] = set()
            for i, f in enumerate(frontier):
                for p in net.parents(f):
                    if p not in retired and p not in frontier_set:
                        running_outside.add(p)
                conditioning = sorted(
                    set(frontier[:i]) | running_outside,
                    key=position.__getitem__,
                )
                shape = [net.n_states(c) for c in conditioning]
                cells = int(np.prod(shape + [net.n_states(f)], dtype=np.int64))
                if cells > MAX_RETIRE_TABLE:
                    raise ValidationError(
                        f"retiring window would build a {cells}-cell "
                        f"conditional for frontier node {f!r} "
                        f"(> {MAX_RETIRE_TABLE}); the frontier is too wide "
                        "to marginalize exactly"
                    )
                joint = engine.marginals_given(tuple(conditioning) + (f,), {})
                denom = joint.sum(axis=-1, keepdims=True)
                k = net.n_states(f)
                # Unreachable conditioning rows get a uniform filler — any
                # valid distribution works, the row has zero mass.
                cpd = np.where(denom > 0.0, joint / np.where(denom > 0.0, denom, 1.0), 1.0 / k)
                new_parents[f] = tuple(conditioning)
                new_cpds[f] = cpd

        rebuilt = DiscreteBayesianNetwork()
        for name in live:
            if name in frontier_set:
                rebuilt.add_node(
                    name,
                    net.n_states(name),
                    parents=new_parents[name],
                    cpd=new_cpds[name],
                )
            else:
                rebuilt.add_node(
                    name,
                    net.n_states(name),
                    parents=net.parents(name),
                    cpd=net.cpd(name),
                )
        return rebuilt

    # ------------------------------------------------------------------
    # Incremental recalibration
    # ------------------------------------------------------------------
    def calibrated_mechanism(
        self,
        epsilon: float,
        *,
        quilt_generator: "QuiltGenerator | None" = None,
        max_radius: int | None = None,
    ) -> "tuple[MarkovQuiltMechanism, RecalibrationReport]":
        """A fully calibrated mechanism for the current network.

        The first call per ``(epsilon, generator)`` runs the full quilt
        search.  Later calls rebuild the candidate sets on the edited
        network, copy every *surviving* ``(sigma, quilt)`` into the new
        mechanism (survival rule in the module docstring — bit-identical to
        a from-scratch calibration), and re-search only the invalidated
        nodes.  The returned mechanism is always fully forced
        (:meth:`~repro.core.markov_quilt.MarkovQuiltMechanism.sigma_max`
        has run).
        """
        from repro.core.markov_quilt import MarkovQuiltMechanism

        key = (float(epsilon), quilt_generator, max_radius)
        try:
            memo = self._calibrations.get(key)
        except TypeError:  # unhashable generator — no memoization
            key = None
            memo = None
        structural = memo is None or any(
            edit.op != "update_cpd" for edit in self._edits[memo.edit_index :]
        )
        if structural:
            mechanism = MarkovQuiltMechanism(
                [self._net],
                epsilon,
                quilt_generator=quilt_generator,
                max_radius=max_radius,
            )
        else:
            # Pure-CPD edits preserve the DAG, and candidate enumeration is
            # structural — d-separation reads edges and cardinalities, never
            # CPD values — so the previous candidate lists replay verbatim
            # and the O(nodes x candidates) moralization sweep is skipped.
            mechanism = MarkovQuiltMechanism(
                [self._net], epsilon, quilt_sets=memo.mechanism.quilt_sets
            )
            mechanism.quilt_generator = quilt_generator
        reused = 0
        if memo is not None:
            dirty: set[str] = set()
            for edit in self._edits[memo.edit_index :]:
                dirty.update(edit.dirty)
            previous = memo.mechanism
            for node in self.nodes:
                cached = previous._sigma_cache.get(node)
                if cached is None:
                    continue
                if mechanism.quilt_sets[node] != previous.quilt_sets.get(node):
                    continue
                if self._closures_avoid(mechanism, node, dirty):
                    mechanism._sigma_cache[node] = cached
                    reused += 1
        mechanism.sigma_max()  # force every remaining node
        if key is not None:
            self._calibrations[key] = _CalibrationMemo(
                edit_index=len(self._edits), mechanism=mechanism
            )
        total = len(self.nodes)
        return mechanism, RecalibrationReport(
            total_nodes=total,
            reused_nodes=reused,
            recomputed_nodes=total - reused,
            edits_applied=len(self._edits)
            - (memo.edit_index if memo is not None else 0),
            cold=memo is None,
        )

    def _closures_avoid(
        self, mechanism: "MarkovQuiltMechanism", node: str, dirty: set[str]
    ) -> bool:
        """True when no candidate quilt closure of ``node`` touches ``dirty``.

        The closure of candidate ``q`` is ``ancestral_closure(q.quilt |
        {node})`` on the *current* network: the engine's barren-node pruning
        makes ``P(X_Q | X_i)`` a function of exactly those CPDs, so a clean
        closure means the old influence — and the old sigma — replays
        bit-for-bit.
        """
        if not dirty:
            return True
        for quilt in mechanism.quilt_sets[node]:
            closure = self._net.ancestral_closure(set(quilt.quilt) | {node})
            if closure & dirty:
                return False
        return True


__all__ = [
    "MAX_RETIRE_TABLE",
    "MarkovQuilt",
    "RecalibrationReport",
    "TemporalEdit",
    "TemporalNetwork",
]
