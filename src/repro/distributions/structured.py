"""Structured-graph scenario library: grids, hub-and-spoke, household blocks.

The general Markov Quilt Mechanism (Algorithm 2) is only as good as the
quilt candidate set it searches.  Path graphs get the rich Lemma 4.6
asymmetric sets (:meth:`~repro.distributions.bayesnet.DiscreteBayesianNetwork.
chain_quilts`); every other topology previously fell back to the symmetric
distance shells of :meth:`~repro.distributions.bayesnet.DiscreteBayesianNetwork.
distance_quilts`.  This module adds three structured network families — the
composition settings of Bai et al. (*Composition for Pufferfish Privacy*, see
PAPERS.md) — as first-class scenarios, each paired with a **dedicated quilt
generator** that exploits its topology:

* :func:`grid_network` — an ``rows x cols`` lattice of contagion (each cell
  depends on its upper and left neighbors).  :class:`GridQuiltGenerator`
  proposes rectangular frontier rings (the Chebyshev ring at radius ``r``
  around the protected cell) and full row/column bands, including the
  one-sided and asymmetric two-sided bands the distance shells miss.
* :func:`hub_and_spoke_network` — one hub node with ``n_spokes`` path-shaped
  spokes.  :class:`HubQuiltGenerator` uses the hub as a **one-node
  separator** (cutting the protected node's spoke off every other spoke)
  plus the chain-style asymmetric separators along the node's own spoke;
  distance shells instead drag same-radius nodes of *other* spokes into
  every separator, inflating its max-influence.
* :func:`household_blocks_network` — ``n_blocks`` mutually independent
  households, each an intra-block chain.  :class:`BlockQuiltGenerator` cuts
  at block boundaries: the **empty separator** already leaves every other
  block remote (a disconnected component needs no quilt nodes at all — the
  "disconnection dividend"), and within the block it proposes the chain
  asymmetric sets.  Distance shells never propose the empty separator, so
  they always pay influence for remoteness the graph gives away for free.

Every generator certifies each candidate through
:meth:`~repro.distributions.bayesnet.DiscreteBayesianNetwork.quilt_from_set`
(the d-separation check of Definition 4.2), always includes the trivial
quilt, and **merges the distance shells** into its candidate set — so a
structured generator can match or beat the shell baseline, never lose to it.
Generators are small frozen dataclasses; they run once in
``MarkovQuiltMechanism.__init__`` to materialize the per-node candidate
lists, and parallel calibration shards ship only those lists — the
generator object itself is stripped from shard payloads (see
:func:`repro.parallel.shards.per_node_general_shard`), so even an
unpicklable custom generator calibrates through the process pool.

Scenario bundles (:class:`StructuredScenario`) pair a reference network with
a theta family of perturbed-CPD variants (the class Theta of Definition
4.1) and the family's generator; feed them straight into
``MarkovQuiltMechanism(scenario.networks, epsilon,
quilt_generator=scenario.quilt_generator)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.distributions.bayesnet import DiscreteBayesianNetwork, MarkovQuilt
from repro.exceptions import ValidationError

#: A quilt-generator strategy: ``generator(network, node)`` returns the
#: candidate quilts Algorithm 2 searches for ``node`` (trivial included).
QuiltGenerator = Callable[[DiscreteBayesianNetwork, str], Sequence[MarkovQuilt]]


# ----------------------------------------------------------------------
# CPD construction
# ----------------------------------------------------------------------
def noisy_or_cpd(n_parents: int, base: float, spread: float) -> np.ndarray:
    """Binary noisy-OR contagion CPD for a node with ``n_parents`` parents.

    ``P(infected | parents) = 1 - (1 - base) * (1 - spread)^#infected`` —
    the standard independent-transmission model: ``base`` is the spontaneous
    infection rate, ``spread`` the per-infected-neighbor transmission
    probability.
    """
    if not 0.0 <= base <= 1.0 or not 0.0 <= spread <= 1.0:
        raise ValidationError(
            f"base and spread must be probabilities, got {base}, {spread}"
        )
    table = np.empty((2,) * n_parents + (2,))
    for states in itertools.product((0, 1), repeat=n_parents):
        p = 1.0 - (1.0 - base) * (1.0 - spread) ** sum(states)
        table[states + (0,)] = 1.0 - p
        table[states + (1,)] = p
    return table


def _root_rate(base: float, spread: float) -> float:
    """Infection rate for a root (parentless) node: elevated above ``base``
    so roots are informative, clamped so any valid ``(base, spread)`` pair
    stays a probability."""
    return min(1.0, base + spread / 2.0)


# ----------------------------------------------------------------------
# Network builders
# ----------------------------------------------------------------------
def grid_node(row: int, col: int) -> str:
    """Canonical name of the grid cell at ``(row, col)``."""
    return f"g{row}_{col}"


def grid_network(
    rows: int, cols: int, *, base: float = 0.05, spread: float = 0.45
) -> DiscreteBayesianNetwork:
    """An ``rows x cols`` contagion lattice.

    Cell ``(r, c)`` has parents ``(r-1, c)`` and ``(r, c-1)`` (where they
    exist) with the :func:`noisy_or_cpd` transmission model; the skeleton is
    the 4-connected grid graph.
    """
    if rows < 1 or cols < 1:
        raise ValidationError(f"grid needs rows, cols >= 1, got {rows}x{cols}")
    net = DiscreteBayesianNetwork()
    for r in range(rows):
        for c in range(cols):
            parents = []
            if r > 0:
                parents.append(grid_node(r - 1, c))
            if c > 0:
                parents.append(grid_node(r, c - 1))
            net.add_node(
                grid_node(r, c), 2, parents=parents,
                cpd=noisy_or_cpd(len(parents), base, spread),
            )
    return net


def spoke_node(spoke: int, position: int) -> str:
    """Canonical name of spoke ``spoke``'s node at 1-based ``position``."""
    return f"s{spoke}_{position}"


HUB = "hub"


def hub_and_spoke_network(
    n_spokes: int,
    spoke_length: int = 3,
    *,
    base: float = 0.05,
    spread: float = 0.45,
    hub_spread: float | None = None,
) -> DiscreteBayesianNetwork:
    """A hub node with ``n_spokes`` outgoing path-shaped spokes.

    The hub (named ``"hub"``) infects the first node of each spoke, which
    infects the next, and so on — a star of Markov chains.  Spoke nodes are
    named ``s{i}_{j}`` with ``j = 1..spoke_length`` counted outward.
    ``hub_spread`` (default: ``spread``) sets the hub-to-spoke transmission
    separately from the intra-spoke one — a weakly coupled hub over strongly
    coupled spokes is the regime where per-spoke quilt structure matters
    most, because the hub stops dominating every node's quilt search.
    """
    if n_spokes < 1 or spoke_length < 1:
        raise ValidationError(
            f"need n_spokes, spoke_length >= 1, got {n_spokes}, {spoke_length}"
        )
    if hub_spread is None:
        hub_spread = spread
    net = DiscreteBayesianNetwork()
    net.add_node(HUB, 2, cpd=noisy_or_cpd(0, _root_rate(base, spread), 0.0))
    for i in range(n_spokes):
        previous = HUB
        for j in range(1, spoke_length + 1):
            name = spoke_node(i, j)
            net.add_node(
                name, 2, parents=[previous],
                cpd=noisy_or_cpd(1, base, hub_spread if j == 1 else spread),
            )
            previous = name
    return net


def block_node(block: int, position: int) -> str:
    """Canonical name of block ``block``'s member at 0-based ``position``."""
    return f"b{block}_{position}"


def household_blocks_network(
    n_blocks: int,
    block_size: int,
    *,
    base: float = 0.05,
    spread: float = 0.45,
) -> DiscreteBayesianNetwork:
    """``n_blocks`` mutually independent households of ``block_size`` members.

    Each block is an intra-block chain ``b{i}_0 -> b{i}_1 -> ...`` (household
    members infect each other); **there are no inter-block edges**, so the
    skeleton is a disconnected union of paths — the multi-component shape
    that exercises the connectivity requirement of
    :meth:`~repro.distributions.bayesnet.DiscreteBayesianNetwork.is_path_graph`.
    """
    if n_blocks < 1 or block_size < 1:
        raise ValidationError(
            f"need n_blocks, block_size >= 1, got {n_blocks}, {block_size}"
        )
    net = DiscreteBayesianNetwork()
    for i in range(n_blocks):
        net.add_node(
            block_node(i, 0), 2, cpd=noisy_or_cpd(0, _root_rate(base, spread), 0.0)
        )
        for j in range(1, block_size):
            net.add_node(
                block_node(i, j), 2, parents=[block_node(i, j - 1)],
                cpd=noisy_or_cpd(1, base, spread),
            )
    return net


# ----------------------------------------------------------------------
# Quilt generators
# ----------------------------------------------------------------------
def certified_quilts(
    network: DiscreteBayesianNetwork,
    node: str,
    separators: Iterable[Iterable[str]],
    *,
    merge_distance_shells: bool = True,
) -> list[MarkovQuilt]:
    """Certify candidate separator sets into a deduplicated quilt list.

    Every candidate goes through
    :meth:`~repro.distributions.bayesnet.DiscreteBayesianNetwork.quilt_from_set`
    — candidates that fail the d-separation check are silently dropped, so a
    generator may propose optimistically.  The trivial quilt is always first
    (Theorem 4.3 requires it to be searchable), and unless disabled the
    symmetric distance shells are merged in, which guarantees a structured
    generator never calibrates *worse* than the shell baseline.
    """
    quilts = [network.trivial_quilt(node)]
    seen = {quilts[0]}
    for separator in separators:
        candidate = network.quilt_from_set(node, separator)
        if candidate is not None and candidate not in seen:
            seen.add(candidate)
            quilts.append(candidate)
    if merge_distance_shells:
        for candidate in network.distance_quilts(node):
            if candidate not in seen:
                seen.add(candidate)
                quilts.append(candidate)
    return quilts


@dataclass(frozen=True)
class GridQuiltGenerator:
    """Frontier rings and row/column bands for :func:`grid_network`.

    For the protected cell ``(r, c)`` the candidates are:

    * the rectangular **frontier ring** at Chebyshev radius ``k`` — every
      in-grid cell at ``max(|dr|, |dc|) == k``.  A 4-connected (or
      moralized, which adds only anti-diagonal steps) path from inside the
      ring to outside must cross it, so it separates;
    * **row bands**: row ``r - a`` alone, row ``r + b`` alone, and the
      asymmetric pairs ``{row r-a, row r+b}`` — the grid analogue of the
      Lemma 4.6 one-/two-sided chain separators;
    * **column bands**, symmetrically.

    Distance shells (graph-distance diamonds) are merged in, so the
    candidate set is a strict superset of the baseline's.
    """

    rows: int
    cols: int

    def _cell(self, name: str) -> tuple[int, int]:
        try:
            row, col = map(int, name[1:].split("_"))
        except (ValueError, IndexError):
            raise ValidationError(
                f"{name!r} is not a grid cell name (expected 'g<row>_<col>')"
            ) from None
        return row, col

    def __call__(
        self, network: DiscreteBayesianNetwork, node: str
    ) -> list[MarkovQuilt]:
        r, c = self._cell(node)
        separators: list[set[str]] = []
        for radius in range(1, max(self.rows, self.cols)):
            ring = {
                grid_node(rr, cc)
                for rr in range(self.rows)
                for cc in range(self.cols)
                if max(abs(rr - r), abs(cc - c)) == radius
            }
            if not ring:
                break
            separators.append(ring)
        row_band = lambda rr: {grid_node(rr, cc) for cc in range(self.cols)}  # noqa: E731
        col_band = lambda cc: {grid_node(rr, cc) for rr in range(self.rows)}  # noqa: E731
        above = [row_band(r - a) for a in range(1, r + 1)]
        below = [row_band(r + b) for b in range(1, self.rows - r)]
        left = [col_band(c - a) for a in range(1, c + 1)]
        right = [col_band(c + b) for b in range(1, self.cols - c)]
        for one_sided in (*above, *below, *left, *right):
            separators.append(one_sided)
        separators.extend(a | b for a, b in itertools.product(above, below))
        separators.extend(a | b for a, b in itertools.product(left, right))
        return certified_quilts(network, node, separators)


@dataclass(frozen=True)
class HubQuiltGenerator:
    """Hub-as-separator plus per-spoke chain sets for
    :func:`hub_and_spoke_network`.

    For a spoke node the candidates are the Lemma 4.6 one-/two-sided
    separators along its own spoke, with the hub playing the role of the
    innermost "toward" cut — ``{hub}`` alone already severs every other
    spoke.  For the hub itself only the merged distance shells apply (every
    neighbor set is symmetric around it).
    """

    spokes: tuple[tuple[str, ...], ...]

    def __call__(
        self, network: DiscreteBayesianNetwork, node: str
    ) -> list[MarkovQuilt]:
        spoke = next((s for s in self.spokes if node in s), None)
        if spoke is None:  # the hub
            return certified_quilts(network, node, ())
        position = spoke.index(node)
        inward = [spoke[position - a] for a in range(1, position + 1)] + [HUB]
        outward = [spoke[position + b] for b in range(1, len(spoke) - position)]
        separators: list[set[str]] = [{cut} for cut in (*inward, *outward)]
        separators.extend({a, b} for a, b in itertools.product(inward, outward))
        return certified_quilts(network, node, separators)


@dataclass(frozen=True)
class BlockQuiltGenerator:
    """Block-boundary cuts for :func:`household_blocks_network`.

    Blocks are mutually independent, so the **empty separator** already
    leaves every other block remote with zero max-influence — the protected
    node's score drops from ``n / epsilon`` (trivial) to
    ``block_size / epsilon`` without spending any influence budget.  Within
    the node's own block the generator adds the Lemma 4.6 one-/two-sided
    chain separators.  Distance shells never propose the empty separator
    (they start at radius 1), which is exactly what this generator fixes.
    """

    blocks: tuple[tuple[str, ...], ...]

    def __call__(
        self, network: DiscreteBayesianNetwork, node: str
    ) -> list[MarkovQuilt]:
        block = next((b for b in self.blocks if node in b), None)
        if block is None:
            return certified_quilts(network, node, ((),))
        position = block.index(node)
        inward = [block[position - a] for a in range(1, position + 1)]
        outward = [block[position + b] for b in range(1, len(block) - position)]
        separators: list[set[str]] = [set()]
        separators.extend({cut} for cut in (*inward, *outward))
        separators.extend({a, b} for a, b in itertools.product(inward, outward))
        return certified_quilts(network, node, separators)


# ----------------------------------------------------------------------
# Scenario bundles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StructuredScenario:
    """A structured network family ready for Algorithm 2.

    ``networks`` is the class Theta — a reference network first, followed by
    perturbed-CPD variants sharing its DAG; ``quilt_generator`` is the
    family's dedicated strategy.  Pass both straight through::

        MarkovQuiltMechanism(
            scenario.networks, epsilon,
            quilt_generator=scenario.quilt_generator,
        )
    """

    name: str
    networks: tuple[DiscreteBayesianNetwork, ...]
    quilt_generator: QuiltGenerator

    @property
    def reference(self) -> DiscreteBayesianNetwork:
        """The network whose DAG defines the quilt search."""
        return self.networks[0]


def _theta(
    build: Callable[[float], DiscreteBayesianNetwork], spreads: Sequence[float]
) -> tuple[DiscreteBayesianNetwork, ...]:
    if not spreads:
        raise ValidationError("theta needs at least one spread value")
    return tuple(build(spread) for spread in spreads)


def grid_scenario(
    rows: int,
    cols: int,
    *,
    base: float = 0.05,
    spreads: Sequence[float] = (0.45, 0.25),
) -> StructuredScenario:
    """A grid family: one network per transmission rate in ``spreads``."""
    return StructuredScenario(
        name=f"grid-{rows}x{cols}",
        networks=_theta(
            lambda s: grid_network(rows, cols, base=base, spread=s), spreads
        ),
        quilt_generator=GridQuiltGenerator(rows, cols),
    )


def hub_and_spoke_scenario(
    n_spokes: int,
    spoke_length: int = 3,
    *,
    base: float = 0.05,
    spreads: Sequence[float] = (0.75, 0.55),
    hub_spread: float | None = 0.1,
) -> StructuredScenario:
    """A hub-and-spoke family: one network per intra-spoke transmission rate.

    The defaults pair strong intra-spoke transmission with a weakly coupled
    hub (``hub_spread = 0.1``), which keeps the hub from dominating the
    quilt search of every spoke node — the regime where the dedicated
    generator's hub-as-separator and asymmetric per-spoke cuts beat the
    symmetric distance shells.
    """
    spokes = tuple(
        tuple(spoke_node(i, j) for j in range(1, spoke_length + 1))
        for i in range(n_spokes)
    )
    return StructuredScenario(
        name=f"hub-{n_spokes}x{spoke_length}",
        networks=_theta(
            lambda s: hub_and_spoke_network(
                n_spokes, spoke_length, base=base, spread=s, hub_spread=hub_spread
            ),
            spreads,
        ),
        quilt_generator=HubQuiltGenerator(spokes),
    )


def household_blocks_scenario(
    n_blocks: int,
    block_size: int,
    *,
    base: float = 0.05,
    spreads: Sequence[float] = (0.45, 0.25),
) -> StructuredScenario:
    """A household-blocks family: one network per transmission rate."""
    blocks = tuple(
        tuple(block_node(i, j) for j in range(block_size))
        for i in range(n_blocks)
    )
    return StructuredScenario(
        name=f"blocks-{n_blocks}x{block_size}",
        networks=_theta(
            lambda s: household_blocks_network(
                n_blocks, block_size, base=base, spread=s
            ),
            spreads,
        ),
        quilt_generator=BlockQuiltGenerator(blocks),
    )
