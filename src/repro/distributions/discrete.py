"""Finite discrete probability distributions on the real line.

:class:`DiscreteDistribution` is the common currency of the library: the
Wasserstein Mechanism compares conditional *query-output* distributions
``P(F(X) | s_i, theta)``, the robustness theorem compares belief
distributions, and tests build small distributions by hand.  Atoms are kept
sorted so cumulative-distribution and quantile queries are O(log n).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import as_probability_vector

#: Probabilities below this threshold are treated as structural zeros when
#: computing supports and divergences (guards against float round-off).
SUPPORT_ATOL = 1e-12


@dataclass(frozen=True)
class DiscreteDistribution:
    """A probability distribution with finitely many atoms on the real line.

    Attributes
    ----------
    atoms:
        Strictly increasing array of support points (``float64``).
    probs:
        Probabilities matching ``atoms``; non-negative, summing to one.

    Use :meth:`from_pairs`, :meth:`from_mapping` or :meth:`from_samples` to
    construct instances from unsorted or duplicated data.
    """

    atoms: np.ndarray
    probs: np.ndarray
    _cdf: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        atoms = np.asarray(self.atoms, dtype=float)
        probs = as_probability_vector(self.probs, "probs")
        if atoms.ndim != 1:
            raise ValidationError(f"atoms must be 1-dimensional, got shape {atoms.shape}")
        if atoms.shape != probs.shape:
            raise ValidationError(
                f"atoms and probs must have matching shapes, got {atoms.shape} vs {probs.shape}"
            )
        if not np.all(np.isfinite(atoms)):
            raise ValidationError("atoms contains non-finite values")
        if atoms.size > 1 and np.any(np.diff(atoms) <= 0):
            raise ValidationError(
                "atoms must be strictly increasing; use from_pairs() to sort/merge"
            )
        cdf = np.cumsum(probs)
        cdf[-1] = 1.0  # exact terminal value for clean quantile lookups
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "probs", probs)
        object.__setattr__(self, "_cdf", cdf)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "DiscreteDistribution":
        """Build a distribution from ``(atom, probability)`` pairs.

        Pairs may be unsorted and may repeat atoms (masses are merged).
        Atoms with zero mass are dropped.
        """
        merged: dict[float, float] = {}
        for atom, prob in pairs:
            prob = float(prob)
            if prob < 0:
                raise ValidationError(f"negative probability {prob!r} for atom {atom!r}")
            if prob > 0:
                merged[float(atom)] = merged.get(float(atom), 0.0) + prob
        if not merged:
            raise ValidationError("distribution must have at least one atom with positive mass")
        atoms = np.array(sorted(merged), dtype=float)
        probs = np.array([merged[a] for a in atoms], dtype=float)
        return cls(atoms, as_probability_vector(probs, "probs", normalize=True))

    @classmethod
    def from_mapping(cls, mapping: Mapping[float, float]) -> "DiscreteDistribution":
        """Build a distribution from an ``{atom: probability}`` mapping."""
        return cls.from_pairs(mapping.items())

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "DiscreteDistribution":
        """Empirical distribution of a finite sample."""
        values, counts = np.unique(np.asarray(list(samples), dtype=float), return_counts=True)
        if values.size == 0:
            raise ValidationError("cannot build a distribution from an empty sample")
        return cls(values, counts / counts.sum())

    @classmethod
    def point_mass(cls, atom: float) -> "DiscreteDistribution":
        """Distribution placing all mass on a single point."""
        return cls(np.array([float(atom)]), np.array([1.0]))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        """Number of support points (including any zero-mass atoms kept)."""
        return int(self.atoms.size)

    def support(self) -> np.ndarray:
        """Atoms carrying probability mass above :data:`SUPPORT_ATOL`."""
        return self.atoms[self.probs > SUPPORT_ATOL]

    def mean(self) -> float:
        """Expected value."""
        return float(np.dot(self.atoms, self.probs))

    def variance(self) -> float:
        """Variance."""
        mu = self.mean()
        return float(np.dot((self.atoms - mu) ** 2, self.probs))

    def cdf(self, x: float | np.ndarray) -> np.ndarray | float:
        """Right-continuous CDF ``P(X <= x)`` evaluated at ``x``."""
        idx = np.searchsorted(self.atoms, x, side="right")
        padded = np.concatenate([[0.0], self._cdf])
        result = padded[idx]
        return float(result) if np.isscalar(x) else result

    def quantile(self, u: float | np.ndarray) -> np.ndarray | float:
        """Generalized inverse CDF: smallest atom ``x`` with ``CDF(x) >= u``."""
        u_arr = np.atleast_1d(np.asarray(u, dtype=float))
        if np.any((u_arr < 0) | (u_arr > 1)):
            raise ValidationError("quantile levels must lie in [0, 1]")
        idx = np.searchsorted(self._cdf, np.clip(u_arr, 0.0, 1.0), side="left")
        idx = np.minimum(idx, self.n_atoms - 1)
        result = self.atoms[idx]
        return float(result[0]) if np.isscalar(u) else result

    def probs_on(self, atoms: Iterable[float]) -> np.ndarray:
        """Probability masses at the given atoms (0.0 where absent)."""
        return np.array([self.probability_of(a) for a in atoms])

    def probability_of(self, atom: float, *, atol: float = 1e-12) -> float:
        """Probability mass at ``atom`` (0.0 if absent)."""
        idx = np.searchsorted(self.atoms, atom)
        if idx < self.n_atoms and abs(self.atoms[idx] - atom) <= atol:
            return float(self.probs[idx])
        return 0.0

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def shift(self, offset: float) -> "DiscreteDistribution":
        """Distribution of ``X + offset``."""
        return DiscreteDistribution(self.atoms + float(offset), self.probs.copy())

    def scale(self, factor: float) -> "DiscreteDistribution":
        """Distribution of ``factor * X`` (``factor`` may be negative)."""
        factor = float(factor)
        if factor == 0:
            return DiscreteDistribution.point_mass(0.0)
        return DiscreteDistribution.from_pairs(zip(self.atoms * factor, self.probs))

    def map(self, func) -> "DiscreteDistribution":
        """Pushforward distribution of ``func(X)`` (atoms merged as needed)."""
        return DiscreteDistribution.from_pairs(
            (func(a), p) for a, p in zip(self.atoms, self.probs)
        )

    def mixture(self, other: "DiscreteDistribution", weight: float) -> "DiscreteDistribution":
        """Mixture ``weight * self + (1 - weight) * other``."""
        if not 0.0 <= weight <= 1.0:
            raise ValidationError(f"mixture weight must lie in [0, 1], got {weight!r}")
        pairs = list(zip(self.atoms, self.probs * weight))
        pairs += list(zip(other.atoms, other.probs * (1.0 - weight)))
        return DiscreteDistribution.from_pairs(pairs)

    def restrict(self, predicate) -> "DiscreteDistribution":
        """Conditional distribution given ``predicate(atom)`` is true."""
        keep = np.array([bool(predicate(a)) for a in self.atoms])
        mass = float(self.probs[keep].sum())
        if mass <= SUPPORT_ATOL:
            raise ValidationError("conditioning event has zero probability")
        return DiscreteDistribution(self.atoms[keep], self.probs[keep] / mass)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. samples."""
        return rng.choice(self.atoms, size=size, p=self.probs)

    # ------------------------------------------------------------------
    # Comparison helpers (used heavily in tests)
    # ------------------------------------------------------------------
    def allclose(self, other: "DiscreteDistribution", *, atol: float = 1e-9) -> bool:
        """True when both distributions have identical atoms and close masses.

        Zero-mass atoms are ignored on both sides.
        """
        a = DiscreteDistribution.from_pairs(zip(self.atoms, self.probs))
        b = DiscreteDistribution.from_pairs(zip(other.atoms, other.probs))
        if a.n_atoms != b.n_atoms:
            return False
        return bool(
            np.allclose(a.atoms, b.atoms, atol=atol) and np.allclose(a.probs, b.probs, atol=atol)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        entries = ", ".join(f"{a:g}: {p:.4g}" for a, p in zip(self.atoms, self.probs))
        return f"DiscreteDistribution({{{entries}}})"
