"""Discrete Bayesian networks.

Section 4 of the paper works with databases ``X = (X_1, ..., X_n)`` whose
dependence is a Bayesian network ``G = (X, E)``:

``P(X_1, ..., X_n) = prod_i P(X_i | parent(X_i))``.

This module implements the substrate needed by the general Markov Quilt
Mechanism (Algorithm 2):

* CPD storage and validation, topological ordering,
* exact joint enumeration (kept as the *test oracle* for moderate networks;
  guarded by a safety cap and memoized per network),
* conditional distributions ``P(X_A | X_i = a)`` and marginals, computed by
  the :mod:`repro.inference` variable-elimination engine — exact for any
  network whose elimination width is tractable, with no joint-size cap,
* Markov blankets and **d-separation** (via moralized ancestral graphs),
  which certifies condition 2 of Definition 4.2 (``X_R`` independent of
  ``X_i`` given ``X_Q``) *for every* distribution that factorizes over G,
* automatic generation of Markov-quilt candidates by graph distance.

Nodes are identified by string names; each node has a finite number of
states labelled ``0..k-1``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import EnumerationError, ValidationError
from repro.inference import engine_for

#: Refuse to *enumerate* joints with more than this many assignments.  The
#: variable-elimination paths (:meth:`DiscreteBayesianNetwork.marginal_of`,
#: :meth:`DiscreteBayesianNetwork.conditional_table`) are not subject to
#: this cap — it only guards the explicit oracle
#: :meth:`DiscreteBayesianNetwork.enumerate_joint`.
MAX_JOINT_SIZE = 2_000_000


@dataclass(frozen=True)
class MarkovQuilt:
    """A Markov quilt ``(X_N, X_Q, X_R)`` for a node (Definition 4.2).

    ``quilt`` separates the protected node's "nearby" set ``nearby`` (which
    contains the node itself) from the "remote" set ``remote``.
    """

    node: str
    quilt: frozenset[str]
    nearby: frozenset[str]
    remote: frozenset[str]

    @property
    def is_trivial(self) -> bool:
        """The trivial quilt has an empty ``X_Q`` and ``X_R`` (everything is
        nearby); always admissible with max-influence 0."""
        return not self.quilt and not self.remote

    def card_nearby(self) -> int:
        """``card(X_N)`` — the count entering the quilt's score."""
        return len(self.nearby)


class DiscreteBayesianNetwork:
    """A Bayesian network over discrete variables with explicit CPDs.

    Build incrementally::

        net = DiscreteBayesianNetwork()
        net.add_node("X1", 2, cpd=[0.7, 0.3])
        net.add_node("X2", 2, parents=["X1"], cpd=[[0.9, 0.1], [0.2, 0.8]])

    ``cpd`` for a node with parents ``(P1, ..., Pm)`` is an array of shape
    ``(k_{P1}, ..., k_{Pm}, k_node)`` whose last axis sums to one.
    """

    def __init__(self) -> None:
        self._states: dict[str, int] = {}
        self._parents: dict[str, tuple[str, ...]] = {}
        self._cpds: dict[str, np.ndarray] = {}
        self._order: list[str] = []
        self._fingerprint: str | None = None
        self._joint_memo: tuple[list[tuple[int, ...]], np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        n_states: int,
        *,
        parents: Sequence[str] = (),
        cpd: Sequence | np.ndarray,
    ) -> None:
        """Add a node with its conditional probability distribution.

        Parents must already exist (this enforces acyclicity for free since
        nodes are added in topological order).
        """
        if name in self._states:
            raise ValidationError(f"node {name!r} already exists")
        if n_states < 1:
            raise ValidationError(f"node {name!r} needs at least one state")
        for parent in parents:
            if parent not in self._states:
                raise ValidationError(
                    f"parent {parent!r} of {name!r} must be added before its child"
                )
        expected_shape = tuple(self._states[p] for p in parents) + (n_states,)
        table = np.asarray(cpd, dtype=float)
        if table.shape != expected_shape:
            raise ValidationError(
                f"cpd for {name!r} must have shape {expected_shape}, got {table.shape}"
            )
        if np.any(table < 0) or not np.allclose(table.sum(axis=-1), 1.0, atol=1e-8):
            raise ValidationError(f"cpd for {name!r} must be non-negative with last axis summing to 1")
        self._states[name] = int(n_states)
        self._parents[name] = tuple(parents)
        self._cpds[name] = table / table.sum(axis=-1, keepdims=True)
        self._order.append(name)
        # Content changed: re-hash on next request and drop the memoized
        # joint (a stale fingerprint would also alias a stale inference
        # engine, since the engine registry keys on it).
        self._fingerprint = None
        self._joint_memo = None

    def update_cpd(self, name: str, cpd: Sequence | np.ndarray) -> None:
        """Replace the CPD of an existing node (structure unchanged).

        The new table must have the node's current shape
        ``(k_parents..., k_node)`` and pass the same validation as
        :meth:`add_node`.  Like ``add_node``, the edit invalidates the
        memoized fingerprint and joint, so a network updated after
        fingerprinting or calibration re-hashes — a stale fingerprint would
        alias a stale inference engine and serve stale calibrations.
        """
        if name not in self._states:
            raise ValidationError(f"cannot update CPD of unknown node {name!r}")
        expected_shape = tuple(
            self._states[p] for p in self._parents[name]
        ) + (self._states[name],)
        table = np.asarray(cpd, dtype=float)
        if table.shape != expected_shape:
            raise ValidationError(
                f"cpd for {name!r} must have shape {expected_shape}, got {table.shape}"
            )
        if np.any(table < 0) or not np.allclose(table.sum(axis=-1), 1.0, atol=1e-8):
            raise ValidationError(f"cpd for {name!r} must be non-negative with last axis summing to 1")
        self._cpds[name] = table / table.sum(axis=-1, keepdims=True)
        self._fingerprint = None
        self._joint_memo = None

    @classmethod
    def chain(cls, initial: np.ndarray, transition: np.ndarray, length: int) -> "DiscreteBayesianNetwork":
        """The Markov-chain network ``X1 -> X2 -> ... -> XT`` used throughout
        Section 4.4; nodes are named ``X1 .. X{length}``."""
        if length < 1:
            raise ValidationError(f"chain length must be >= 1, got {length}")
        initial = np.asarray(initial, dtype=float)
        transition = np.asarray(transition, dtype=float)
        k = initial.size
        net = cls()
        net.add_node("X1", k, cpd=initial)
        for t in range(2, length + 1):
            net.add_node(f"X{t}", k, parents=[f"X{t-1}"], cpd=transition)
        return net

    def fingerprint(self) -> str:
        """Content hash of the full network (DAG + CPDs).

        Two networks with equal fingerprints are numerically identical, so a
        calibration computed against one is valid for the other; used by the
        serving layer's cache keys.  Memoized; :meth:`add_node` invalidates
        the memo so a network grown after fingerprinting re-hashes.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        import hashlib

        digest = hashlib.sha256()
        for name in self._order:
            digest.update(f"{name}:{self._states[name]}:".encode())
            digest.update(",".join(self._parents[name]).encode())
            digest.update(np.ascontiguousarray(self._cpds[name], dtype=np.float64).tobytes())
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        """Node names in insertion (topological) order."""
        return tuple(self._order)

    def n_states(self, name: str) -> int:
        """Number of states of ``name``."""
        return self._states[name]

    def parents(self, name: str) -> tuple[str, ...]:
        """Parents of ``name``."""
        return self._parents[name]

    def children(self, name: str) -> tuple[str, ...]:
        """Children of ``name`` in insertion order."""
        return tuple(n for n in self._order if name in self._parents[n])

    def cpd(self, name: str) -> np.ndarray:
        """The CPD table of ``name`` (copy)."""
        return self._cpds[name].copy()

    def markov_blanket(self, name: str) -> frozenset[str]:
        """Parents, children, and co-parents of ``name``."""
        blanket: set[str] = set(self._parents[name])
        for child in self.children(name):
            blanket.add(child)
            blanket.update(self._parents[child])
        blanket.discard(name)
        return frozenset(blanket)

    def undirected_neighbors(self, name: str) -> frozenset[str]:
        """Neighbors in the undirected skeleton (parents and children)."""
        return frozenset(self._parents[name]) | frozenset(self.children(name))

    # ------------------------------------------------------------------
    # d-separation (moralized ancestral graph method)
    # ------------------------------------------------------------------
    def is_d_separated(self, x: str, targets: Iterable[str], given: Iterable[str]) -> bool:
        """True when every node in ``targets`` is d-separated from ``x`` by
        ``given``; certifies ``P(targets | given, x) = P(targets | given)``
        for all distributions factorizing over this DAG.
        """
        targets = set(targets)
        given = set(given)
        if x in targets:
            return False
        if not targets:
            return True
        relevant = {x} | targets | given
        ancestral = self._ancestral_closure(relevant)
        adjacency = self._moralized_adjacency(ancestral)
        # BFS from x avoiding the separator.
        visited = {x}
        frontier = [x]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):  # pragma: no branch
                if nxt in given or nxt in visited:
                    continue
                if nxt in targets:
                    return False
                visited.add(nxt)
                frontier.append(nxt)
        return True

    def ancestral_closure(self, names: Iterable[str]) -> frozenset[str]:
        """``names`` plus every DAG ancestor of a named node.

        The marginal (and any conditional) over a set ``S`` is a function of
        the CPDs of ``ancestral_closure(S)`` only — the invariant behind the
        temporal incremental-recalibration rule: an edit whose dirty nodes
        avoid a quilt candidate's closure cannot change that candidate's
        max-influence.
        """
        seed = set(names)
        unknown = [n for n in seed if n not in self._states]
        if unknown:
            raise ValidationError(f"unknown node(s) {sorted(unknown)!r}")
        return frozenset(self._ancestral_closure(seed))

    def _ancestral_closure(self, seed: set[str]) -> set[str]:
        closure = set(seed)
        frontier = list(seed)
        while frontier:
            node = frontier.pop()
            for parent in self._parents[node]:
                if parent not in closure:
                    closure.add(parent)
                    frontier.append(parent)
        return closure

    def _moralized_adjacency(self, subset: set[str]) -> dict[str, set[str]]:
        adjacency: dict[str, set[str]] = {n: set() for n in subset}
        for node in subset:
            parents = [p for p in self._parents[node] if p in subset]
            for parent in parents:
                adjacency[node].add(parent)
                adjacency[parent].add(node)
            # Marry co-parents.
            for a, b in itertools.combinations(parents, 2):
                adjacency[a].add(b)
                adjacency[b].add(a)
        return adjacency

    # ------------------------------------------------------------------
    # Markov quilt candidates
    # ------------------------------------------------------------------
    def trivial_quilt(self, node: str) -> MarkovQuilt:
        """The always-valid quilt with ``X_Q = {}`` and ``X_N = X``."""
        return MarkovQuilt(
            node=node,
            quilt=frozenset(),
            nearby=frozenset(self._order),
            remote=frozenset(),
        )

    def quilt_from_set(self, node: str, quilt_nodes: Iterable[str]) -> MarkovQuilt | None:
        """Build the quilt induced by a candidate separator set.

        ``X_N`` is the set of nodes still connected to ``node`` in the
        skeleton after deleting ``quilt_nodes``; ``X_R`` is the rest.  Returns
        ``None`` when d-separation fails (the candidate is not a valid quilt).
        """
        quilt_set = frozenset(quilt_nodes) - {node}
        remaining = [n for n in self._order if n not in quilt_set]
        # Connected component of `node` in the skeleton minus the quilt.
        component = {node}
        frontier = [node]
        remaining_set = set(remaining)
        while frontier:
            current = frontier.pop()
            for nxt in self.undirected_neighbors(current):
                if nxt in remaining_set and nxt not in component:
                    component.add(nxt)
                    frontier.append(nxt)
        remote = frozenset(remaining_set - component)
        if remote and not self.is_d_separated(node, remote, quilt_set):
            return None
        return MarkovQuilt(node=node, quilt=quilt_set, nearby=frozenset(component), remote=remote)

    def distance_quilts(self, node: str, max_radius: int | None = None) -> list[MarkovQuilt]:
        """Quilt candidates by skeleton distance plus the trivial quilt.

        For each radius ``r`` the candidate separator is the set of nodes at
        skeleton distance exactly ``r`` from ``node``; its validity is
        certified by d-separation.  For chains this generates the symmetric
        two-sided quilts ``{X_{i-r}, X_{i+r}}``; :mod:`repro.core.mqm_chain`
        generates the richer asymmetric set of Lemma 4.6.
        """
        distances = self._skeleton_distances(node)
        finite = [d for d in distances.values() if np.isfinite(d) and d > 0]
        radii = sorted(set(int(d) for d in finite))
        if max_radius is not None:
            radii = [r for r in radii if r <= max_radius]
        quilts = [self.trivial_quilt(node)]
        for radius in radii:
            separator = {n for n, d in distances.items() if d == radius}
            candidate = self.quilt_from_set(node, separator)
            if candidate is not None and not candidate.is_trivial:
                quilts.append(candidate)
        return quilts

    def is_path_graph(self) -> bool:
        """True when the skeleton is a single simple path (a Markov chain).

        Requires **connectivity**, not just the path degree profile: a
        disconnected union of paths (two 2-node chains have degrees
        ``[1, 1, 1, 1]``) and a path-plus-cycle union (degrees ``<= 2`` with
        two endpoints *and* ``n - 1`` edges) both fail here, where the
        seed's degree-multiset check accepted them and the path-walk in
        :meth:`chain_quilts` then crashed.
        """
        n = len(self._order)
        if n == 1:
            return True
        degrees = [len(self.undirected_neighbors(name)) for name in self._order]
        if any(d > 2 for d in degrees) or sorted(degrees)[:2] != [1, 1]:
            return False
        edges = sum(len(self._parents[name]) for name in self._order)
        if edges != n - 1:
            return False
        distances = self._skeleton_distances(self._order[0])
        return all(np.isfinite(d) for d in distances.values())

    def chain_quilts(self, node: str, max_window: int | None = None) -> list[MarkovQuilt]:
        """The Lemma 4.6 asymmetric quilt set for path-graph networks.

        For a chain ``X_1 - ... - X_T`` and node ``X_i`` this generates the
        two-sided quilts ``{X_{i-a}, X_{i+b}}``, the one-sided quilts
        ``{X_{i-a}}`` / ``{X_{i+b}}``, and the trivial quilt — the reduced
        search set that Algorithm 3 uses.  With these quilt sets the general
        mechanism (Algorithm 2) matches the chain-specialized MQMExact.

        Raises :class:`ValidationError` when the skeleton is not a single
        connected path — including the disconnected union-of-paths case,
        which matches the path degree profile but cannot be walked
        end-to-end (use the per-component generators in
        :mod:`repro.distributions.structured` for those).
        """
        if not self.is_path_graph():
            raise ValidationError(
                "chain_quilts requires a connected path-graph network"
            )
        # Order nodes along the path starting from an endpoint.
        order = self._path_order()
        position = order.index(node)
        length = len(order)
        window = max_window if max_window is not None else length
        quilts = [self.trivial_quilt(node)]
        for a in range(1, min(position, window) + 1):
            left = position - a
            quilts.append(self._interval_quilt(order, position, left, None))
            for b in range(1, min(length - 1 - position, window) + 1):
                if a + b - 1 > window:
                    continue
                quilts.append(self._interval_quilt(order, position, left, position + b))
        for b in range(1, min(length - 1 - position, window) + 1):
            quilts.append(self._interval_quilt(order, position, None, position + b))
        return quilts

    def _path_order(self) -> list[str]:
        """Node names ordered along the path skeleton."""
        if len(self._order) == 1:
            return list(self._order)
        endpoints = [n for n in self._order if len(self.undirected_neighbors(n)) == 1]
        current = endpoints[0]
        ordered = [current]
        previous: str | None = None
        while len(ordered) < len(self._order):
            neighbors = [n for n in self.undirected_neighbors(current) if n != previous]
            previous, current = current, neighbors[0]
            ordered.append(current)
        return ordered

    def _interval_quilt(
        self,
        order: list[str],
        position: int,
        left: int | None,
        right: int | None,
    ) -> MarkovQuilt:
        """Quilt with separator nodes at path positions ``left``/``right``."""
        quilt_set = set()
        nearby_lo = 0
        nearby_hi = len(order) - 1
        if left is not None:
            quilt_set.add(order[left])
            nearby_lo = left + 1
        if right is not None:
            quilt_set.add(order[right])
            nearby_hi = right - 1
        nearby = set(order[nearby_lo : nearby_hi + 1])
        remote = set(order) - nearby - quilt_set
        return MarkovQuilt(
            node=order[position],
            quilt=frozenset(quilt_set),
            nearby=frozenset(nearby),
            remote=frozenset(remote),
        )

    def _skeleton_distances(self, source: str) -> dict[str, float]:
        distances = {n: float("inf") for n in self._order}
        distances[source] = 0.0
        frontier = [source]
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for nxt in self.undirected_neighbors(node):
                    if distances[nxt] == float("inf"):
                        distances[nxt] = distances[node] + 1
                        next_frontier.append(nxt)
            frontier = next_frontier
        return distances

    # ------------------------------------------------------------------
    # Exact inference by enumeration
    # ------------------------------------------------------------------
    def joint_size(self) -> int:
        """Number of assignments in the full joint."""
        size = 1
        for k in self._states.values():
            size *= k
        return size

    def enumerate_joint(self) -> tuple[list[tuple[int, ...]], np.ndarray]:
        """All assignments (tuples in node order) with their probabilities.

        This is the brute-force **test oracle**: every inference result the
        engine produces is checked against it (within the cap) by the
        equivalence suite.  Raises :class:`EnumerationError` beyond
        :data:`MAX_JOINT_SIZE`.  The enumerated joint is memoized — a sweep
        that consults the oracle repeatedly (as the seed's
        ``conditional_table`` did on every call) pays for the enumeration
        once per network; ``add_node`` invalidates the memo.  Callers must
        not mutate the returned structures.
        """
        if self._joint_memo is not None:
            return self._joint_memo
        size = self.joint_size()
        if size > MAX_JOINT_SIZE:
            raise EnumerationError(
                f"joint has {size} assignments (> {MAX_JOINT_SIZE}); "
                "use marginal_of/conditional_table (variable elimination) "
                "or the chain-specialized algorithms instead"
            )
        ranges = [range(self._states[n]) for n in self._order]
        assignments = list(itertools.product(*ranges))
        probs = np.empty(len(assignments))
        index = {n: i for i, n in enumerate(self._order)}
        for row, assignment in enumerate(assignments):
            prob = 1.0
            for node in self._order:
                parent_idx = tuple(assignment[index[p]] for p in self._parents[node])
                prob *= self._cpds[node][parent_idx + (assignment[index[node]],)]
                if prob == 0.0:
                    break
            probs[row] = prob
        self._joint_memo = (assignments, probs)
        return self._joint_memo

    def inference_engine(self):
        """The memoized :class:`~repro.inference.engine.InferenceEngine`
        for this network's current content (see
        :func:`repro.inference.engine_for`)."""
        return engine_for(self)

    def conditional_table(
        self,
        targets: Sequence[str],
        given: Mapping[str, int],
    ) -> dict[tuple[int, ...], float]:
        """``P(targets = . | given)`` as a mapping from target tuples.

        Computed by variable elimination (no joint-size cap); the key set
        and values match the enumeration oracle exactly: every
        evidence-consistent target combination appears, including
        zero-probability ones.  Raises :class:`ValidationError` when the
        conditioning event has zero probability.
        """
        return engine_for(self).conditional_table(tuple(targets), given)

    def marginal_of(self, node: str) -> np.ndarray:
        """Marginal distribution of a single node (variable elimination)."""
        return engine_for(self).marginal_of(node)

    def __getstate__(self) -> dict:
        """Pickle without the memoized joint.

        Calibration shards ship networks across process boundaries; the
        memo can hold up to :data:`MAX_JOINT_SIZE` rows, which would dwarf
        the payload, and the worker's engine registry re-derives everything
        it needs from the CPDs.
        """
        state = self.__dict__.copy()
        state["_joint_memo"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiscreteBayesianNetwork(nodes={len(self._order)})"
