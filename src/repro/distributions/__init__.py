"""Probability substrates: discrete distributions, Markov chains, chain
families (the distribution classes Theta of a Pufferfish instantiation) and
discrete Bayesian networks."""

from repro.distributions.bayesnet import DiscreteBayesianNetwork
from repro.distributions.chain_family import (
    ChainFamily,
    FiniteChainFamily,
    IntervalChainFamily,
)
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.markov import MarkovChain
from repro.distributions.metrics import (
    kl_divergence,
    max_divergence,
    symmetric_max_divergence,
    total_variation,
    w_infinity,
)
from repro.distributions.structured import (
    BlockQuiltGenerator,
    GridQuiltGenerator,
    HubQuiltGenerator,
    StructuredScenario,
    certified_quilts,
    grid_network,
    grid_scenario,
    household_blocks_network,
    household_blocks_scenario,
    hub_and_spoke_network,
    hub_and_spoke_scenario,
)
from repro.distributions.temporal import (
    RecalibrationReport,
    TemporalEdit,
    TemporalNetwork,
)

__all__ = [
    "BlockQuiltGenerator",
    "ChainFamily",
    "DiscreteBayesianNetwork",
    "DiscreteDistribution",
    "FiniteChainFamily",
    "GridQuiltGenerator",
    "HubQuiltGenerator",
    "IntervalChainFamily",
    "MarkovChain",
    "RecalibrationReport",
    "StructuredScenario",
    "TemporalEdit",
    "TemporalNetwork",
    "certified_quilts",
    "grid_network",
    "grid_scenario",
    "household_blocks_network",
    "household_blocks_scenario",
    "hub_and_spoke_network",
    "hub_and_spoke_scenario",
    "kl_divergence",
    "max_divergence",
    "symmetric_max_divergence",
    "total_variation",
    "w_infinity",
]
