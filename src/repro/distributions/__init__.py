"""Probability substrates: discrete distributions, Markov chains, chain
families (the distribution classes Theta of a Pufferfish instantiation) and
discrete Bayesian networks."""

from repro.distributions.bayesnet import DiscreteBayesianNetwork
from repro.distributions.chain_family import (
    ChainFamily,
    FiniteChainFamily,
    IntervalChainFamily,
)
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.markov import MarkovChain
from repro.distributions.metrics import (
    kl_divergence,
    max_divergence,
    symmetric_max_divergence,
    total_variation,
    w_infinity,
)

__all__ = [
    "ChainFamily",
    "DiscreteBayesianNetwork",
    "DiscreteDistribution",
    "FiniteChainFamily",
    "IntervalChainFamily",
    "MarkovChain",
    "kl_divergence",
    "max_divergence",
    "symmetric_max_divergence",
    "total_variation",
    "w_infinity",
]
