"""Discrete-time, finite-state, time-homogeneous Markov chains.

This is the main correlation substrate of the paper: Example 1 (physical
activity), the running example of Section 4.4, and both real-data experiments
model the database as a Markov chain ``X_1 -> X_2 -> ... -> X_T`` described
by an initial distribution ``q`` and a transition matrix ``P``.

The class provides everything MQMExact/MQMApprox need:

* cached matrix powers ``P^n`` and marginals ``P(X_t)`` (the paper's
  dynamic-programming speedup of Section 4.4.1),
* the stationary distribution ``pi`` and the time-reversal chain ``P*``
  (Definition 4.7),
* the eigengap ``g`` of Eq. (7)/(14) — the reversible form ``2*(1-|lambda_2|)``
  of ``P`` and the general form ``1-|lambda_2|`` of ``P P*``,
* irreducibility/aperiodicity checks (conditions of Lemma 4.8),
* exact sampling of trajectories.

Indices are **0-based**: ``marginal(t)`` is the law of ``X_t`` with
``marginal(0) == q``.  The paper's 1-based node ``X_i`` is node ``i-1`` here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rngtools import resolve_rng
from repro.utils.validation import as_probability_vector, as_transition_matrix

#: Eigenvalues within this distance of 1 in modulus are treated as part of the
#: unit peripheral spectrum when computing eigengaps.
EIGEN_ATOL = 1e-10


class MarkovChain:
    """A time-homogeneous Markov chain ``theta = (q, P)`` on ``k`` states.

    Parameters
    ----------
    initial:
        Length-``k`` initial distribution ``q`` of ``X_0``.
    transition:
        ``k x k`` row-stochastic transition matrix ``P``.
    state_labels:
        Optional human-readable labels (used by the activity dataset).
    """

    def __init__(
        self,
        initial: Sequence[float] | np.ndarray,
        transition: Sequence[Sequence[float]] | np.ndarray,
        state_labels: Sequence[str] | None = None,
    ) -> None:
        self.transition = as_transition_matrix(transition)
        self.initial = as_probability_vector(initial, "initial distribution")
        if self.initial.size != self.transition.shape[0]:
            raise ValidationError(
                f"initial distribution has {self.initial.size} states but the "
                f"transition matrix has {self.transition.shape[0]}"
            )
        if state_labels is not None and len(state_labels) != self.n_states:
            raise ValidationError(
                f"expected {self.n_states} state labels, got {len(state_labels)}"
            )
        self.state_labels = tuple(state_labels) if state_labels is not None else None
        # Caches for incremental dynamic programming.
        self._powers: list[np.ndarray] = [np.eye(self.n_states)]
        self._marginals: list[np.ndarray] = [self.initial.copy()]
        self._stationary: np.ndarray | None = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states ``k``."""
        return int(self.transition.shape[0])

    def with_initial(self, initial: Sequence[float] | np.ndarray) -> "MarkovChain":
        """A copy of this chain with a different initial distribution."""
        return MarkovChain(initial, self.transition, self.state_labels)

    def fingerprint(self) -> str:
        """Content hash of ``(q, P)`` — the full identity of this theta.

        Two chains with equal fingerprints are numerically identical (same
        exact float64 entries), so any calibration computed against one is
        valid for the other.  Used as the distribution-class component of
        mechanism calibration fingerprints in :mod:`repro.serving`.  Memoized
        — ``(q, P)`` never change after construction.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(np.ascontiguousarray(self.initial, dtype=np.float64).tobytes())
            digest.update(
                np.ascontiguousarray(self.transition, dtype=np.float64).tobytes()
            )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def with_stationary_initial(self) -> "MarkovChain":
        """A copy of this chain started from its stationary distribution."""
        return self.with_initial(self.stationary())

    # ------------------------------------------------------------------
    # Powers and marginals (cached, computed incrementally)
    # ------------------------------------------------------------------
    def power(self, n: int) -> np.ndarray:
        """``P^n`` with ``P^0 = I``; cached for all intermediate powers."""
        if n < 0:
            raise ValidationError(f"matrix power must be non-negative, got {n}")
        while len(self._powers) <= n:
            self._powers.append(self._powers[-1] @ self.transition)
        return self._powers[n]

    def marginal(self, t: int) -> np.ndarray:
        """Law of ``X_t`` as a length-``k`` vector (``t`` is 0-based)."""
        if t < 0:
            raise ValidationError(f"time index must be non-negative, got {t}")
        while len(self._marginals) <= t:
            self._marginals.append(self._marginals[-1] @ self.transition)
        return self._marginals[t]

    def log_power(self, n: int) -> np.ndarray:
        """Elementwise ``log P^n`` with ``-inf`` at structural zeros."""
        with np.errstate(divide="ignore"):
            return np.log(self.power(n))

    # ------------------------------------------------------------------
    # Stationary behaviour
    # ------------------------------------------------------------------
    def stationary(self) -> np.ndarray:
        """The stationary distribution ``pi`` solving ``pi P = pi``.

        For irreducible chains this is unique.  For reducible chains the
        least-squares solve returns one valid stationary vector; callers that
        need uniqueness should check :meth:`is_irreducible` first.
        """
        if self._stationary is None:
            k = self.n_states
            a = np.vstack([self.transition.T - np.eye(k), np.ones((1, k))])
            b = np.zeros(k + 1)
            b[-1] = 1.0
            pi, *_ = np.linalg.lstsq(a, b, rcond=None)
            pi = np.clip(pi, 0.0, None)
            total = pi.sum()
            if total <= 0:
                raise ValidationError("failed to compute a stationary distribution")
            self._stationary = pi / total
        return self._stationary

    def time_reversal(self) -> "MarkovChain":
        """The time-reversal chain ``P*`` of Definition 4.7.

        ``P*(x, y) pi(x) = P(y, x) pi(y)``.  States with zero stationary mass
        get a uniform row (they are never visited at stationarity, so the
        choice does not affect any computed quantity).
        """
        pi = self.stationary()
        k = self.n_states
        reversed_p = np.empty_like(self.transition)
        for x in range(k):
            if pi[x] <= 0:
                reversed_p[x, :] = 1.0 / k
            else:
                reversed_p[x, :] = self.transition[:, x] * pi / pi[x]
        # Normalize away round-off; rows of a true reversal sum to one.
        reversed_p = reversed_p / reversed_p.sum(axis=1, keepdims=True)
        return MarkovChain(pi, reversed_p, self.state_labels)

    def multiplicative_reversiblization(self) -> np.ndarray:
        """The matrix ``P P*`` whose eigengap drives Lemma 4.8 (Eq. 7)."""
        return self.transition @ self.time_reversal().transition

    def is_reversible(self, *, atol: float = 1e-9) -> bool:
        """Check detailed balance ``pi(x) P(x,y) == pi(y) P(y,x)``."""
        pi = self.stationary()
        flow = pi[:, None] * self.transition
        return bool(np.allclose(flow, flow.T, atol=atol))

    def is_irreducible(self) -> bool:
        """True when the transition digraph is strongly connected."""
        return _is_strongly_connected(self.transition > 0)

    def is_aperiodic(self) -> bool:
        """True when no integer k > 1 divides the length of every cycle of
        the transition digraph (networkx's aperiodicity criterion)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n_states))
        rows, cols = np.nonzero(self.transition > 0)
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
        try:
            return bool(nx.is_aperiodic(graph))
        except nx.NetworkXError:
            return False

    def eigengap(self, *, reversible: bool | None = None) -> float:
        """The eigengap ``g`` of Eq. (7) / Eq. (14).

        For reversible chains (``reversible=True`` or auto-detected):
        ``g = 2 * min{1 - |lambda| : P x = lambda x, |lambda| < 1}``.
        Otherwise: ``g = min{1 - |lambda| : P P* x = lambda x, |lambda| < 1}``.

        Returns 0.0 for chains whose peripheral spectrum has multiplicity
        greater than one (reducible or periodic chains do not mix).
        """
        if reversible is None:
            reversible = self.is_reversible()
        if reversible:
            lams = np.linalg.eigvals(self.transition)
            return 2.0 * _spectral_gap(lams)
        lams = np.linalg.eigvals(self.multiplicative_reversiblization())
        return _spectral_gap(lams)

    def pi_min(self) -> float:
        """Smallest stationary probability, ``min_x pi(x)`` (Eq. 6)."""
        return float(self.stationary().min())

    def mixing_scale(self) -> float:
        """Heuristic mixing-time scale ``log(1/pi_min)/g`` used in utility
        statements; ``inf`` for non-mixing chains."""
        gap = self.eigengap()
        if gap <= 0:
            return float("inf")
        return float(np.log(1.0 / self.pi_min()) / gap)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, length: int, rng: "int | np.random.Generator | None" = None) -> np.ndarray:
        """Sample a trajectory ``X_0, ..., X_{length-1}`` as ``int64``.

        Vectorized via per-row cumulative transition CDFs: one uniform draw
        per step with a binary search, which keeps million-step trajectories
        (the electricity experiment) tractable.
        """
        if length < 0:
            raise ValidationError(f"trajectory length must be non-negative, got {length}")
        gen = resolve_rng(rng)
        out = np.empty(length, dtype=np.int64)
        if length == 0:
            return out
        cdf_rows = np.cumsum(self.transition, axis=1)
        cdf_rows[:, -1] = 1.0
        init_cdf = np.cumsum(self.initial)
        init_cdf[-1] = 1.0
        uniforms = gen.random(length)
        out[0] = np.searchsorted(init_cdf, uniforms[0], side="right")
        state = out[0]
        for t in range(1, length):
            state = np.searchsorted(cdf_rows[state], uniforms[t], side="right")
            out[t] = state
        return out

    def sample_segments(
        self,
        lengths: Sequence[int],
        rng: "int | np.random.Generator | None" = None,
    ) -> list[np.ndarray]:
        """Sample independent trajectories with the given lengths."""
        gen = resolve_rng(rng)
        return [self.sample(int(length), gen) for length in lengths]

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    @classmethod
    def from_segments(
        cls,
        segments: Sequence[np.ndarray],
        n_states: int,
        *,
        smoothing: float = 0.0,
        initial: str = "stationary",
        state_labels: Sequence[str] | None = None,
    ) -> "MarkovChain":
        """Maximum-likelihood chain from independent trajectory segments.

        Parameters
        ----------
        segments:
            Iterable of integer state sequences; transitions are counted
            within each segment only (segments are independent restarts).
        n_states:
            State-space size ``k``.
        smoothing:
            Additive (Laplace) smoothing added to each transition count.
            The real-data experiments use a small positive value so that the
            estimated chain is irreducible and MQMApprox's mixing bounds
            apply.
        initial:
            ``"stationary"`` starts the estimated chain from its stationary
            distribution (the paper's choice for the real datasets);
            ``"empirical"`` uses the empirical distribution of segment heads;
            ``"uniform"`` uses the uniform distribution.
        """
        if smoothing < 0:
            raise ValidationError(f"smoothing must be non-negative, got {smoothing}")
        counts = np.full((n_states, n_states), float(smoothing))
        heads = np.zeros(n_states)
        for segment in segments:
            seq = np.asarray(segment, dtype=np.int64)
            if seq.size == 0:
                continue
            heads[seq[0]] += 1.0
            if seq.size > 1:
                np.add.at(counts, (seq[:-1], seq[1:]), 1.0)
        row_sums = counts.sum(axis=1)
        transition = np.where(
            row_sums[:, None] > 0, counts / np.maximum(row_sums, 1e-300)[:, None], 1.0 / n_states
        )
        chain = cls(np.full(n_states, 1.0 / n_states), transition, state_labels)
        if initial == "stationary":
            return chain.with_stationary_initial()
        if initial == "empirical":
            if heads.sum() <= 0:
                raise ValidationError("cannot use empirical initial: no non-empty segments")
            return chain.with_initial(heads / heads.sum())
        if initial == "uniform":
            return chain
        raise ValidationError(
            f"initial must be 'stationary', 'empirical' or 'uniform', got {initial!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MarkovChain(k={self.n_states})"


def _spectral_gap(eigenvalues: np.ndarray) -> float:
    """``min(1 - |lambda|)`` over non-peripheral eigenvalues.

    Exactly one eigenvalue of modulus one is expected (Perron root); if more
    remain after removing it, the chain does not mix and the gap is 0.
    """
    mods = np.sort(np.abs(eigenvalues))[::-1]
    rest = mods[1:]
    if rest.size == 0:
        return 1.0
    if rest[0] >= 1.0 - EIGEN_ATOL:
        return 0.0
    return float(1.0 - rest[0])


def _is_strongly_connected(adjacency: np.ndarray) -> bool:
    """Strong connectivity via two reachability passes (forward/backward)."""

    def reaches_all(adj: np.ndarray) -> bool:
        n = adj.shape[0]
        visited = np.zeros(n, dtype=bool)
        stack = [0]
        visited[0] = True
        while stack:
            node = stack.pop()
            for nxt in np.flatnonzero(adj[node]):
                if not visited[nxt]:
                    visited[nxt] = True
                    stack.append(int(nxt))
        return bool(visited.all())

    return reaches_all(adjacency) and reaches_all(adjacency.T)
