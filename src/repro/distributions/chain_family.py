"""Distribution classes ``Theta`` over Markov chains.

A Pufferfish instantiation fixes a class of plausible data distributions.
For the Markov-chain setting of Section 4.4 each ``theta`` is a pair
``(q, P)``.  This module provides:

* :class:`FiniteChainFamily` — an explicit list of chains, e.g. the running
  example ``Theta = {theta_1, theta_2}`` of Section 4.4 or the singleton
  empirical chains used in the real-data experiments (Section 5.3).
* :class:`IntervalChainFamily` — the synthetic-experiment family of
  Section 5.2: binary chains with ``p0, p1 in [alpha, beta]`` and **all**
  initial distributions.  Supplies closed-form ``pi_min`` and eigengap and a
  transition-matrix grid for per-theta algorithms (MQMExact, GK16), matching
  the gridding the paper itself uses for its runtime experiments.

The ``free_initial`` flag tells MQMExact whether to use the Appendix C.4
optimization (maximize the marginal term over all initial distributions in
closed form) instead of the fixed-initial term of Eq. (5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

import numpy as np

from repro.distributions.markov import MarkovChain
from repro.exceptions import NotApplicableError, ValidationError
from repro.utils.validation import check_positive, check_unit_interval


class ChainFamily(ABC):
    """Abstract distribution class over Markov chains of a fixed state space."""

    @property
    @abstractmethod
    def n_states(self) -> int:
        """State-space size shared by every chain in the family."""

    @property
    @abstractmethod
    def free_initial(self) -> bool:
        """True when the family contains *all* initial distributions for each
        of its transition matrices (triggers the Appendix C.4 path)."""

    @abstractmethod
    def chains(self) -> Iterator[MarkovChain]:
        """Iterate over representative chains (exact members for finite
        families, a grid for continuum families)."""

    @abstractmethod
    def pi_min(self) -> float:
        """``min_{theta, x} pi_theta(x)`` (Eq. 6)."""

    @abstractmethod
    def eigengap(self) -> float:
        """``g_Theta`` of Eq. (7)/(14): the worst (smallest) eigengap."""

    @property
    def reversible(self) -> bool:
        """True when every member chain is reversible (enables the tighter
        Lemma C.1 bound).  Subclasses may override with a cheap answer."""
        return all(chain.is_reversible() for chain in self.chains())

    def require_mixing(self) -> None:
        """Raise :class:`NotApplicableError` unless ``pi_min`` and the
        eigengap are positive (the hypotheses of Lemma 4.8)."""
        if self.pi_min() <= 0 or self.eigengap() <= 0:
            raise NotApplicableError(
                "MQMApprox requires every chain in Theta to be irreducible and "
                f"aperiodic (pi_min={self.pi_min():.3g}, g={self.eigengap():.3g})"
            )

    def fingerprint(self) -> tuple:
        """Hashable content identity of the family (the Theta component of a
        calibration-cache key).  Equal fingerprints must mean numerically
        identical families; the default hashes every representative chain
        (memoized — members never change after construction), so continuum
        families with closed-form parameters should override it with those
        parameters instead."""
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = (
                type(self).__name__,
                self.free_initial,
                tuple(chain.fingerprint() for chain in self.chains()),
            )
            self._fingerprint = cached
        return cached


class FiniteChainFamily(ChainFamily):
    """An explicit, finite set of chains ``{theta_1, ..., theta_m}``.

    Parameters
    ----------
    members:
        The chains.  All must share one state-space size.
    free_initial:
        Set when the listed transition matrices should be combined with every
        possible initial distribution (``Theta = simplex x {P_1, ..., P_m}``).
    """

    def __init__(self, members: Sequence[MarkovChain], *, free_initial: bool = False) -> None:
        members = list(members)
        if not members:
            raise ValidationError("a chain family needs at least one member")
        sizes = {chain.n_states for chain in members}
        if len(sizes) != 1:
            raise ValidationError(f"all chains must share a state space, got sizes {sorted(sizes)}")
        self._members = members
        self._free_initial = bool(free_initial)

    @classmethod
    def singleton(cls, chain: MarkovChain) -> "FiniteChainFamily":
        """The one-chain family used by the real-data experiments."""
        return cls([chain])

    @property
    def n_states(self) -> int:
        return self._members[0].n_states

    @property
    def free_initial(self) -> bool:
        return self._free_initial

    def chains(self) -> Iterator[MarkovChain]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def pi_min(self) -> float:
        return min(chain.pi_min() for chain in self._members)

    def eigengap(self) -> float:
        return min(chain.eigengap() for chain in self._members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FiniteChainFamily(n={len(self._members)}, k={self.n_states})"


class IntervalChainFamily(ChainFamily):
    """Binary chains with ``p0, p1 in [alpha, beta]`` and all initials.

    ``p0 = P(X_{t+1}=0 | X_t=0)`` and ``p1 = P(X_{t+1}=1 | X_t=1)`` — the
    parameterization of Section 5.2.  The paper visualizes families as
    ``Theta = [alpha, beta]`` with ``beta = 1 - alpha``; ``beta`` defaults
    accordingly but may be set independently.

    Closed forms used by MQMApprox (no gridding):

    * stationary distribution of ``(p0, p1)`` is proportional to
      ``(1-p1, 1-p0)``, so
      ``pi_min = (1 - beta) / ((1 - alpha) + (1 - beta))``;
    * the second eigenvalue of a binary chain is ``p0 + p1 - 1``, so the
      reversible eigengap (Eq. 14) is
      ``g = 2 * (1 - max(|2*beta - 1|, |2*alpha - 1|))``.

    Per-theta algorithms receive a grid of ``(p0, p1)`` pairs with spacing
    ``grid_step`` (both endpoints always included).
    """

    def __init__(self, alpha: float, beta: float | None = None, *, grid_step: float = 0.05) -> None:
        self.alpha = check_unit_interval(alpha, "alpha", open_ends=True)
        self.beta = (
            1.0 - self.alpha if beta is None else check_unit_interval(beta, "beta", open_ends=True)
        )
        if self.beta < self.alpha:
            raise ValidationError(f"beta ({self.beta}) must be >= alpha ({self.alpha})")
        self.grid_step = check_positive(grid_step, "grid_step")

    @property
    def n_states(self) -> int:
        return 2

    @property
    def free_initial(self) -> bool:
        return True

    @property
    def reversible(self) -> bool:
        # Every two-state chain satisfies detailed balance.
        return True

    def parameter_grid(self) -> np.ndarray:
        """1-D grid over ``[alpha, beta]`` including both endpoints."""
        if self.beta - self.alpha < 1e-12:
            return np.array([self.alpha])
        n_cells = max(1, int(np.ceil((self.beta - self.alpha) / self.grid_step)))
        return np.linspace(self.alpha, self.beta, n_cells + 1)

    @staticmethod
    def transition_for(p0: float, p1: float) -> np.ndarray:
        """Transition matrix of the binary chain with self-loop probs p0, p1."""
        return np.array([[p0, 1.0 - p0], [1.0 - p1, p1]])

    @staticmethod
    def stationary_for(p0: float, p1: float) -> np.ndarray:
        """Closed-form stationary distribution of the binary chain."""
        weights = np.array([1.0 - p1, 1.0 - p0])
        return weights / weights.sum()

    def chains(self) -> Iterator[MarkovChain]:
        """Grid chains, each started at its stationary distribution.

        The stationary start is a placeholder: consumers honoring
        ``free_initial`` re-optimize over all initial distributions.
        """
        grid = self.parameter_grid()
        for p0 in grid:
            for p1 in grid:
                yield MarkovChain(
                    self.stationary_for(float(p0), float(p1)),
                    self.transition_for(float(p0), float(p1)),
                )

    def pi_min(self) -> float:
        worst = (1.0 - self.beta) / ((1.0 - self.alpha) + (1.0 - self.beta))
        return float(worst)

    def eigengap(self) -> float:
        second = max(abs(2.0 * self.beta - 1.0), abs(2.0 * self.alpha - 1.0))
        return float(2.0 * (1.0 - second))

    def fingerprint(self) -> tuple:
        """Closed-form identity: the interval and grid fully determine the
        family, so hashing the (large) chain grid is unnecessary."""
        return ("IntervalChainFamily", self.alpha, self.beta, self.grid_step)

    def sample_theta(self, rng: np.random.Generator) -> MarkovChain:
        """Draw a chain per the paper's data-generation protocol: ``p0, p1``
        uniform on ``[alpha, beta]`` and the initial distribution uniform on
        the probability simplex."""
        p0 = float(rng.uniform(self.alpha, self.beta))
        p1 = float(rng.uniform(self.alpha, self.beta))
        initial = rng.dirichlet(np.ones(2))
        return MarkovChain(initial, self.transition_for(p0, p1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntervalChainFamily([{self.alpha:g}, {self.beta:g}], step={self.grid_step:g})"
