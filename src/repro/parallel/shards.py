"""Shard decomposition for parallel calibration.

Every expensive calibration in this library is a maximum (or a dictionary)
of *independent* sub-computations:

* ``MQMExact.sigma_max`` maximizes ``_sigma_for_chain`` over ``(chain index,
  segment length)`` pairs — each pair is one quilt search (Algorithm 3);
* ``MQMApprox.sigma_max`` maximizes ``_sigma_for_length`` over the distinct
  segment lengths (Algorithm 4's candidate search per length);
* ``wasserstein_bound`` maximizes per-model suprema over the models of
  ``Theta`` (Algorithm 1's outer loop);
* ``MarkovQuiltMechanism.sigma_max`` (Algorithm 2, general networks)
  maximizes ``sigma_for_node`` over the nodes — each node is one quilt
  search whose max-influence kernels run on the worker's own
  :mod:`repro.inference` variable-elimination engine (networks pickle as
  their CPD arrays; the engine plan is rebuilt from the fingerprint-keyed
  registry on first use, so shard payloads stay small).  Candidate sets are
  pruned per node by :func:`per_node_general_shard`, which ships the exact
  lists the serial search walks — whether they came from the default
  distance shells or a :mod:`repro.distributions.structured` generator —
  and strips the (possibly unpicklable) generator strategy itself.  The
  clone is a ``copy.copy``, so subclasses ride along unchanged: a
  :class:`~repro.core.gaussian.GaussianMarkovQuiltMechanism` shard carries
  the subclass (with its ``delta`` and Gaussian ``_quilt_score``) and the
  worker's per-node search is the Gaussian one, bit-identically;
* an epsilon sweep evaluates ``sigma_max`` per privacy level;
* a multi-mechanism trial run calibrates each mechanism separately.

This module turns each of those sub-computations into a :class:`Shard` — a
picklable, self-contained work item — plus a module-level :func:`run_shard`
dispatcher that a ``ProcessPoolExecutor`` worker (or the in-process serial
fallback) executes.  Determinism rule: a shard runs *exactly the code the
serial path runs* on *exactly the inputs the serial path passes*, so every
shard value is bit-identical to the serial intermediate, and the merge
operations (float ``max`` and dictionary fill-in) are order-insensitive —
which is what makes the parallel calibration bit-identical end to end (see
``docs/architecture.md``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import ValidationError

#: Shard kinds understood by :func:`run_shard`.
KIND_MQM_EXACT = "mqm-exact-chain-length"
KIND_MQM_APPROX = "mqm-approx-length"
KIND_MQM_GENERAL = "mqm-general-node"
KIND_WASSERSTEIN = "wasserstein-model"
KIND_EPSILON = "epsilon-sweep"
KIND_CALIBRATION = "mechanism-calibration"

_KNOWN_KINDS = frozenset(
    {
        KIND_MQM_EXACT,
        KIND_MQM_APPROX,
        KIND_MQM_GENERAL,
        KIND_WASSERSTEIN,
        KIND_EPSILON,
        KIND_CALIBRATION,
    }
)


@dataclass(frozen=True)
class Shard:
    """One independent unit of calibration work.

    Attributes
    ----------
    kind:
        Dispatch tag (one of the ``KIND_*`` constants).
    key:
        Merge key the parent uses to place the result — e.g. the segment
        length for a per-length shard, the epsilon for a sweep shard.
    payload:
        Everything the worker needs, picklable.  Mechanism objects are
        shipped as *pristine clones* (no warm tables) so the pickled payload
        stays small.
    """

    kind: str
    key: Any
    payload: tuple

    def __post_init__(self) -> None:
        if self.kind not in _KNOWN_KINDS:
            raise ValidationError(f"unknown shard kind {self.kind!r}")

    def describe(self) -> str:
        """Human-readable rendering for plans and logs."""
        return f"{self.kind}[{self.key!r}]"


@dataclass(frozen=True)
class ShardResult:
    """The outcome of one shard: ``(kind, key, value)``.

    ``value`` is JSON-safe for the float-valued kinds; the
    ``mechanism-calibration`` kind carries ``(calibration_payload, state)``
    dictionaries (the exact objects the serving cache stores).
    """

    kind: str
    key: Any
    value: Any


def run_shard(shard: Shard) -> ShardResult:
    """Execute one shard; runs in a worker process or inline (serial
    fallback) — both paths produce the identical value by construction."""
    if shard.kind == KIND_MQM_EXACT:
        # The chain rides in the payload (chains pickle as their two small
        # arrays) so workers never re-enumerate the family; the index is the
        # serial enumeration position, used only for table-cache keying.
        mechanism, chain, chain_index, length = shard.payload
        value = float(mechanism._sigma_for_chain(chain_index, chain, length))
        return ShardResult(shard.kind, shard.key, value)
    if shard.kind == KIND_MQM_APPROX:
        (mechanism,) = shard.payload
        value = float(mechanism._sigma_for_length(int(shard.key)))
        return ShardResult(shard.kind, shard.key, value)
    if shard.kind == KIND_MQM_GENERAL:
        # One node's quilt search (Definition 4.5).  The worker resolves the
        # networks through its own engine registry, so repeated shards for
        # one Theta share factors and elimination orders within the process.
        mechanism, node = shard.payload
        sigma, quilt = mechanism.sigma_for_node(node)
        return ShardResult(shard.kind, shard.key, (float(sigma), quilt))
    if shard.kind == KIND_WASSERSTEIN:
        from repro.core.wasserstein import model_supremum

        instantiation, query, theta_index = shard.payload
        value = float(model_supremum(instantiation, query, theta_index))
        return ShardResult(shard.kind, shard.key, value)
    if shard.kind == KIND_EPSILON:
        mechanism, lengths = shard.payload
        value = float(mechanism.with_epsilon(float(shard.key)).sigma_max(lengths))
        return ShardResult(shard.kind, shard.key, value)
    if shard.kind == KIND_CALIBRATION:
        mechanism, query, data = shard.payload
        calibration = mechanism.calibrate(query, data)
        state = (
            mechanism.export_calibration_state()
            if hasattr(mechanism, "export_calibration_state")
            else None
        )
        return ShardResult(shard.kind, shard.key, (calibration.to_payload(), state))
    raise ValidationError(f"unknown shard kind {shard.kind!r}")  # pragma: no cover


def per_node_general_shard(template: Any, node: str, candidates: Any) -> Shard:
    """One Algorithm 2 node shard carrying only that node's quilt candidates.

    ``template`` is a pristine :class:`~repro.core.markov_quilt.
    MarkovQuiltMechanism` clone; ``candidates`` is the **exact** candidate
    list the serial search would walk for ``node`` (shared object identity
    with the parent's ``quilt_sets`` entry), so the worker's
    ``sigma_for_node`` is bit-identical to the serial one by construction —
    this holds for the default distance shells and for every
    :mod:`repro.distributions.structured` generator alike, because the
    generator already ran in the parent's ``__init__`` and the materialized
    quilts are all a worker needs.  Pruning to one node keeps total payload
    volume linear in node count (shipping the full map in every shard would
    be quadratic), and the clone drops the generator strategy object itself:
    a user-supplied generator may be an unpicklable closure, which would
    otherwise force the entire plan inline for no reason.
    """
    clone = copy.copy(template)
    clone._sigma_cache = {}
    clone.quilt_sets = {node: list(candidates)}
    clone.quilt_generator = None
    return Shard(KIND_MQM_GENERAL, node, (clone, node))


def segment_lengths_of(data: Any) -> tuple[int, ...]:
    """The multiset of segment lengths a chain mechanism calibrates against
    — the same rule ``noise_scale`` applies (``segment_lengths`` attribute,
    else the flat array size)."""
    lengths = getattr(data, "segment_lengths", None)
    if lengths:
        return tuple(int(n) for n in lengths)
    return (int(np.asarray(data).size),)
