"""ParallelCalibrator: sharded multi-core calibration.

The calibration cost of every mechanism in this library (Table 2's quantity)
decomposes into independent shards — see :mod:`repro.parallel.shards` for the
decomposition per mechanism.  :class:`ParallelCalibrator` plans those shards,
executes them on a ``ProcessPoolExecutor`` (or inline, when a pool cannot
pay for itself), and merges the results back into the mechanism's own memo
structures, after which the mechanism's ordinary serial
:meth:`~repro.core.laplace.Mechanism.calibrate` produces the final
:class:`~repro.core.laplace.Calibration` from warm lookups.

Determinism guarantee
---------------------
Parallel calibration is **bit-identical** to serial calibration, not merely
close: each shard runs the exact serial sub-computation on the exact serial
inputs, and the merges are order-insensitive (float ``max`` is associative
and commutative exactly — no additions are reordered; per-key dictionary
fills never combine two shard values).  The equivalence is asserted across a
(T, state count, epsilon) grid in ``tests/test_parallel_calibrator.py`` and
re-asserted on every run of ``benchmarks/bench_parallel_calibration.py``.

Fallback rules
--------------
The pool is skipped (shards run inline, same results) when any of:

* ``max_workers <= 1`` (the degenerate single-worker configuration);
* fewer than ``min_shards`` shards exist;
* the plan's estimated cost is below ``min_parallel_cost`` (small payloads
  lose more to process startup and pickling than they gain);
* a shard payload is unpicklable (e.g. a ``ScalarQuery`` wrapping a lambda).

Worker processes are per-call, not long-lived: calibration is a cold-path
operation (the serving layer caches its results), so keeping a pool warm
between calls would hold memory for no benefit.
"""

from __future__ import annotations

import copy
import os
import pickle
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.core.laplace import Calibration, Mechanism
from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import Query
from repro.core.wasserstein import WassersteinMechanism
from repro.exceptions import ValidationError
from repro.parallel.shards import (
    KIND_CALIBRATION,
    KIND_EPSILON,
    KIND_MQM_APPROX,
    KIND_MQM_EXACT,
    KIND_MQM_GENERAL,
    KIND_WASSERSTEIN,
    Shard,
    ShardResult,
    per_node_general_shard,
    run_shard,
    segment_lengths_of,
)

#: Internal-cache attributes stripped from mechanism clones before pickling.
#: Shipping warm tables (numpy arrays, per-length memos) would bloat every
#: shard payload with state the worker is about to recompute or not need.
_CACHE_ATTRS = ("_sigma_cache", "_table_cache", "_bound_cache", "_warm_bounds")


def _pristine(mechanism: Mechanism) -> Mechanism:
    """A shallow clone of ``mechanism`` with empty internal caches.

    Shares the (immutable) family/instantiation objects; never mutates the
    original.  Cloning instead of re-running ``__init__`` keeps derived
    parameters (e.g. MQMApprox's ``pi_min``/eigengap) bit-identical without
    recomputing them in the parent.
    """
    clone = copy.copy(mechanism)
    for attr in _CACHE_ATTRS:
        if hasattr(clone, attr):
            setattr(clone, attr, {})
    return clone


class ParallelCalibrator:
    """Execute a calibration as independent shards across worker processes.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  ``<= 1`` disables the
        pool entirely (every plan runs inline).
    min_shards:
        Minimum shard count before a pool is considered (default 2 — a
        single shard gains nothing from a worker process).
    min_parallel_cost:
        Minimum estimated plan cost (sum of per-shard cost hints, roughly
        "segment positions searched") before a pool is considered.  Small
        payloads run inline; set to 0 to force pooling in tests.
    executor_factory:
        Called as ``factory(n_workers)`` to build the executor; defaults to
        ``ProcessPoolExecutor``.  Injection point for tests.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        min_shards: int = 2,
        min_parallel_cost: float = 512.0,
        executor_factory: Callable[[int], Executor] | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        if min_shards < 1:
            raise ValidationError(f"min_shards must be >= 1, got {min_shards}")
        self.max_workers = int(max_workers)
        self.min_shards = int(min_shards)
        self.min_parallel_cost = float(min_parallel_cost)
        self._executor_factory = executor_factory
        #: Execution counters (introspection for tests and benchmarks).
        self.pool_runs = 0
        self.serial_runs = 0
        self.shards_executed = 0

    # -- planning --------------------------------------------------------
    def plan(self, mechanism: Mechanism, query: Query, data: Any) -> list[Shard]:
        """The shard decomposition :meth:`calibrate` would execute.

        Empty when the mechanism is already warm for this workload or when
        its calibration has no known decomposition (baselines) — in both
        cases :meth:`calibrate` simply runs the serial path.
        """
        if isinstance(mechanism, MQMExact):
            lengths = segment_lengths_of(data)
            key = tuple(sorted(set(lengths)))
            if any(n < 1 for n in key):
                raise ValidationError("segment lengths must be >= 1")
            if key in mechanism._sigma_cache:
                return []
            template = _pristine(mechanism)
            return [
                Shard(
                    KIND_MQM_EXACT,
                    (index, length),
                    (template, chain, index, length),
                )
                for index, chain in enumerate(mechanism.family.chains())
                for length in key
            ]
        if isinstance(mechanism, MQMApprox):
            lengths = segment_lengths_of(data)
            missing = sorted(
                {int(n) for n in lengths} - set(mechanism._sigma_cache)
            )
            template = _pristine(mechanism)
            return [
                Shard(KIND_MQM_APPROX, length, (template,)) for length in missing
            ]
        if isinstance(mechanism, MarkovQuiltMechanism):
            # Algorithm 2: one shard per node whose quilt search is cold.
            # Each clone ships Theta (networks pickle as their CPD arrays;
            # the worker's inference-engine plan is rebuilt from the
            # fingerprint-keyed registry) but only *its own node's* quilt
            # candidates — see per_node_general_shard for the pruning and
            # generator-stripping rules.  Subclasses match here too:
            # GaussianMarkovQuiltMechanism shards through the same plan,
            # and the copy.copy clone keeps its delta and Gaussian score.
            missing = [
                node
                for node in mechanism.reference.nodes
                if node not in mechanism._sigma_cache
            ]
            template = _pristine(mechanism)
            return [
                per_node_general_shard(template, node, mechanism.quilt_sets[node])
                for node in missing
            ]
        if isinstance(mechanism, WassersteinMechanism):
            if query.output_dim != 1:
                return []  # let the serial path raise its ValidationError
            signature = query.signature()
            if (
                signature in mechanism._bound_cache
                or repr(signature) in mechanism._warm_bounds
            ):
                return []
            return [
                Shard(
                    KIND_WASSERSTEIN,
                    theta_index,
                    (mechanism.instantiation, query, theta_index),
                )
                for theta_index in range(len(mechanism.instantiation.models))
            ]
        return []

    # -- execution -------------------------------------------------------
    def _plan_cost(self, shards: Sequence[Shard]) -> float:
        cost = 0.0
        for shard in shards:
            if shard.kind == KIND_MQM_EXACT:
                cost += float(shard.payload[2])
            elif shard.kind == KIND_MQM_APPROX:
                cost += float(shard.key)
            elif shard.kind == KIND_MQM_GENERAL:
                # Cost hint: one variable-elimination run per candidate
                # quilt per theta (the node's search loop body).
                mechanism = shard.payload[0]
                cost += 32.0 * len(mechanism.quilt_sets.get(shard.key, ())) * len(
                    mechanism.networks
                )
            elif shard.kind == KIND_EPSILON:
                cost += float(sum(shard.payload[1]))
            else:
                cost += 128.0
        return cost

    def execute(self, shards: Sequence[Shard]) -> list[ShardResult]:
        """Run shards — pooled when worthwhile and possible, else inline.

        Both paths execute :func:`~repro.parallel.shards.run_shard` on the
        same objects, so the results are identical by construction; only
        wall-clock differs.
        """
        shards = list(shards)
        if not shards:
            return []
        self.shards_executed += len(shards)
        workers = min(self.max_workers, len(shards))
        if (
            workers <= 1
            or len(shards) < self.min_shards
            or self._plan_cost(shards) < self.min_parallel_cost
            or not _picklable(shards)
        ):
            self.serial_runs += 1
            return [run_shard(shard) for shard in shards]
        self.pool_runs += 1
        factory = self._executor_factory or (
            lambda n: ProcessPoolExecutor(max_workers=n)
        )
        chunksize = max(1, len(shards) // (workers * 4))
        with factory(workers) as pool:
            return list(pool.map(run_shard, shards, chunksize=chunksize))

    # -- public entry points ---------------------------------------------
    def calibrate(self, mechanism: Mechanism, query: Query, data: Any) -> Calibration:
        """Sharded equivalent of ``mechanism.calibrate(query, data)``.

        Plans, executes, merges the shard results into the mechanism's memo
        state, and finishes with the ordinary serial ``calibrate`` — which
        now only performs warm lookups.  Mechanisms without a decomposition
        run fully serial.  The returned :class:`Calibration` (scale *and*
        diagnostics) is bit-identical to the serial one.
        """
        shards = self.plan(mechanism, query, data)
        if shards:
            self._merge(mechanism, query, data, self.execute(shards))
        return mechanism.calibrate(query, data)

    def sigma_sweep(
        self,
        mechanism: "MQMExact | MQMApprox",
        lengths: Iterable[int] | int,
        epsilons: Iterable[float],
    ) -> dict[float, float]:
        """Sharded equivalent of ``mechanism.sigma_sweep`` — one shard per
        privacy level, each evaluating ``with_epsilon(eps).sigma_max``."""
        if isinstance(lengths, int):
            lengths = (lengths,)
        lengths = tuple(int(n) for n in lengths)
        epsilons = [float(eps) for eps in epsilons]
        template = _pristine(mechanism)
        shards = [
            Shard(KIND_EPSILON, eps, (template, lengths)) for eps in epsilons
        ]
        results = {result.key: float(result.value) for result in self.execute(shards)}
        return {eps: results[eps] for eps in epsilons}

    def calibrate_many(
        self,
        mechanisms: Sequence[Mechanism],
        query: Query,
        data: Any,
    ) -> list[Calibration]:
        """Calibrate several mechanisms against one workload — one shard per
        mechanism (the multi-mechanism trial-run shape of the experiment
        scripts).  Each parent mechanism is warm-started from its worker's
        exported state, so follow-up ``calibrate``/``noise_scale`` calls on
        the originals are lookups."""
        shards = [
            Shard(KIND_CALIBRATION, position, (_pristine(mechanism), query, data))
            for position, mechanism in enumerate(mechanisms)
        ]
        by_position = {result.key: result.value for result in self.execute(shards)}
        calibrations = []
        for position, mechanism in enumerate(mechanisms):
            payload, state = by_position[position]
            if state and hasattr(mechanism, "warm_start"):
                mechanism.warm_start(state)
            calibrations.append(Calibration.from_payload(payload))
        return calibrations

    # -- merging ---------------------------------------------------------
    def _merge(
        self,
        mechanism: Mechanism,
        query: Query,
        data: Any,
        results: Sequence[ShardResult],
    ) -> None:
        """Fold shard results into the mechanism's own memo structures,
        reproducing exactly the state the serial computation leaves behind."""
        if isinstance(mechanism, MQMExact):
            key = tuple(sorted(set(segment_lengths_of(data))))
            sigma = 0.0
            for result in results:
                sigma = max(sigma, float(result.value))
            mechanism._sigma_cache[key] = sigma
        elif isinstance(mechanism, MQMApprox):
            for result in results:
                mechanism._sigma_cache[int(result.key)] = float(result.value)
        elif isinstance(mechanism, MarkovQuiltMechanism):
            for result in results:
                sigma, quilt = result.value
                mechanism._sigma_cache[str(result.key)] = (float(sigma), quilt)
        elif isinstance(mechanism, WassersteinMechanism):
            supremum = 0.0
            for result in results:
                supremum = max(supremum, float(result.value))
            mechanism._bound_cache[query.signature()] = supremum
        else:  # pragma: no cover - plan() never shards unknown mechanisms
            raise ValidationError(
                f"no merge rule for mechanism {type(mechanism).__name__}"
            )


def _picklable(shards: Sequence[Shard]) -> bool:
    """Whether every shard survives pickling (process-pool transport).

    Queries wrapping lambdas/closures and other process-local objects fail
    here; the caller falls back to inline execution, which needs no
    transport and produces the same results.
    """
    try:
        pickle.dumps(shards)
        return True
    except Exception:
        return False


def as_calibrator(
    spec: "bool | int | ParallelCalibrator | None",
) -> ParallelCalibrator | None:
    """Normalize the user-facing ``parallel=`` option.

    ``None``/``False`` → no parallelism; ``True`` → default calibrator
    (``os.cpu_count()`` workers); an ``int`` → that many workers; an
    existing :class:`ParallelCalibrator` is used as-is.
    """
    if spec is None or spec is False:
        return None
    if isinstance(spec, ParallelCalibrator):
        return spec
    if spec is True:
        return ParallelCalibrator()
    if isinstance(spec, int):
        return ParallelCalibrator(max_workers=spec)
    raise ValidationError(
        f"parallel= expects None, bool, int, or ParallelCalibrator, got {spec!r}"
    )
