"""Parallel calibration: shard the expensive noise-scale computations.

The paper's dominant cost (Table 2) is calibration — per-length quilt
searches for the chain mechanisms, per-model suprema for the Wasserstein
Mechanism.  Those sub-computations are independent, so this package executes
them as shards on a process pool and merges the results into exactly the
state the serial path produces (bit-identical — see
``docs/architecture.md``).

* :class:`ParallelCalibrator` — plan/execute/merge engine with a serial
  fallback for degenerate or small workloads.
* :func:`as_calibrator` — normalizes the ``parallel=`` option accepted by
  :class:`~repro.serving.PrivacyEngine` and
  :meth:`~repro.core.laplace.Mechanism.calibrate`.
* :class:`Shard` / :func:`run_shard` — the picklable work-item model.
"""

from repro.parallel.calibrator import ParallelCalibrator, as_calibrator
from repro.parallel.shards import (
    Shard,
    ShardResult,
    per_node_general_shard,
    run_shard,
    segment_lengths_of,
)

__all__ = [
    "ParallelCalibrator",
    "Shard",
    "ShardResult",
    "as_calibrator",
    "per_node_general_shard",
    "run_shard",
    "segment_lengths_of",
]
