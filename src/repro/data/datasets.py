"""Time-series dataset containers.

The experiments treat a recording as a set of independent Markov-chain
*segments*: the activity data splits whenever a gap exceeds 10 minutes
("we treat gaps of more than 10 minutes as the starting point of a new
independent Markov Chain", Section 5.3.1), and the electricity data is a
single million-step segment.

:class:`TimeSeriesDataset` carries the segments plus the state-space size;
mechanisms read ``segment_lengths`` (noise calibration) and queries read
``concatenated`` (evaluation).  :class:`Participant` and :class:`StudyGroup`
model the cohort structure of the activity experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import as_state_sequence


@dataclass
class TimeSeriesDataset:
    """Independent integer-state segments over a common state space."""

    segments: list[np.ndarray]
    n_states: int
    name: str = ""
    _concatenated: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_states < 1:
            raise ValidationError(f"n_states must be >= 1, got {self.n_states}")
        cleaned = []
        for segment in self.segments:
            seq = as_state_sequence(segment, self.n_states, "segment")
            if seq.size:
                cleaned.append(seq)
        if not cleaned:
            raise ValidationError("dataset needs at least one non-empty segment")
        self.segments = cleaned

    @classmethod
    def from_sequence(
        cls, values: Sequence[int] | np.ndarray, n_states: int, name: str = ""
    ) -> "TimeSeriesDataset":
        """Single-segment dataset."""
        return cls([np.asarray(values)], n_states, name)

    @classmethod
    def from_timestamps(
        cls,
        values: Sequence[int] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
        n_states: int,
        *,
        gap_threshold: float,
        name: str = "",
    ) -> "TimeSeriesDataset":
        """Split a recording into segments wherever consecutive timestamps
        differ by more than ``gap_threshold`` (the paper's 10-minute rule)."""
        values = np.asarray(values)
        times = np.asarray(timestamps, dtype=float)
        if values.shape != times.shape:
            raise ValidationError("values and timestamps must align")
        if values.size == 0:
            raise ValidationError("empty recording")
        order = np.argsort(times, kind="stable")
        values = values[order]
        times = times[order]
        breaks = np.flatnonzero(np.diff(times) > gap_threshold) + 1
        segments = np.split(values, breaks)
        return cls(list(segments), n_states, name)

    @property
    def segment_lengths(self) -> tuple[int, ...]:
        """Lengths of the independent segments."""
        return tuple(int(s.size) for s in self.segments)

    @property
    def n_observations(self) -> int:
        """Total number of records across segments."""
        return int(sum(self.segment_lengths))

    @property
    def longest_segment(self) -> int:
        """Length of the longest segment (GroupDP's group size)."""
        return int(max(self.segment_lengths))

    @property
    def concatenated(self) -> np.ndarray:
        """All records in one array (cached)."""
        if self._concatenated is None or self._concatenated.size != self.n_observations:
            self._concatenated = np.concatenate(self.segments)
        return self._concatenated

    def relative_frequencies(self) -> np.ndarray:
        """Exact relative-frequency histogram over states."""
        counts = np.bincount(self.concatenated, minlength=self.n_states)
        return counts.astype(float) / self.n_observations

    def merged_with(self, other: "TimeSeriesDataset", name: str = "") -> "TimeSeriesDataset":
        """Union of two datasets' segments (same state space required)."""
        if other.n_states != self.n_states:
            raise ValidationError(
                f"cannot merge datasets with {self.n_states} and {other.n_states} states"
            )
        return TimeSeriesDataset(self.segments + other.segments, self.n_states, name)

    def __len__(self) -> int:
        return self.n_observations


@dataclass
class Participant:
    """One study participant and their recording."""

    participant_id: str
    dataset: TimeSeriesDataset


@dataclass
class StudyGroup:
    """A named cohort of participants (cyclists, older women, ...)."""

    name: str
    participants: list[Participant]

    def __post_init__(self) -> None:
        if not self.participants:
            raise ValidationError(f"study group {self.name!r} has no participants")
        sizes = {p.dataset.n_states for p in self.participants}
        if len(sizes) != 1:
            raise ValidationError("all participants must share one state space")

    @property
    def n_states(self) -> int:
        """State-space size shared by the cohort."""
        return self.participants[0].dataset.n_states

    @property
    def n_participants(self) -> int:
        """Cohort size."""
        return len(self.participants)

    def pooled_dataset(self) -> TimeSeriesDataset:
        """All participants' segments pooled (the aggregate task's input)."""
        segments: list[np.ndarray] = []
        for participant in self.participants:
            segments.extend(participant.dataset.segments)
        return TimeSeriesDataset(segments, self.n_states, f"{self.name}-pooled")

    def participant_sizes(self) -> list[int]:
        """Observations per participant (drives the DP baseline)."""
        return [p.dataset.n_observations for p in self.participants]
