"""Simulated household electricity consumption (substitute for Makonin et al.).

The paper's electricity dataset (Section 5.3.2) records one household's
power draw every minute for about two years (~1M observations), discretized
into 51 bins of 200 W.  The data is not available offline, so we synthesize
a series with the same structure — see DESIGN.md Section 4:

* 51 states, single unbroken segment (so GroupDP's group is the whole
  series and its error is ``~ 2 k / epsilon``, the catastrophic Table 3 row);
* heavy-tailed stationary occupancy: a handful of baseload states carry most
  of the mass while high-power states are rare (small ``pi_min``);
* banded, sticky transitions: power level mostly persists or drifts to
  nearby bins, with occasional appliance-switch jumps, giving the moderate
  mixing times that make MQM noise scales a few hundred — matching the
  order of magnitude implied by Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import TimeSeriesDataset
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError
from repro.utils.rngtools import resolve_rng
from repro.utils.validation import as_transition_matrix

#: Number of 200 W discretization bins used by the paper.
N_POWER_STATES = 51


def default_power_chain(
    n_states: int = N_POWER_STATES,
    *,
    stickiness: float = 0.86,
    drift_scale: float = 2.5,
    jump_probability: float = 0.02,
    occupancy_decay: float = 0.12,
) -> MarkovChain:
    """The generator chain for the synthetic power series.

    Rows mix a self-loop (``stickiness``), a local Gaussian drift over
    nearby bins (``drift_scale`` bins wide), and a small jump kernel toward
    the baseload profile (``jump_probability``) — appliances switching on or
    off.  The jump target profile ``exp(-occupancy_decay * state)`` makes low
    bins dominate, producing the heavy-tailed occupancy of a real household.
    """
    if n_states < 2:
        raise ValidationError(f"n_states must be >= 2, got {n_states}")
    states = np.arange(n_states)
    base_profile = np.exp(-occupancy_decay * states)
    base_profile /= base_profile.sum()
    matrix = np.zeros((n_states, n_states))
    for state in states:
        drift = np.exp(-0.5 * ((states - state) / drift_scale) ** 2)
        drift[state] = 0.0
        drift /= drift.sum()
        row = (1.0 - stickiness - jump_probability) * drift + jump_probability * base_profile
        row[state] += stickiness
        matrix[state] = row / row.sum()
    chain = MarkovChain(np.full(n_states, 1.0 / n_states), as_transition_matrix(matrix))
    return chain.with_stationary_initial()


def generate_power_dataset(
    length: int = 1_000_000,
    rng: "int | np.random.Generator | None" = None,
    *,
    chain: MarkovChain | None = None,
) -> tuple[TimeSeriesDataset, MarkovChain]:
    """A single-segment synthetic power series plus its generator chain."""
    if length < 1:
        raise ValidationError(f"length must be >= 1, got {length}")
    gen = resolve_rng(rng)
    chain = chain or default_power_chain()
    data = chain.sample(length, gen)
    dataset = TimeSeriesDataset.from_sequence(data, chain.n_states, "power")
    return dataset, chain
