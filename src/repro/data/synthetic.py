"""Synthetic binary-chain data for the Section 5.2 simulations.

The paper's protocol: given a family ``Theta = [alpha, beta]``, draw
``p0, p1`` uniformly from ``[alpha, beta]`` and an initial distribution
uniformly from the probability simplex, then sample a length-T trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import TimeSeriesDataset
from repro.distributions.chain_family import IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError
from repro.utils.rngtools import resolve_rng


def sample_binary_dataset(
    family: IntervalChainFamily,
    length: int,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[TimeSeriesDataset, MarkovChain]:
    """One synthetic trajectory plus the chain that generated it."""
    if length < 1:
        raise ValidationError(f"length must be >= 1, got {length}")
    gen = resolve_rng(rng)
    theta = family.sample_theta(gen)
    data = theta.sample(length, gen)
    return TimeSeriesDataset.from_sequence(data, family.n_states, "synthetic"), theta
