"""Empirical Markov-chain estimation.

The real-data experiments (Section 5.3) take ``Theta`` to be the singleton
``{(q_theta, P_theta)}`` where ``P_theta`` is the empirical transition matrix
of the dataset and ``q_theta`` its stationary distribution.  This module
wraps :meth:`MarkovChain.from_segments` with the dataset container and adds
the small Laplace smoothing that keeps the estimated chain irreducible and
aperiodic (a requirement of MQMApprox's mixing bounds; raw counts can leave
unvisited states or structurally zero transitions).
"""

from __future__ import annotations

from repro.data.datasets import StudyGroup, TimeSeriesDataset
from repro.distributions.markov import MarkovChain


def empirical_chain(
    data: TimeSeriesDataset | StudyGroup,
    *,
    smoothing: float = 0.5,
    initial: str = "stationary",
) -> MarkovChain:
    """Estimate ``(q, P)`` from a dataset or a whole study group.

    Parameters
    ----------
    data:
        A dataset, or a :class:`StudyGroup` whose participants' segments are
        pooled (the paper estimates "a single empirical transition matrix
        based on the entire group").
    smoothing:
        Additive count smoothing; 0 disables it.
    initial:
        Passed to :meth:`MarkovChain.from_segments` (default: stationary,
        matching the experiments).
    """
    if isinstance(data, StudyGroup):
        dataset = data.pooled_dataset()
    else:
        dataset = data
    return MarkovChain.from_segments(
        dataset.segments,
        dataset.n_states,
        smoothing=smoothing,
        initial=initial,
    )
