"""Simulated physical-activity cohorts (substitute for Ellis et al.).

The paper's activity dataset (Section 5.3.1) is not redistributable, so we
synthesize cohorts with the same statistical profile — see DESIGN.md
Section 4 for the substitution rationale.  Matching properties:

* three cohorts: 40 cyclists, 16 older women, 36 overweight women;
* four activities — active, standing still, standing moving, sedentary —
  sampled roughly every 12 seconds while participants are awake;
* around 9-10k observations per person on average, recorded in segments
  (gaps over 10 minutes start a new independent chain, which also bounds
  GroupDP's group size by the longest segment);
* very sticky transition matrices (activities persist for minutes), with the
  cohort-level stationary profiles visible in Figure 4's lower row:
  cyclists spend the most time active, overweight women the most sedentary.

Per-participant heterogeneity perturbs the cohort matrix so the estimated
group transition matrix (the experiments' ``theta``) is not exactly the
generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Participant, StudyGroup
from repro.data.datasets import TimeSeriesDataset
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError
from repro.utils.rngtools import resolve_rng
from repro.utils.validation import as_transition_matrix

#: Activity labels, in state order.
ACTIVITY_STATES = ("active", "stand_still", "stand_moving", "sedentary")


def _sticky_matrix(stay: np.ndarray, attraction: np.ndarray) -> np.ndarray:
    """Build a sticky transition matrix from per-state self-loop
    probabilities and a leave-destination profile."""
    k = stay.size
    matrix = np.zeros((k, k))
    for state in range(k):
        weights = attraction.copy()
        weights[state] = 0.0
        weights = weights / weights.sum()
        matrix[state] = weights * (1.0 - stay[state])
        matrix[state, state] = stay[state]
    return as_transition_matrix(matrix)


@dataclass(frozen=True)
class CohortProfile:
    """Generative profile of one cohort."""

    name: str
    n_participants: int
    transition: np.ndarray
    mean_observations: int = 9500
    mean_segments: int = 14
    heterogeneity: float = 0.15

    def chain(self) -> MarkovChain:
        """The cohort-level chain, started at stationarity."""
        base = MarkovChain(
            np.full(len(ACTIVITY_STATES), 1.0 / len(ACTIVITY_STATES)),
            self.transition,
            ACTIVITY_STATES,
        )
        return base.with_stationary_initial()


def default_cohorts() -> list[CohortProfile]:
    """The three cohorts of the activity experiments.

    Self-loop probabilities near 0.99 encode multi-minute activity bouts at
    12-second sampling; the leave-destination profile shapes the stationary
    distribution to match the qualitative Figure 4 patterns.
    """
    cyclist = _sticky_matrix(
        stay=np.array([0.990, 0.972, 0.975, 0.988]),
        attraction=np.array([0.38, 0.14, 0.18, 0.30]),
    )
    older = _sticky_matrix(
        stay=np.array([0.978, 0.975, 0.973, 0.992]),
        attraction=np.array([0.12, 0.18, 0.20, 0.50]),
    )
    overweight = _sticky_matrix(
        stay=np.array([0.972, 0.974, 0.970, 0.994]),
        attraction=np.array([0.08, 0.15, 0.15, 0.62]),
    )
    return [
        CohortProfile("cyclist", 40, cyclist),
        CohortProfile("older_woman", 16, older),
        CohortProfile("overweight_woman", 36, overweight),
    ]


def _participant_chain(profile: CohortProfile, rng: np.random.Generator) -> MarkovChain:
    """Perturb the cohort matrix multiplicatively for one participant."""
    noise = rng.lognormal(mean=0.0, sigma=profile.heterogeneity, size=profile.transition.shape)
    perturbed = profile.transition * noise
    perturbed = perturbed / perturbed.sum(axis=1, keepdims=True)
    chain = MarkovChain(
        np.full(len(ACTIVITY_STATES), 1.0 / len(ACTIVITY_STATES)),
        perturbed,
        ACTIVITY_STATES,
    )
    return chain.with_stationary_initial()


def _segment_lengths(
    total: int, n_segments: int, rng: np.random.Generator
) -> list[int]:
    """Split ``total`` observations into lognormal-ish segment lengths."""
    weights = rng.lognormal(mean=0.0, sigma=0.9, size=n_segments)
    raw = np.maximum(1, np.round(weights / weights.sum() * total).astype(int))
    # Fix rounding drift on the largest segment.
    raw[np.argmax(raw)] += total - int(raw.sum())
    return [int(v) for v in raw if v >= 1]


def generate_participant(
    profile: CohortProfile,
    participant_id: str,
    rng: "int | np.random.Generator | None" = None,
) -> Participant:
    """One participant's segmented recording."""
    gen = resolve_rng(rng)
    chain = _participant_chain(profile, gen)
    total = max(
        200, int(gen.normal(profile.mean_observations, profile.mean_observations * 0.12))
    )
    n_segments = max(1, int(gen.poisson(profile.mean_segments)))
    lengths = _segment_lengths(total, n_segments, gen)
    segments = chain.sample_segments(lengths, gen)
    dataset = TimeSeriesDataset(segments, len(ACTIVITY_STATES), participant_id)
    return Participant(participant_id, dataset)


def generate_cohort(
    profile: CohortProfile,
    rng: "int | np.random.Generator | None" = None,
) -> StudyGroup:
    """A full cohort of ``profile.n_participants`` participants."""
    if profile.n_participants < 1:
        raise ValidationError("cohort needs at least one participant")
    gen = resolve_rng(rng)
    participants = [
        generate_participant(profile, f"{profile.name}-{index:03d}", gen)
        for index in range(profile.n_participants)
    ]
    return StudyGroup(profile.name, participants)


def generate_study(
    rng: "int | np.random.Generator | None" = None,
    *,
    scale: float = 1.0,
    size_scale: float = 1.0,
) -> list[StudyGroup]:
    """All three cohorts.

    ``scale`` < 1 shrinks cohort sizes (fewer participants; used by the fast
    benchmark configurations).  Recording lengths are controlled separately
    by ``size_scale`` — shrinking them below ~0.5 breaks the Markov-quilt
    feasibility regime the paper's data sits in (segments must be longer
    than the optimal quilt extent), so benchmarks keep it at 1.0.
    """
    gen = resolve_rng(rng)
    groups = []
    for profile in default_cohorts():
        scaled = CohortProfile(
            name=profile.name,
            n_participants=max(2, int(round(profile.n_participants * scale))),
            transition=profile.transition,
            mean_observations=max(200, int(round(profile.mean_observations * size_scale))),
            mean_segments=max(1, int(round(profile.mean_segments * min(1.0, size_scale * 2)))),
            heterogeneity=profile.heterogeneity,
        )
        groups.append(generate_cohort(scaled, gen))
    return groups
