"""Datasets: segmented time-series containers, synthetic chain data, the
simulated physical-activity cohorts, the simulated household power data, and
empirical chain estimation."""

from repro.data.activity import (
    ACTIVITY_STATES,
    CohortProfile,
    default_cohorts,
    generate_cohort,
    generate_study,
)
from repro.data.datasets import Participant, StudyGroup, TimeSeriesDataset
from repro.data.estimation import empirical_chain
from repro.data.power import default_power_chain, generate_power_dataset
from repro.data.synthetic import sample_binary_dataset

__all__ = [
    "ACTIVITY_STATES",
    "CohortProfile",
    "Participant",
    "StudyGroup",
    "TimeSeriesDataset",
    "default_cohorts",
    "default_power_chain",
    "empirical_chain",
    "generate_cohort",
    "generate_power_dataset",
    "generate_study",
    "sample_binary_dataset",
]
