"""Baseline mechanisms the paper compares against: entry/individual-level
differential privacy, group differential privacy, and the GK16
influence-matrix mechanism of Ghosh and Kleinberg [14]."""

from repro.baselines.dp import EntryDPMechanism, IndividualDPMechanism
from repro.baselines.gk16 import GK16Mechanism, chain_influence_matrix, influence_spectral_norm
from repro.baselines.group_dp import GroupDPMechanism

__all__ = [
    "EntryDPMechanism",
    "GK16Mechanism",
    "GroupDPMechanism",
    "IndividualDPMechanism",
    "chain_influence_matrix",
    "influence_spectral_norm",
]
