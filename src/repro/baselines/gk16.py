"""GK16 — the Ghosh–Kleinberg influence-matrix baseline [14].

The paper compares the Markov Quilt Mechanism against the concurrent
mechanism of Ghosh and Kleinberg ("Inferential privacy guarantees for
differentially private mechanisms", arXiv:1603.01508), describing it as
follows (Section 5.1): the algorithm "defines and computes an 'influence
matrix' for each theta in Theta.  The algorithm applies only when the
spectral norm of this matrix is less than 1, and the standard deviation of
noise added increases as the spectral norm approaches 1."

No reference implementation exists, so this module reconstructs the
mechanism from that description (the substitution is documented in
DESIGN.md Section 4):

* the **influence matrix** ``Gamma_theta`` holds Dobrushin-style influence
  coefficients: ``Gamma[i, j]`` is the worst-case total-variation change of
  the conditional law ``P(X_i | X_j, rest)`` when ``X_j`` flips, maximized
  over the configurations of the remaining conditioning variables.  For a
  Markov chain only adjacent entries are non-zero, computed exactly from
  ``P(X_i | X_{i-1}, X_{i+1}) ∝ P(X_{i-1}, .) ⊙ P(., X_{i+1})``;
* with ``rho = max_theta ||Gamma_theta||_2 < 1`` the entry-DP Laplace
  mechanism run at the stronger budget ``epsilon (1 - rho) / (1 + rho)``
  guarantees inferential (Pufferfish) level ``epsilon``, i.e. noise scale
  ``L (1 + rho) / ((1 - rho) epsilon)``.

This reconstruction preserves every property the evaluation relies on:
inapplicability ("N/A") once ``rho >= 1`` regardless of epsilon, noise
diverging as ``rho -> 1``, and accuracy beating MQM for weakly correlated
families while losing (then failing entirely) as correlation grows.
"""

from __future__ import annotations



import numpy as np

from repro.core.laplace import Mechanism
from repro.core.queries import Query
from repro.distributions.chain_family import ChainFamily, FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import NotApplicableError, ValidationError

#: Spectral norms within this tolerance of 1 are treated as inapplicable.
RHO_RTOL = 1e-9


def _normalized_laws(weights: np.ndarray) -> np.ndarray:
    """Normalize the last axis into conditional laws; all-zero rows -> NaN
    (the conditioning event is impossible and must not contribute)."""
    totals = weights.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore"):
        laws = np.where(totals > 0, weights / np.where(totals > 0, totals, 1.0), np.nan)
    return laws


def _max_pairwise_tv(laws: np.ndarray, axis: int) -> float:
    """Max total-variation distance between laws that differ only along
    ``axis`` (vectorized over every other index); NaN laws are skipped."""
    a = np.expand_dims(laws, axis)
    b = np.expand_dims(laws, axis + 1)
    with np.errstate(invalid="ignore"):
        diff = np.abs(a - b).sum(axis=-1)
    return 0.5 * float(np.nan_to_num(diff, nan=0.0).max(initial=0.0))


def _interior_coefficients(transition: np.ndarray) -> tuple[float, float]:
    """(past-neighbor, future-neighbor) influence of an interior node.

    ``P(X_t = x | X_{t-1} = u, X_{t+1} = v) ∝ P(u, x) P(x, v)``; the chain is
    homogeneous, so one computation covers every interior node.
    """
    # weights[u, v, x] = P(u, x) * P(x, v)
    weights = transition[:, None, :] * transition.T[None, :, :]
    laws = _normalized_laws(weights)
    gamma_prev = _max_pairwise_tv(laws, axis=0)  # vary u with v fixed
    laws_uv = np.swapaxes(laws, 0, 1)
    gamma_next = _max_pairwise_tv(laws_uv, axis=0)  # vary v with u fixed
    return gamma_prev, gamma_next


def _first_node_next_influence(
    transition: np.ndarray, initial: np.ndarray | None
) -> float:
    """Influence of ``X_2`` on ``X_1``: ``P(X_1 = x | X_2 = v) ∝ q(x) P(x, v)``.

    With a free initial distribution the weighting is uniform over states
    (the adversary may put mass anywhere).
    """
    k = transition.shape[0]
    weights_q = initial if initial is not None else np.ones(k)
    # weights[v, x] = q(x) * P(x, v)
    weights = (weights_q[:, None] * transition).T
    laws = _normalized_laws(weights)
    return _max_pairwise_tv(laws, axis=0)


def _last_node_prev_influence(transition: np.ndarray) -> float:
    """Influence of ``X_{T-1}`` on ``X_T``: conditional laws are the rows of P."""
    return _max_pairwise_tv(_normalized_laws(transition.copy()), axis=0)


def chain_influence_matrix(chain: MarkovChain, length: int, *, free_initial: bool = False) -> np.ndarray:
    """The tridiagonal influence matrix of a chain of ``length`` nodes.

    ``Gamma[t, t-1]`` is the influence of the past neighbor on node ``t``
    (maximized over the future neighbor's value and vice versa); all
    non-adjacent influences vanish by the Markov property.  Homogeneity
    makes every interior entry identical, so the build is O(k^4 + length).
    """
    if length < 1:
        raise ValidationError(f"length must be >= 1, got {length}")
    transition = chain.transition
    initial = None if free_initial else chain.initial
    gamma = np.zeros((length, length))
    if length == 1:
        return gamma
    first_next = _first_node_next_influence(transition, initial)
    last_prev = _last_node_prev_influence(transition)
    if length == 2:
        gamma[0, 1] = first_next
        gamma[1, 0] = last_prev
        return gamma
    gamma_prev, gamma_next = _interior_coefficients(transition)
    idx = np.arange(1, length - 1)
    gamma[idx, idx - 1] = gamma_prev
    gamma[idx, idx + 1] = gamma_next
    gamma[0, 1] = first_next
    gamma[length - 1, length - 2] = last_prev
    return gamma


def influence_spectral_norm(chain: MarkovChain, length: int, *, free_initial: bool = False) -> float:
    """``||Gamma_theta||_2`` for one chain.

    For long chains the norm of the tridiagonal Toeplitz-like matrix is
    estimated on a truncated window (entries far from the boundary repeat),
    which upper-approximates within numerical tolerance at a fraction of the
    cost.
    """
    window = min(length, 64)
    gamma = chain_influence_matrix(chain, window, free_initial=free_initial)
    norm = float(np.linalg.norm(gamma, 2))
    if length > window:
        # Interior coefficients repeat; the infinite-banded operator norm is
        # bounded by gamma_prev + gamma_next of an interior node, which the
        # truncated spectral norm approaches from below.  Take the max of
        # both estimates to stay conservative.
        mid = window // 2
        banded = float(gamma[mid, mid - 1] + gamma[mid, mid + 1])
        norm = max(norm, min(banded, norm * (1.0 + 1e-6)))
    return norm


class GK16Mechanism(Mechanism):
    """GK16 baseline: entry-DP Laplace at budget ``eps (1-rho)/(1+rho)``.

    Parameters
    ----------
    family:
        The distribution class; ``rho`` is the worst spectral norm over its
        (grid of) chains.
    epsilon:
        Target Pufferfish/inferential privacy level.
    length:
        Chain length used to build the influence matrices.  The noise scale
        is evaluated lazily against the dataset's longest segment when not
        provided.

    Raises
    ------
    NotApplicableError
        When ``rho >= 1`` — the "N/A" entries of Tables 1 and 3.  The
        condition depends only on Theta, never on epsilon, matching the
        paper's observation.
    """

    name = "GK16"

    def __init__(
        self,
        family: ChainFamily | MarkovChain,
        epsilon: float,
        *,
        length: int | None = None,
    ) -> None:
        super().__init__(epsilon)
        if isinstance(family, MarkovChain):
            family = FiniteChainFamily.singleton(family)
        self.family = family
        self.length = length
        self._rho_cache: dict[int, float] = {}

    def calibration_fingerprint(self) -> tuple:
        return ("GK16", self.epsilon, self.family.fingerprint(), self.length)

    def rho(self, length: int) -> float:
        """Worst spectral norm over the family for the given chain length."""
        if length not in self._rho_cache:
            free = self.family.free_initial
            self._rho_cache[length] = max(
                influence_spectral_norm(chain, length, free_initial=free)
                for chain in self.family.chains()
            )
        return self._rho_cache[length]

    def is_applicable(self, length: int | None = None) -> bool:
        """Whether ``rho < 1`` (the condition is epsilon-independent)."""
        length = length or self.length
        if length is None:
            raise ValidationError("provide a chain length to evaluate applicability")
        return self.rho(length) < 1.0 - RHO_RTOL

    def amplification(self, length: int) -> float:
        """The noise multiplier ``(1 + rho) / (1 - rho)``."""
        rho = self.rho(length)
        if rho >= 1.0 - RHO_RTOL:
            raise NotApplicableError(
                f"GK16 does not apply: influence spectral norm {rho:.4f} >= 1"
            )
        return (1.0 + rho) / (1.0 - rho)

    def noise_scale(self, query: Query, data) -> float:
        lengths = getattr(data, "segment_lengths", None) or (int(np.asarray(data).size),)
        length = self.length or int(max(lengths))
        return query.lipschitz * self.amplification(length) / self.epsilon

    def scale_details(self, query: Query, data) -> dict:
        lengths = getattr(data, "segment_lengths", None) or (int(np.asarray(data).size),)
        length = self.length or int(max(lengths))
        return {"rho": self.rho(length), "amplification": self.amplification(length)}
