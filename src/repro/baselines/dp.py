"""Differential-privacy baselines.

* :class:`EntryDPMechanism` — entry-level differential privacy [15]: hide the
  value of a single entry, noise scale ``L / epsilon``.  The paper's
  introduction explains why this is insufficient for correlated entries
  (it protects one record, not the evidence a correlated neighborhood
  leaves behind), but it is the natural utility upper bound.
* :class:`IndividualDPMechanism` — person-level differential privacy for the
  *aggregate* task of Section 5.3.1: one "record" is an entire participant,
  so the sensitivity of the pooled relative-frequency histogram is
  ``2 * max_j N_j / N_total`` (changing participant ``j`` rewrites all of
  their ``N_j`` observations).  This is the "DP" row of Table 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.laplace import Mechanism
from repro.core.queries import Query
from repro.exceptions import ValidationError


class EntryDPMechanism(Mechanism):
    """Entry-level DP Laplace mechanism: noise scale ``L / epsilon``."""

    name = "EntryDP"

    def noise_scale(self, query: Query, data) -> float:
        return query.lipschitz / self.epsilon

    def calibration_fingerprint(self) -> tuple:
        return ("EntryDP", self.epsilon)


class IndividualDPMechanism(Mechanism):
    """Individual-level DP for pooled relative-frequency histograms.

    Parameters
    ----------
    epsilon:
        Privacy parameter.
    participant_sizes:
        Number of observations contributed by each participant; the pooled
        histogram's L1 sensitivity to replacing one participant is
        ``2 * max_j N_j / N_total``.
    """

    name = "DP"

    def __init__(self, epsilon: float, participant_sizes: Sequence[int]) -> None:
        super().__init__(epsilon)
        sizes = [int(s) for s in participant_sizes]
        if not sizes or any(s < 1 for s in sizes):
            raise ValidationError("participant_sizes must be non-empty positive integers")
        self.participant_sizes = sizes

    def sensitivity(self) -> float:
        """L1 sensitivity of the pooled relative-frequency histogram."""
        total = float(np.sum(self.participant_sizes))
        return 2.0 * float(np.max(self.participant_sizes)) / total

    def noise_scale(self, query: Query, data) -> float:
        return self.sensitivity() / self.epsilon

    def scale_details(self, query: Query, data) -> dict:
        return {"sensitivity": self.sensitivity()}

    def calibration_fingerprint(self) -> tuple:
        return ("DP", self.epsilon, tuple(self.participant_sizes))
