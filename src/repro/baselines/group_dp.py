"""Group differential privacy (Definition 2.2) baseline.

GroupDP treats every maximal set of correlated records as one group and adds
noise proportional to the worst group's sensitivity.  For time-series data
the groups are the independent chain segments, so an L-Lipschitz query gets
noise scale ``L * M / epsilon`` with ``M`` the longest segment — the
``Lap(M / (T epsilon))`` the paper quotes for relative-frequency histograms
(whose ``L = 2/T`` already carries the ``1/T``).

On a single unbroken chain this is ``L * T / epsilon``: the "destroys all
utility" regime the introduction describes, and the GroupDP rows of
Tables 1 and 3.
"""

from __future__ import annotations

import numpy as np

from repro.core.laplace import Mechanism
from repro.core.queries import Query


class GroupDPMechanism(Mechanism):
    """Group DP over independent segments: scale ``L * M / epsilon``."""

    name = "GroupDP"

    @staticmethod
    def largest_group(data) -> int:
        """Longest segment of the dataset (the whole array if unsegmented)."""
        lengths = getattr(data, "segment_lengths", None)
        if lengths:
            return int(max(lengths))
        return int(np.asarray(data).size)

    def noise_scale(self, query: Query, data) -> float:
        return query.lipschitz * self.largest_group(data) / self.epsilon

    def scale_details(self, query: Query, data) -> dict:
        return {"largest_group": self.largest_group(data)}

    def calibration_fingerprint(self) -> tuple:
        return ("GroupDP", self.epsilon)
