"""Exception hierarchy for the Pufferfish reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything from this package with a single ``except`` clause while
still being able to distinguish validation problems from mechanism-level
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    Every subclass is *HTTP-mappable*: :attr:`http_status` is the response
    status a service front-end should answer with when the error escapes a
    handler, and :meth:`payload` is the JSON-safe response body.  The
    service layer (:mod:`repro.service`) relies on this so refusals carry
    machine-readable structure end to end instead of being flattened into
    strings at the HTTP boundary.
    """

    #: HTTP status the service layer maps this error to.  ``500`` for the
    #: base class (an unmapped library error is a server bug); subclasses
    #: override with the semantically right 4xx.
    http_status: int = 500

    #: Optional hint, in seconds, for when retrying this refusal could
    #: succeed.  The service layer turns it into a ``Retry-After`` response
    #: header.  ``None`` (the default) means either "retrying cannot help"
    #: (a validation error, a permanently spent budget) or "no estimate";
    #: raise sites that *know* the horizon — lock contention bounded by the
    #: lock timeout, budget held by reservations bounded by the reservation
    #: TTL — set an instance attribute.
    retry_after: "float | None" = None

    def payload(self) -> dict:
        """JSON-safe response body: the error class name and message.

        Subclasses extend this with their structured fields (see
        :meth:`BudgetExhaustedError.payload`).  When a retry hint is set it
        rides along as ``retry_after`` (mirroring the ``Retry-After``
        header) so non-HTTP callers see it too.
        """
        body = {"error": type(self).__name__, "message": str(self)}
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        return body


class ValidationError(ReproError, ValueError):
    """Raised when an input fails validation (shapes, ranges, stochasticity).

    Subclasses :class:`ValueError` so that generic callers treating bad
    arguments as value errors keep working.
    """

    http_status = 400


class PrivacyParameterError(ReproError, ValueError):
    """Raised when a privacy parameter (epsilon, delta) is invalid.

    Examples include ``epsilon <= 0`` or a composition budget that has been
    exhausted.
    """

    http_status = 400


class BudgetExhaustedError(PrivacyParameterError):
    """Raised when a release would push the composed privacy guarantee past
    the configured epsilon budget.

    Subclasses :class:`PrivacyParameterError` so existing callers that treat
    budget overruns as parameter errors keep working; new callers (the
    serving layer) can catch this type specifically to distinguish "budget
    spent" from "bad epsilon".

    Carries a structured partial-progress payload so a caller interrupted
    mid-batch or mid-stream knows exactly where the ledger stands:

    Attributes
    ----------
    budget:
        The configured total epsilon budget.
    spent:
        The composed guarantee already accumulated (``K * max_k eps_k``)
        *before* the refused attempt — nothing from the failing call is ever
        recorded.
    remaining:
        ``max(0, budget - spent)``.
    requested:
        How many releases the failing call asked for.
    n_completed:
        How many releases the failing caller's unit of work completed before
        the refusal: always 0 for an atomic :meth:`PrivacyEngine.release_batch`
        (batches record all-or-nothing), and the number of values already
        yielded for a :class:`~repro.serving.stream.ReleaseSession`.
    accountant:
        Class name of the accountant that refused (``"CompositionAccountant"``
        for linear Theorem 4.4 accounting, ``"RenyiAccountant"`` for Rényi
        composition).  A service mixing accountants across tenants can tell
        from the payload alone which accounting regime ran out — the
        ``spent`` semantics differ (linear sum versus converted Rényi
        guarantee at the accountant's delta).

    All payload fields default to ``None`` when the raiser has no ledger
    (e.g. an exception reconstructed from its message alone).
    """

    #: "Too many requests" — the client exceeded its budget, not a server
    #: fault; retrying cannot succeed until the tenant's budget grows.
    http_status = 429

    def __init__(
        self,
        message: str,
        *,
        budget: "float | None" = None,
        spent: "float | None" = None,
        remaining: "float | None" = None,
        requested: "int | None" = None,
        n_completed: "int | None" = None,
        accountant: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.budget = budget
        self.spent = spent
        self.remaining = remaining
        self.requested = requested
        self.n_completed = n_completed
        self.accountant = accountant

    def ledger(self) -> dict:
        """The partial-progress payload as a plain dict (JSON-safe)."""
        return {
            "budget": self.budget,
            "spent": self.spent,
            "remaining": self.remaining,
            "requested": self.requested,
            "n_completed": self.n_completed,
            "accountant": self.accountant,
        }

    def payload(self) -> dict:
        """The HTTP body: base fields plus the full refusal ledger."""
        return {**super().payload(), "ledger": self.ledger()}


class NotApplicableError(ReproError, RuntimeError):
    """Raised when a mechanism does not apply to the given instantiation.

    The canonical case is GK16 when the spectral norm of the influence matrix
    is >= 1 (reported as "N/A" in the paper's tables), or MQMApprox when the
    distribution class contains a non-mixing (reducible or periodic) chain.
    """

    http_status = 422


class EnumerationError(ReproError, RuntimeError):
    """Raised when an exact computation would require enumerating a state
    space that exceeds the configured safety limit.

    The Wasserstein Mechanism and the general Markov Quilt Mechanism both
    enumerate joint distributions; this error protects against accidentally
    requesting an exponential computation on a large model.
    """

    http_status = 422


class ReservationError(ReproError, ValueError):
    """Raised when a reservation operation is inconsistent with its state.

    Examples: consuming more releases than the reservation holds, consuming
    at an epsilon other than the one reserved, or double-releasing.  This is
    a caller protocol error (HTTP 409 Conflict), distinct from
    :class:`BudgetExhaustedError` — the *tenant budget* may be fine; the
    *session's carved-out sub-budget* was used incorrectly.
    """

    http_status = 409


class UnknownTenantError(ReproError, KeyError):
    """Raised when a tenant has no ledger in the store (HTTP 404).

    Tenants must be created explicitly (``POST /tenants/{tenant}``) so a
    typo in a tenant name can never silently mint a fresh unlimited ledger.
    """

    http_status = 404

    def __str__(self) -> str:  # KeyError quotes its message; undo that.
        return self.args[0] if self.args else ""


class UnknownReservationError(ReproError, KeyError):
    """Raised when a reservation id is not outstanding for the tenant —
    never issued, already released, or expired past the ledger's stale
    reservation TTL (HTTP 410 Gone: retrying with the same id cannot
    succeed; open a new session)."""

    http_status = 410

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class UnknownSessionError(ReproError, KeyError):
    """Raised when a streaming session id is not live on this service
    process (HTTP 404) — never opened, closed, or lost to a restart (the
    budget its reservation carved out is reclaimed by the reservation
    TTL)."""

    http_status = 404

    def __str__(self) -> str:
        return self.args[0] if self.args else ""
