"""Exception hierarchy for the Pufferfish reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything from this package with a single ``except`` clause while
still being able to distinguish validation problems from mechanism-level
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError, ValueError):
    """Raised when an input fails validation (shapes, ranges, stochasticity).

    Subclasses :class:`ValueError` so that generic callers treating bad
    arguments as value errors keep working.
    """


class PrivacyParameterError(ReproError, ValueError):
    """Raised when a privacy parameter (epsilon, delta) is invalid.

    Examples include ``epsilon <= 0`` or a composition budget that has been
    exhausted.
    """


class BudgetExhaustedError(PrivacyParameterError):
    """Raised when a release would push the composed privacy guarantee past
    the configured epsilon budget.

    Subclasses :class:`PrivacyParameterError` so existing callers that treat
    budget overruns as parameter errors keep working; new callers (the
    serving layer) can catch this type specifically to distinguish "budget
    spent" from "bad epsilon".
    """


class NotApplicableError(ReproError, RuntimeError):
    """Raised when a mechanism does not apply to the given instantiation.

    The canonical case is GK16 when the spectral norm of the influence matrix
    is >= 1 (reported as "N/A" in the paper's tables), or MQMApprox when the
    distribution class contains a non-mixing (reducible or periodic) chain.
    """


class EnumerationError(ReproError, RuntimeError):
    """Raised when an exact computation would require enumerating a state
    space that exceeds the configured safety limit.

    The Wasserstein Mechanism and the general Markov Quilt Mechanism both
    enumerate joint distributions; this error protects against accidentally
    requesting an exponential computation on a large model.
    """
