"""Exception hierarchy for the Pufferfish reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything from this package with a single ``except`` clause while
still being able to distinguish validation problems from mechanism-level
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError, ValueError):
    """Raised when an input fails validation (shapes, ranges, stochasticity).

    Subclasses :class:`ValueError` so that generic callers treating bad
    arguments as value errors keep working.
    """


class PrivacyParameterError(ReproError, ValueError):
    """Raised when a privacy parameter (epsilon, delta) is invalid.

    Examples include ``epsilon <= 0`` or a composition budget that has been
    exhausted.
    """


class BudgetExhaustedError(PrivacyParameterError):
    """Raised when a release would push the composed privacy guarantee past
    the configured epsilon budget.

    Subclasses :class:`PrivacyParameterError` so existing callers that treat
    budget overruns as parameter errors keep working; new callers (the
    serving layer) can catch this type specifically to distinguish "budget
    spent" from "bad epsilon".

    Carries a structured partial-progress payload so a caller interrupted
    mid-batch or mid-stream knows exactly where the ledger stands:

    Attributes
    ----------
    budget:
        The configured total epsilon budget.
    spent:
        The composed guarantee already accumulated (``K * max_k eps_k``)
        *before* the refused attempt — nothing from the failing call is ever
        recorded.
    remaining:
        ``max(0, budget - spent)``.
    requested:
        How many releases the failing call asked for.
    n_completed:
        How many releases the failing caller's unit of work completed before
        the refusal: always 0 for an atomic :meth:`PrivacyEngine.release_batch`
        (batches record all-or-nothing), and the number of values already
        yielded for a :class:`~repro.serving.stream.ReleaseSession`.
    accountant:
        Class name of the accountant that refused (``"CompositionAccountant"``
        for linear Theorem 4.4 accounting, ``"RenyiAccountant"`` for Rényi
        composition).  A service mixing accountants across tenants can tell
        from the payload alone which accounting regime ran out — the
        ``spent`` semantics differ (linear sum versus converted Rényi
        guarantee at the accountant's delta).

    All payload fields default to ``None`` when the raiser has no ledger
    (e.g. an exception reconstructed from its message alone).
    """

    def __init__(
        self,
        message: str,
        *,
        budget: "float | None" = None,
        spent: "float | None" = None,
        remaining: "float | None" = None,
        requested: "int | None" = None,
        n_completed: "int | None" = None,
        accountant: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.budget = budget
        self.spent = spent
        self.remaining = remaining
        self.requested = requested
        self.n_completed = n_completed
        self.accountant = accountant

    def ledger(self) -> dict:
        """The partial-progress payload as a plain dict (JSON-safe)."""
        return {
            "budget": self.budget,
            "spent": self.spent,
            "remaining": self.remaining,
            "requested": self.requested,
            "n_completed": self.n_completed,
            "accountant": self.accountant,
        }


class NotApplicableError(ReproError, RuntimeError):
    """Raised when a mechanism does not apply to the given instantiation.

    The canonical case is GK16 when the spectral norm of the influence matrix
    is >= 1 (reported as "N/A" in the paper's tables), or MQMApprox when the
    distribution class contains a non-mixing (reducible or periodic) chain.
    """


class EnumerationError(ReproError, RuntimeError):
    """Raised when an exact computation would require enumerating a state
    space that exceeds the configured safety limit.

    The Wasserstein Mechanism and the general Markov Quilt Mechanism both
    enumerate joint distributions; this error protects against accidentally
    requesting an exponential computation on a large model.
    """
