"""Setuptools shim.

The execution environment has no `wheel` package (offline), so PEP 660
editable installs (`pip install -e .`) cannot build the editable wheel.
This shim lets `python setup.py develop` and legacy `pip install -e .`
perform the editable install; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
