"""Packaging for pufferfish-repro.

Two supported invocation styles (both documented in README.md):

* ``pip install -e .`` — registers the ``repro`` package from ``src/`` so no
  ``PYTHONPATH`` manipulation is needed.  In offline environments without
  the ``wheel`` package, PEP 660 editable installs fall back to the legacy
  ``python setup.py develop`` path, which this file also supports.
* ``PYTHONPATH=src python ...`` — run straight from the source tree (what
  CI and the tier-1 verify command use).
"""

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="pufferfish-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Pufferfish Privacy Mechanisms for Correlated Data' "
        "(SIGMOD 2017) with a serving engine: cached calibration, batched "
        "releases, enforced epsilon budgets"
    ),
    long_description=Path(__file__).with_name("README.md").read_text(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "graphs": ["networkx>=2.6"],
        "dev": ["pytest", "pytest-benchmark"],
    },
    classifiers=[
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Security",
        "Topic :: Scientific/Engineering",
    ],
)
