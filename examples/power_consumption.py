"""Household electricity consumption (the paper's Section 5.3.2).

One household's per-minute power draw, discretized into 51 bins of 200 W,
forms one very long Markov chain.  GroupDP is hopeless here (the whole
series is a single fully-correlated group), while the Markov Quilt
Mechanism's noise depends only on the chain's mixing time — so accuracy
*improves* with more data.

Run:  python examples/power_consumption.py
"""

import numpy as np

from repro import GroupDPMechanism, MQMApprox, MQMExact, RelativeFrequencyHistogram
from repro.data.estimation import empirical_chain
from repro.data.power import generate_power_dataset
from repro.distributions.chain_family import FiniteChainFamily

EPSILON = 1.0
LENGTH = 200_000
SEED = 7


def main() -> None:
    rng = np.random.default_rng(SEED)
    dataset, generator = generate_power_dataset(LENGTH, rng)
    print(
        f"power series: {dataset.n_observations} minutes, "
        f"{dataset.n_states} states of 200 W"
    )

    chain = empirical_chain(dataset, smoothing=0.05)
    family = FiniteChainFamily.singleton(chain)
    print(
        f"estimated chain: pi_min={chain.pi_min():.2e}, eigengap={chain.eigengap():.4f}"
    )

    query = RelativeFrequencyHistogram(dataset.n_states, dataset.n_observations)
    exact_hist = query(dataset.concatenated)

    approx = MQMApprox(family, EPSILON)
    window = approx.optimal_quilt_extent(dataset.longest_segment) or 64
    exact = MQMExact(family, EPSILON, max_window=window)

    print(f"\n{'mechanism':>10}  {'L1 error':>9}  {'per-bin scale':>13}")
    for mech in (exact, approx, GroupDPMechanism(EPSILON)):
        release = mech.release(dataset, query, rng)
        print(
            f"{mech.name:>10}  {release.l1_error():9.4f}  {release.noise_scale:13.3e}"
        )

    # The headline claim: MQM noise is T-independent, so doubling the data
    # halves the relative error; GroupDP's error never improves.
    print("\nrelative error (L1 / 1.0) as the series grows:")
    for length in (50_000, 100_000, 200_000):
        sub = dataset.concatenated[:length]
        sub_query = RelativeFrequencyHistogram(dataset.n_states, length)
        sigma = exact.sigma_max((length,))
        expected_mqm = dataset.n_states * sub_query.lipschitz * sigma
        expected_group = dataset.n_states * sub_query.lipschitz * length / EPSILON
        print(
            f"  T={length:>7}: MQMExact expected L1 ~ {expected_mqm:8.4f}   "
            f"GroupDP expected L1 ~ {expected_group:8.1f}"
        )

    top = np.argsort(exact_hist)[::-1][:3]
    print(
        "\nthree busiest power bins (exact):",
        ", ".join(f"{200*b}-{200*(b+1)}W: {exact_hist[b]:.3f}" for b in top),
    )


if __name__ == "__main__":
    main()
