"""Flu surveillance over a social network (the paper's Example 2, Section 3).

A workplace enrolls whole teams into a flu-monitoring program.  Within each
team, infection is contagious — statuses are correlated — and individuals do
not control their own participation, so differential privacy's "hide my
record" story does not apply.  Pufferfish hides each person's *status*
against an adversary who knows the contagion model.

The Wasserstein Mechanism (Algorithm 1) calibrates noise to the
infinity-Wasserstein distance between the count distributions conditioned on
"Alice is sick" vs "Alice is healthy" — strictly less noise than group
differential privacy's worst case whenever contagion is imperfect.

Run:  python examples/flu_social_network.py
"""

import numpy as np

from repro import (
    CountQuery,
    FluCliqueModel,
    Secret,
    WassersteinMechanism,
    entrywise_instantiation,
)
from repro.core.wasserstein import group_sensitivity, wasserstein_bound

EPSILON = 1.0
SEED = 5


def paper_example() -> None:
    """The exact Section 3.1 walkthrough: one clique of 4 people."""
    model = FluCliqueModel([4], [[0.1, 0.15, 0.5, 0.15, 0.1]])
    instantiation = entrywise_instantiation(4, 2, [model])
    query = CountQuery()

    given_healthy = model.conditional_count_distribution(Secret(0, 0))
    given_sick = model.conditional_count_distribution(Secret(0, 1))
    print("P(N | Alice healthy):", np.round(given_healthy.probs_on(range(5)), 3))
    print("P(N | Alice sick)   :", np.round(given_sick.probs_on(range(5)), 3))

    w = wasserstein_bound(instantiation, query)
    sens = group_sensitivity(query, 2, 4, [[0, 1, 2, 3]])
    print(f"Wasserstein bound W = {w:.1f} (paper: 2); GroupDP sensitivity = {sens:.1f}")

    mech = WassersteinMechanism(instantiation, EPSILON)
    data = np.array([0, 1, 1, 0])  # the true statuses
    release = mech.release(data, query, rng=SEED)
    print(
        f"released infected count: {release.value:.2f} "
        f"(true {release.true_value:.0f}, scale {release.noise_scale:.1f})\n"
    )


def multi_team_example() -> None:
    """Three teams of different sizes, exponential contagion (Section 2.2)."""
    rng = np.random.default_rng(SEED)
    sizes = [4, 3, 2]
    model = FluCliqueModel.exponential_cliques(sizes, rate=2.0)
    n = model.n_records
    instantiation = entrywise_instantiation(n, 2, [model])
    query = CountQuery()

    w = wasserstein_bound(instantiation, query)
    groups = []
    offset = 0
    for size in sizes:
        groups.append(list(range(offset, offset + size)))
        offset += size
    sens = group_sensitivity(query, 2, n, groups)
    print(f"{len(sizes)} teams of sizes {sizes}: W = {w:.3f}, group sensitivity = {sens:.1f}")

    # Draw one configuration and release the infected count.
    rows, probs = zip(*model.support())
    data = np.asarray(rows[rng.choice(len(rows), p=np.asarray(probs))])
    mech = WassersteinMechanism(instantiation, EPSILON)
    release = mech.release(data, query, rng)
    print(
        f"true infected: {int(release.true_value)} of {n}; "
        f"released: {release.value:.2f} with Lap({release.noise_scale:.2f}) noise"
    )
    print(
        "interpretation: evidence of any one person's status moves the count "
        f"distribution by at most W = {w:.2f}, so that is all the noise needed."
    )


if __name__ == "__main__":
    paper_example()
    multi_team_example()
