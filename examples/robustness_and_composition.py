"""Robustness against mis-specified adversaries, and composition.

Two operational questions the paper answers beyond the core mechanisms:

1. **What if the adversary's belief is not in Theta?**  Theorem 2.4: an
   eps-Pufferfish mechanism still guarantees eps + 2*Delta against a belief
   at conditional max-divergence Delta from Theta.  We compute Delta for a
   drifting belief and watch the effective epsilon degrade gracefully.

2. **Can I release repeatedly?**  Pufferfish does not compose in general,
   but the Markov Quilt Mechanism does when every release uses the same
   active quilts (Theorem 4.4).  The CompositionAccountant tracks this and
   enforces a budget.

Run:  python examples/robustness_and_composition.py
"""

import numpy as np

from repro import (
    CompositionAccountant,
    FiniteChainFamily,
    MQMExact,
    MarkovChain,
    MarkovChainModel,
    Secret,
    StateFrequencyQuery,
    TimeSeriesDataset,
    adversary_distance,
    effective_epsilon,
)
from repro.core.models import TabularDataModel
from repro.exceptions import PrivacyParameterError

EPSILON = 1.0
SEED = 99


def robustness_demo() -> None:
    """Effective epsilon against beliefs drifting away from Theta."""
    length = 5
    theta = MarkovChain([0.6, 0.4], [[0.8, 0.2], [0.3, 0.7]])
    family_model = MarkovChainModel(theta, length).to_tabular()
    secrets = [Secret(i, v) for i in range(length) for v in (0, 1)]

    print("adversary drift vs effective privacy (Theorem 2.4):")
    print(f"{'drift':>6}  {'Delta':>8}  {'effective eps':>13}")
    for drift in (0.0, 0.02, 0.05, 0.10):
        # The adversary believes a chain whose transition probabilities are
        # shifted by `drift` — outside Theta for drift > 0.
        p = np.clip(np.array([[0.8 + drift, 0.2 - drift], [0.3 - drift, 0.7 + drift]]), 0.01, 0.99)
        p = p / p.sum(axis=1, keepdims=True)
        tilde = MarkovChainModel(MarkovChain([0.6, 0.4], p), length).to_tabular()
        delta = adversary_distance(tilde, [family_model], secrets)
        print(f"{drift:6.2f}  {delta:8.4f}  {effective_epsilon(EPSILON, delta):13.4f}")
    print()


def composition_demo() -> None:
    """Budgeted repeated releases through one quilt configuration."""
    rng = np.random.default_rng(SEED)
    theta = MarkovChain([0.6, 0.4], [[0.9, 0.1], [0.2, 0.8]]).with_stationary_initial()
    family = FiniteChainFamily.singleton(theta)
    data = TimeSeriesDataset.from_sequence(theta.sample(3_000, rng), 2)
    query = StateFrequencyQuery(1, data.n_observations)

    per_release_eps = 0.5
    mechanism = MQMExact(family, per_release_eps, max_window=128)
    # All releases share the family, epsilon and quilt window, hence the
    # same active quilts — the Theorem 4.4 condition.
    signature = ("MQMExact", per_release_eps, 128, data.segment_lengths)

    accountant = CompositionAccountant(budget=2.0)
    release_count = 0
    print(f"releasing with eps={per_release_eps} per query, budget 2.0:")
    while True:
        try:
            accountant.record(
                per_release_eps, mechanism="MQMExact", quilt_signature=signature
            )
        except PrivacyParameterError as stop:
            print(f"  stopped: {stop}")
            break
        release = mechanism.release(data, query, rng)
        release_count += 1
        print(
            f"  release {release_count}: {release.value:.4f} "
            f"(composed guarantee so far: {accountant.total_epsilon():.1f})"
        )
    print(f"total releases: {release_count}; budget spent: {accountant.total_epsilon():.1f}")


if __name__ == "__main__":
    robustness_demo()
    composition_demo()
