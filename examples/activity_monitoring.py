"""Physical-activity monitoring (the paper's Example 1 / Section 5.3.1).

A cohort of cyclists wears activity trackers sampling one of four activities
every ~12 seconds.  We estimate the cohort's Markov chain from the pooled
recordings, then publish (a) the cohort's aggregate activity histogram and
(b) one participant's personal histogram, each with eps = 1 Pufferfish
privacy against an adversary who knows the chain.

Run:  python examples/activity_monitoring.py
"""

import numpy as np

from repro import GroupDPMechanism, MQMApprox, MQMExact, RelativeFrequencyHistogram
from repro.data.activity import ACTIVITY_STATES, default_cohorts, generate_cohort
from repro.data.estimation import empirical_chain
from repro.distributions.chain_family import FiniteChainFamily

EPSILON = 1.0
SEED = 2024


def describe(label: str, histogram) -> None:
    cells = ", ".join(
        f"{name}={value:.3f}" for name, value in zip(ACTIVITY_STATES, histogram)
    )
    print(f"{label:>22}: {cells}")


def main() -> None:
    rng = np.random.default_rng(SEED)
    profile = default_cohorts()[0]  # cyclists
    cohort = generate_cohort(profile, rng)
    pooled = cohort.pooled_dataset()
    print(
        f"cohort: {cohort.name}, {cohort.n_participants} participants, "
        f"{pooled.n_observations} observations in {len(pooled.segments)} segments"
    )

    # Theta = the singleton empirical chain, as in the paper's experiments.
    chain = empirical_chain(cohort, smoothing=0.5)
    family = FiniteChainFamily.singleton(chain)
    print(
        f"estimated chain: pi_min={chain.pi_min():.4f}, "
        f"eigengap={chain.eigengap():.4f}, "
        f"stationary={np.round(chain.stationary(), 3)}"
    )

    approx = MQMApprox(family, EPSILON)
    window = approx.optimal_quilt_extent(pooled.longest_segment) or 64
    exact = MQMExact(family, EPSILON, max_window=window)
    print(f"optimal quilt extent from MQMApprox: {window} steps\n")

    # (a) Aggregate task.
    agg_query = RelativeFrequencyHistogram(4, pooled.n_observations)
    describe("exact aggregate", agg_query(pooled.concatenated))
    for mech in (exact, approx, GroupDPMechanism(EPSILON)):
        release = mech.release(pooled, agg_query, rng)
        describe(f"{mech.name} aggregate", np.asarray(release.value))

    # (b) Individual task: one participant's own histogram.
    participant = cohort.participants[0]
    data = participant.dataset
    ind_query = RelativeFrequencyHistogram(4, data.n_observations)
    print()
    describe("exact individual", ind_query(data.concatenated))
    for mech in (exact, approx, GroupDPMechanism(EPSILON)):
        release = mech.release(data, ind_query, rng)
        describe(f"{mech.name} individual", np.asarray(release.value))
        print(
            f"{'':>24}L1 error {release.l1_error():.4f}, "
            f"scale {release.noise_scale:.2e}"
        )


if __name__ == "__main__":
    main()
