"""Quickstart: Pufferfish-private release of a correlated time series.

A single subject's binary activity trace is modeled as a Markov chain whose
exact parameters are unknown — only the family Theta = [0.3, 0.7] (all
moderately sticky binary chains, any starting state) is assumed.  We publish
the fraction of time spent in state 1 with eps = 1 Pufferfish privacy and
compare the Markov Quilt Mechanism against group differential privacy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GroupDPMechanism,
    IntervalChainFamily,
    MQMApprox,
    MQMExact,
    StateFrequencyQuery,
    TimeSeriesDataset,
)

EPSILON = 1.0
LENGTH = 2_000
SEED = 42


def main() -> None:
    # 1. The distribution class Theta: binary chains with self-transition
    #    probabilities in [0.3, 0.7] and any initial distribution.
    family = IntervalChainFamily(0.3)

    # 2. Some data that plausibly came from Theta.
    rng = np.random.default_rng(SEED)
    theta = family.sample_theta(rng)
    data = TimeSeriesDataset.from_sequence(theta.sample(LENGTH, rng), 2)
    query = StateFrequencyQuery(1, data.n_observations)
    exact_value = query(data.concatenated)
    print(f"exact fraction of time in state 1: {exact_value:.4f}")

    # 3. Release under each mechanism.  MQMExact searches quilts with
    #    endpoints up to 64 steps away (the paper's `l` parameter); wider
    #    windows buy nothing once the chain has mixed.
    for mechanism in (
        MQMExact(family, EPSILON, max_window=64),
        MQMApprox(family, EPSILON),
        GroupDPMechanism(EPSILON),
    ):
        release = mechanism.release(data, query, rng)
        print(
            f"{mechanism.name:>10}: released {release.value: .4f} "
            f"(|error| {release.l1_error():.4f}, Laplace scale {release.noise_scale:.4f})"
        )

    # 4. Why this matters: entry-level DP would use scale L/eps = 1/T — far
    #    too little noise to hide a correlated activity bout — while GroupDP
    #    treats the whole series as one record (scale 1/eps).  The Markov
    #    Quilt Mechanism sits in between, scaling with the family's mixing
    #    time instead of the record count.
    print(
        "\nnoise scales: entry-DP",
        f"{query.lipschitz / EPSILON:.2e} (not private for correlated data),",
        f"MQMExact {MQMExact(family, EPSILON, max_window=64).noise_scale(query, data):.2e},",
        f"GroupDP {GroupDPMechanism(EPSILON).noise_scale(query, data):.2e}",
    )


if __name__ == "__main__":
    main()
