"""Markov Quilt Mechanism on a general Bayesian network (Algorithm 2).

The chain algorithms (MQMExact/MQMApprox) cover time series; this example
shows the *general* mechanism on a branching network — a small disease-
spread tree where one index case infects two households:

    source -> hhA1 -> hhA2
           -> hhB1 -> hhB2 -> hhB3

Each node is a binary infection status; edges carry a contagion CPD.  The
mechanism finds, for every node, the quilt (graph separator) that minimizes
card(nearby) / (eps - max-influence) and calibrates one Laplace scale that
protects everyone.

Run:  python examples/bayesian_network_quilts.py
"""

import numpy as np

from repro import DiscreteBayesianNetwork, MarkovQuiltMechanism
from repro.core.queries import CountQuery

EPSILON = 4.0
SEED = 17

#: P(child infected | parent status): contagion with background infection.
CONTAGION = np.array([[0.85, 0.15], [0.45, 0.55]])


def build_network() -> DiscreteBayesianNetwork:
    net = DiscreteBayesianNetwork()
    net.add_node("source", 2, cpd=[0.7, 0.3])
    net.add_node("hhA1", 2, parents=["source"], cpd=CONTAGION)
    net.add_node("hhA2", 2, parents=["hhA1"], cpd=CONTAGION)
    net.add_node("hhB1", 2, parents=["source"], cpd=CONTAGION)
    net.add_node("hhB2", 2, parents=["hhB1"], cpd=CONTAGION)
    net.add_node("hhB3", 2, parents=["hhB2"], cpd=CONTAGION)
    return net


def main() -> None:
    net = build_network()
    mech = MarkovQuiltMechanism([net], epsilon=EPSILON)

    print("per-node active quilts (Definition 4.5):")
    for node in net.nodes:
        sigma, quilt = mech.sigma_for_node(node)
        members = "{" + ", ".join(sorted(quilt.quilt)) + "}" if quilt.quilt else "trivial"
        print(
            f"  {node:>6}: sigma = {sigma:6.3f}, quilt = {members:<16} "
            f"nearby = {sorted(quilt.nearby)}"
        )
    print(f"sigma_max = {mech.sigma_max():.3f} "
          f"(GroupDP would need {len(net.nodes) / EPSILON:.3f})")

    # Release the infected count across the tree.
    rng = np.random.default_rng(SEED)
    assignments, probs = net.enumerate_joint()
    data = np.asarray(assignments[rng.choice(len(assignments), p=probs)])
    release = mech.release(data, CountQuery(), rng)
    print(
        f"\ntrue infected: {int(release.true_value)} of {len(net.nodes)}; "
        f"released: {release.value:.2f} with Lap({release.noise_scale:.3f})"
    )
    print(f"worst node: {release.details['worst_node']}, "
          f"active quilt {release.details['active_quilt']}")


if __name__ == "__main__":
    main()
