"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one implementation decision and measures its effect
on the noise multiplier sigma (utility) and/or wall-clock cost:

* A1 — Eq. (5) support restriction (Definition 4.1 semantics) vs the
  paper's literal formula, on a degenerate-initial chain.
* A2 — reversible (Lemma C.1) vs general (Lemma 4.8) eigengap in MQMApprox.
* A3 — MQMExact grid resolution for continuum families: sigma should
  stabilize as the grid refines (the gridding substitution is safe).
* A4 — candidate-ladder coarsening for per-length searches: near-zero
  utility cost for a large speedup.
* A5 — the quilt window `l`: sigma saturates once the window passes the
  optimal quilt extent (the paper's rationale for deriving `l` from
  MQMApprox).
"""

import time

import numpy as np
import pytest

from benchmarks.recording import record
from repro.analysis.reporting import Table
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain

EPSILON = 1.0


def test_a1_support_restriction(benchmark):
    """Definition 4.1 semantics never hurt and help for degenerate initials."""
    degenerate = MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]])
    family = FiniteChainFamily([degenerate])
    strict = MQMExact(family, EPSILON, max_window=100, restrict_support=True)
    loose = MQMExact(family, EPSILON, max_window=100, restrict_support=False)
    sigma_strict = benchmark.pedantic(lambda: strict.sigma_max(100), rounds=1, iterations=1)
    sigma_loose = loose.sigma_max(100)
    assert sigma_strict <= sigma_loose
    table = Table("A1 — Eq. (5) support restriction", ["variant", "sigma"])
    table.add_row("Definition 4.1 (restricted)", [sigma_strict])
    table.add_row("literal Eq. (5) (paper)", [sigma_loose])
    record("ablation_support_restriction", table.render())


def test_a2_reversible_gap(benchmark):
    """Lemma C.1's reversible gap is larger, hence sigma is smaller."""
    chain = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.25, 0.75]]).with_stationary_initial()
    family = FiniteChainFamily([chain])
    reversible = MQMApprox(family, EPSILON, reversible=True)
    general = MQMApprox(family, EPSILON, reversible=False)
    assert reversible.gap >= general.gap
    sigma_rev = benchmark.pedantic(lambda: reversible.sigma_max(5000), rounds=1, iterations=1)
    sigma_gen = general.sigma_max(5000)
    assert sigma_rev <= sigma_gen
    table = Table("A2 — eigengap variant in MQMApprox (T=5000)", ["variant", "gap", "sigma"])
    table.add_row("reversible (Lemma C.1)", [reversible.gap, sigma_rev])
    table.add_row("general P P* (Lemma 4.8)", [general.gap, sigma_gen])
    record("ablation_reversible_gap", table.render())


def test_a3_grid_resolution(benchmark):
    """sigma over the continuum family converges as the grid refines."""
    sigmas = {}

    def sweep():
        for step in (0.2, 0.1, 0.05, 0.025):
            family = IntervalChainFamily(0.3, grid_step=step)
            sigmas[step] = MQMExact(family, EPSILON, max_window=60).sigma_max(60)
        return sigmas

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Refining the grid can only reveal worse thetas: sigma is nondecreasing.
    values = [sigmas[s] for s in (0.2, 0.1, 0.05, 0.025)]
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
    # ... and it converges: the last refinement moves sigma by < 2%.
    assert values[-1] - values[-2] <= 0.02 * values[-2]
    table = Table("A3 — MQMExact grid resolution (Theta=[0.3,0.7], T=60)", ["grid step", "sigma"])
    for step in (0.2, 0.1, 0.05, 0.025):
        table.add_row(f"{step:g}", [sigmas[step]])
    record("ablation_grid_resolution", table.render())


def test_a4_candidate_ladder(benchmark):
    """Ladder-coarsened quilt candidates barely change sigma."""
    chain = MarkovChain([0.6, 0.4], [[0.95, 0.05], [0.08, 0.92]]).with_stationary_initial()
    family = FiniteChainFamily([chain])
    lengths = tuple(range(50, 1600, 37))  # many distinct lengths

    def ladder_run():
        mech = MQMExact(family, EPSILON, max_window=400)
        return mech.sigma_max(lengths)

    start = time.perf_counter()
    full_window_sigma = MQMExact(family, EPSILON, max_window=180).sigma_max(lengths)
    dense_elapsed = time.perf_counter() - start
    ladder_sigma = benchmark.pedantic(ladder_run, rounds=1, iterations=1)
    # The ladder search (window 400 > ladder cap) stays within 5% of the
    # dense window-180 search, despite covering wider quilts.
    assert ladder_sigma <= full_window_sigma * 1.05
    table = Table("A4 — candidate ladder vs dense search", ["variant", "sigma"])
    table.add_row("dense window 180", [full_window_sigma])
    table.add_row("ladder window 400", [ladder_sigma])
    record("ablation_candidate_ladder", table.render())
    assert dense_elapsed >= 0  # recorded for context only


def test_a5_window_saturation(benchmark):
    """sigma saturates once the window exceeds the optimal quilt extent."""
    chain = MarkovChain([0.6, 0.4], [[0.9, 0.1], [0.2, 0.8]]).with_stationary_initial()
    family = FiniteChainFamily([chain])
    extent = MQMApprox(family, EPSILON).optimal_quilt_extent(4000) or 32

    def sweep():
        return {
            window: MQMExact(family, EPSILON, max_window=window).sigma_max(4000)
            for window in (2, extent // 2, extent, 2 * extent)
        }

    sigmas = benchmark.pedantic(sweep, rounds=1, iterations=1)
    keys = sorted(sigmas)
    values = [sigmas[k] for k in keys]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))  # wider never worse
    assert sigmas[2 * extent] >= 0.95 * sigmas[extent]  # saturation
    table = Table(
        f"A5 — quilt window sweep (approx extent = {extent})", ["window", "sigma"]
    )
    for key in keys:
        table.add_row(str(key), [sigmas[key]])
    record("ablation_window_saturation", table.render())
