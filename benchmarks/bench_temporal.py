"""Benchmark E10 — temporal: incremental recalibration + sliding windows.

Two serving questions this answers for an evolving scenario network:

* After a single-node CPD edit on a structured 200-node network, how much of
  the Markov-quilt calibration survives?  :class:`TemporalNetwork` replays
  only the quilts whose separator closures touch the edit, so the warm
  recalibration must be at least **5x** faster than the cold one (full mode;
  quick-mode grids are too small to demonstrate it) — and the reused sigmas
  must be **bit-identical** to a from-scratch calibration, in every mode.
* Does an indefinite release stream under :class:`SlidingWindowAccountant`
  sustain ``floor(budget / epsilon)`` releases per window forever?  Window
  expiry reclaims epsilon exactly, so every window's admission count equals
  window 0's, and a replay under one seed reproduces every noisy value bit
  for bit.

An engine-registry entry rides along: editing workloads retire fingerprints
eagerly (:func:`invalidate_engine`), so the per-process registry stays
bounded by ``MAX_CACHED_ENGINES`` however many edits the stream applies.
The machine-readable trajectory is recorded to
``results/BENCH_temporal.json``.
"""

import math
import time

import numpy as np
import pytest

from benchmarks.recording import QUICK, QUICK_SKIP_REASON, record_trajectory
from repro.core import MarkovQuiltMechanism, SlidingWindowAccountant
from repro.core.queries import CountQuery
from repro.distributions import TemporalNetwork
from repro.distributions.structured import (
    BlockQuiltGenerator,
    block_node,
    household_blocks_network,
)
from repro.exceptions import BudgetExhaustedError
from repro.inference.engine import MAX_CACHED_ENGINES, engine_registry_size
from repro.serving import PrivacyEngine

N_BLOCKS = 4 if QUICK else 20
BLOCK_SIZE = 3 if QUICK else 10
EPSILON = 0.5
SPEEDUP_GATE = 5.0

WINDOW_BUDGET = 1.0
WINDOW_EPSILON = 0.25
N_WINDOWS = 6 if QUICK else 20
REGISTRY_EDITS = 8 if QUICK else 24


def _blocks(n_blocks, block_size):
    return tuple(
        tuple(block_node(i, j) for j in range(block_size))
        for i in range(n_blocks)
    )


def _uniform_cpd(network, name):
    k = network.n_states(name)
    return np.full(network.cpd(name).shape, 1.0 / k)


@pytest.fixture(scope="module")
def recalibration_report():
    """Cold vs incremental calibration of the blocks network, one CPD edit."""
    generator = BlockQuiltGenerator(_blocks(N_BLOCKS, BLOCK_SIZE))
    temporal = TemporalNetwork(household_blocks_network(N_BLOCKS, BLOCK_SIZE))

    start = time.perf_counter()
    _, cold = temporal.calibrated_mechanism(EPSILON, quilt_generator=generator)
    cold_seconds = time.perf_counter() - start

    edited = block_node(0, BLOCK_SIZE - 1)
    temporal.update_cpd(edited, _uniform_cpd(temporal.network, edited))

    start = time.perf_counter()
    warm_mechanism, warm = temporal.calibrated_mechanism(
        EPSILON, quilt_generator=generator
    )
    warm_seconds = time.perf_counter() - start

    fresh = MarkovQuiltMechanism(
        [temporal.network], EPSILON, quilt_generator=generator
    )
    fresh.sigma_max()

    return {
        "temporal": temporal,
        "cold": cold,
        "warm": warm,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / max(warm_seconds, 1e-12),
        "edited": edited,
        "bit_identical": fresh._sigma_cache == warm_mechanism._sigma_cache,
    }


def _drain_windows(seed: int) -> tuple[list[int], list[float]]:
    """Serve a seeded stream through sliding windows until each refuses."""
    network = household_blocks_network(2, 3)
    data = np.ones(len(network.nodes))
    query = CountQuery()
    engine = PrivacyEngine(
        MarkovQuiltMechanism([network], WINDOW_EPSILON),
        accountant=SlidingWindowAccountant(budget=WINDOW_BUDGET),
        rng=seed,
    )
    served: list[int] = []
    values: list[float] = []
    for _ in range(N_WINDOWS):
        count = 0
        try:
            while True:
                values.append(engine.release(data, query).value)
                count += 1
        except BudgetExhaustedError:
            pass
        served.append(count)
        stats = engine.accountant.advance_window()
        assert stats["live_releases"] == 0
    return served, values


@pytest.fixture(scope="module")
def window_report():
    served, values = _drain_windows(seed=7)
    replay_served, replay_values = _drain_windows(seed=7)
    return {
        "served": served,
        "values": values,
        "replay_identical": served == replay_served and values == replay_values,
    }


@pytest.fixture(scope="module")
def registry_report():
    """Many edits + recalibrations must not grow the engine registry."""
    temporal = TemporalNetwork(household_blocks_network(3, 3))
    temporal.calibrated_mechanism(EPSILON)
    baseline = engine_registry_size()
    peak = baseline
    target = block_node(1, 1)
    for i in range(REGISTRY_EDITS):
        cpd = _uniform_cpd(temporal.network, target)
        cpd[..., 0] += 0.01 * (i + 1)
        cpd /= cpd.sum(axis=-1, keepdims=True)
        temporal.update_cpd(target, cpd)
        temporal.calibrated_mechanism(EPSILON)
        peak = max(peak, engine_registry_size())
    return {
        "baseline": baseline,
        "peak": peak,
        "final": engine_registry_size(),
        "retired": temporal.retired_engine_count,
    }


@pytest.fixture(scope="module")
def trajectory(recalibration_report, window_report, registry_report):
    report = recalibration_report
    entries = [
        {
            "op": "cold_calibration",
            "nodes": report["cold"].total_nodes,
            "seconds": report["cold_seconds"],
            "speedup": None,
        },
        {
            "op": "incremental_recalibration",
            "nodes": report["warm"].total_nodes,
            "reused_nodes": report["warm"].reused_nodes,
            "recomputed_nodes": report["warm"].recomputed_nodes,
            "seconds": report["warm_seconds"],
            "speedup": report["speedup"],
        },
        {
            "op": "window_drain",
            "windows": N_WINDOWS,
            "served_per_window": window_report["served"],
            "replay_identical": window_report["replay_identical"],
            "speedup": None,
        },
        {
            "op": "engine_registry",
            "edits": REGISTRY_EDITS,
            "peak_size": registry_report["peak"],
            "retired": registry_report["retired"],
            "speedup": None,
        },
    ]
    record_trajectory(
        "temporal",
        entries,
        meta={
            "network": f"household_blocks({N_BLOCKS}, {BLOCK_SIZE})",
            "epsilon": EPSILON,
            "window_budget": WINDOW_BUDGET,
            "window_epsilon": WINDOW_EPSILON,
            "speedup_gate": SPEEDUP_GATE,
            "bit_identical": report["bit_identical"],
            "max_cached_engines": MAX_CACHED_ENGINES,
        },
    )
    return entries


def test_temporal_trajectory_recorded(trajectory):
    """The measurement runs in every mode and records sane entries."""
    assert len(trajectory) == 4
    assert all(e["op"] for e in trajectory)


def test_incremental_is_bit_identical(recalibration_report):
    """Acceptance (every mode): reused sigmas equal a from-scratch
    calibration bit for bit — reuse is a cache hit, not an approximation."""
    assert recalibration_report["bit_identical"]


def test_edit_recomputes_only_touched_block(recalibration_report):
    """A single-node CPD edit dirties only quilts whose separator closures
    touch it — here, the edited block; every other block is a cache hit."""
    warm = recalibration_report["warm"]
    assert not warm.cold
    assert warm.recomputed_nodes <= BLOCK_SIZE
    assert warm.reused_nodes == warm.total_nodes - warm.recomputed_nodes
    assert warm.reused_nodes >= (N_BLOCKS - 1) * BLOCK_SIZE


def test_windows_sustain_floor_budget_over_eps(window_report):
    """Acceptance (every mode): expiry reclaims epsilon exactly, so every
    window admits floor(budget / epsilon) releases, indefinitely."""
    expected = math.floor(WINDOW_BUDGET / WINDOW_EPSILON)
    assert window_report["served"] == [expected] * N_WINDOWS


def test_window_replay_is_bit_identical(window_report):
    """One seed, one schedule: the replayed stream reproduces every noisy
    value and every admission decision exactly."""
    assert window_report["replay_identical"]


def test_engine_registry_stays_bounded(registry_report):
    """Eager fingerprint invalidation keeps the registry from accumulating
    one engine per edit; the LRU cap bounds it regardless."""
    assert registry_report["peak"] <= MAX_CACHED_ENGINES
    assert registry_report["peak"] <= registry_report["baseline"] + 1
    assert registry_report["retired"] >= REGISTRY_EDITS - 1


@pytest.mark.perf
@pytest.mark.skipif(QUICK, reason=QUICK_SKIP_REASON)
def test_incremental_speedup_gate(recalibration_report):
    """Acceptance (full mode): warm recalibration after a one-node edit is
    at least 5x faster than the cold calibration on the 200-node network."""
    assert recalibration_report["speedup"] >= SPEEDUP_GATE
