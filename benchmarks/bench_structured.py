"""Benchmark E10 — structured-scenario quilt generators versus shells.

For each structured family (grid, hub-and-spoke, household blocks) this
records the Algorithm 2 noise multiplier under the family's dedicated quilt
generator and under the default distance shells, plus both calibration wall
times, to ``results/BENCH_structured.json``.  Unlike the pure-speed
benchmarks the headline trajectory here is *noise*, not seconds: the
``noise_ratio`` column is how much more Laplace scale the shell baseline
needs on the same network at the same epsilon.

Assertions (all run in quick mode too — the quantities are deterministic
sigma math, not timings):

* **never worse**: every structured generator merges the distance shells
  into its candidate set, so its sigma_max can never exceed the baseline's;
* **strictly better somewhere**: at least one family shows a strict noise
  reduction (household blocks' disconnection dividend guarantees one);
* **parallel bit-identity**: a 2-worker sharded calibration of every
  structured scenario produces the identical scale and identical per-node
  ``(sigma, active quilt)`` state as the serial path.
"""

import time

import numpy as np
import pytest

from benchmarks.recording import QUICK, record_trajectory
from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.core.queries import CountQuery
from repro.experiments.structured_scenarios import default_families, sigma_comparison
from repro.parallel import ParallelCalibrator

FAMILIES = default_families(quick=QUICK)


@pytest.fixture(scope="module")
def trajectory():
    entries = []
    for scenario, epsilon in FAMILIES:
        record = dict(sigma_comparison(scenario, epsilon))
        record["op"] = "sigma_comparison"
        entries.append(record)

        query = CountQuery()
        data = np.zeros(len(scenario.reference.nodes), dtype=int)
        serial_mech = MarkovQuiltMechanism(
            scenario.networks, epsilon, quilt_generator=scenario.quilt_generator
        )
        start = time.perf_counter()
        serial = serial_mech.calibrate(query, data)
        serial_seconds = time.perf_counter() - start
        sharded_mech = MarkovQuiltMechanism(
            scenario.networks, epsilon, quilt_generator=scenario.quilt_generator
        )
        calibrator = ParallelCalibrator(max_workers=2, min_parallel_cost=0.0)
        start = time.perf_counter()
        sharded = calibrator.calibrate(sharded_mech, query, data)
        sharded_seconds = time.perf_counter() - start
        entries.append(
            {
                "op": "parallel_calibration",
                "family": scenario.name,
                "epsilon": epsilon,
                "workers": 2,
                "serial_s": serial_seconds,
                "sharded_s": sharded_seconds,
                "bit_identical": bool(
                    sharded.scale == serial.scale
                    and sharded_mech._sigma_cache == serial_mech._sigma_cache
                ),
                "pool_runs": calibrator.pool_runs,
            }
        )
    record_trajectory(
        "structured",
        entries,
        meta={"families": [scenario.name for scenario, _ in FAMILIES]},
    )
    return entries


def _by_op(trajectory, op):
    return [entry for entry in trajectory if entry["op"] == op]


def test_structured_never_worse_than_shells(trajectory):
    """Acceptance: sigma_max under the dedicated generator <= the distance
    shell baseline for every family (the generators merge the shells in)."""
    comparisons = _by_op(trajectory, "sigma_comparison")
    assert len(comparisons) == len(FAMILIES)
    for entry in comparisons:
        assert entry["structured_sigma"] <= entry["baseline_sigma"] + 1e-12, entry


def test_structured_strictly_better_somewhere(trajectory):
    """Acceptance: at least one family shows a strict noise reduction —
    the blocks family's empty-separator dividend holds at every size."""
    ratios = [e["noise_ratio"] for e in _by_op(trajectory, "sigma_comparison")]
    assert max(ratios) > 1.0 + 1e-9, ratios


def test_parallel_calibration_bit_identical(trajectory):
    """Acceptance: 2-worker sharded calibration of every structured
    scenario matches serial exactly (scale and per-node quilt state)."""
    runs = _by_op(trajectory, "parallel_calibration")
    assert len(runs) == len(FAMILIES)
    for entry in runs:
        assert entry["bit_identical"] is True, entry
        assert entry["pool_runs"] == 1, entry


def test_structured_calibration_rate(benchmark):
    scenario, epsilon = FAMILIES[0]

    def calibrate():
        mechanism = MarkovQuiltMechanism(
            scenario.networks, epsilon, quilt_generator=scenario.quilt_generator
        )
        return mechanism.sigma_max()

    sigma = benchmark.pedantic(calibrate, rounds=2, iterations=1)
    assert np.isfinite(sigma)
