"""Benchmark E11 — fault-injection overhead and chaos-mode exactness.

Two questions the robustness work must answer with numbers:

* **What do the fault points cost when nothing is injected?**  Every
  durable transaction now calls :func:`repro.faults.fire` a handful of
  times.  With no injector installed that is one global read and a
  ``None`` check — but the claim deserves a measurement: we drain the
  same ledger with no injector, then with an installed injector whose
  rules never match, and record the throughput ratio.
* **What does a chaos schedule cost, and does exactness survive it?**
  The same drain runs under a seeded schedule of transient store errors
  absorbed by :class:`~repro.service.retry.RetryingLedgerStore`.  The
  wall-time ratio quantifies the retry tax; the deterministic gates
  assert the ledger still lands on exactly ``floor(budget / epsilon)``
  consumed releases and that an idempotency-key replay never re-debits.

Gates (run in every mode, quick included): clean-drain exactness,
chaos-drain exactness, and idempotent replay.  Rates land in
``results/BENCH_chaos.json`` for trajectory tracking.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.recording import QUICK, record_trajectory
from repro.exceptions import BudgetExhaustedError
from repro.faults import FaultRule, injected
from repro.service.ledger import TenantLedger
from repro.service.retry import RetryingLedgerStore, RetryPolicy
from repro.service.stores import SQLiteLedgerStore

EPSILON = 0.5
CAP = 40 if QUICK else 200  # releases per drain
BUDGET = CAP * EPSILON

#: Transient-only schedule: every fault is retryable, so the drain must
#: finish — the injector adds failures, the retry layer absorbs them.
CHAOS_RULES = [
    FaultRule("ledger.sqlite.begin", error="sqlite_busy", probability=0.05, times=None),
    FaultRule("ledger.sqlite.commit", error="io", probability=0.05, times=None),
    FaultRule("ledger.sqlite.commit.after", error="io", probability=0.05, times=None),
]


def _drain(store, tag: str) -> "tuple[int, float]":
    """Reserve/consume/release one release at a time until refusal."""
    ledger = TenantLedger(store, tag)
    ledger.create(budget=BUDGET)
    served = 0
    start = time.perf_counter()
    while True:
        try:
            reservation = ledger.reserve(1, EPSILON)
        except BudgetExhaustedError:
            break
        try:
            ledger.consume_idempotent(
                reservation.reservation_id,
                1,
                epsilon=EPSILON,
                idempotency_key=f"{tag}-{served}",
                response={"i": served},
            )
            served += 1
        finally:
            ledger.release_unused(reservation.reservation_id)
    seconds = time.perf_counter() - start
    return served, seconds


@pytest.fixture(scope="module")
def chaos_report(tmp_path_factory):
    base = tmp_path_factory.mktemp("bench_chaos")
    store = RetryingLedgerStore(
        SQLiteLedgerStore(base / "ledgers.sqlite"),
        RetryPolicy(max_attempts=6, base_delay=0.0005, max_delay=0.005),
    )
    try:
        # -- clean drain: fault points present, no injector installed ------
        clean_served, clean_seconds = _drain(store, "clean")

        # -- armed-but-idle: injector installed, rules never match ---------
        idle_rules = [FaultRule("no.such.point", error="io", times=None)]  # repro-lint: disable=R5 -- deliberately unmatched: measures armed-but-idle overhead
        with injected(idle_rules, seed=0):
            idle_served, idle_seconds = _drain(store, "idle")

        # -- chaos drain: transient faults absorbed by the retry layer -----
        with injected(CHAOS_RULES, seed=42) as injector:
            chaos_served, chaos_seconds = _drain(store, "chaos")
            faults_fired = len(injector.history)

        snapshots = {
            tag: TenantLedger(store, tag).snapshot()
            for tag in ("clean", "idle", "chaos")
        }

        # -- gate: idempotent replay never re-debits -----------------------
        replay_ledger = TenantLedger(store, "replay")
        replay_ledger.create(budget=1.0)
        reservation = replay_ledger.reserve(1, EPSILON)
        first, replayed_first = replay_ledger.consume_idempotent(
            reservation.reservation_id,
            1,
            epsilon=EPSILON,
            idempotency_key="replay-key",
            response={"answer": 41},
        )
        again, replayed_again = replay_ledger.consume_idempotent(
            reservation.reservation_id,
            1,
            epsilon=EPSILON,
            idempotency_key="replay-key",
            response={"answer": 42},  # must NOT replace the original
        )
        replay_ledger.release_unused(reservation.reservation_id)
        replay_exact = (
            not replayed_first
            and replayed_again
            and again == first
            and replay_ledger.snapshot()["n_releases"] == 1
        )
    finally:
        store.close()

    clean_rps = clean_served / clean_seconds
    idle_rps = idle_served / idle_seconds
    chaos_rps = chaos_served / chaos_seconds
    entries = [
        {
            "op": "drain_clean",
            "releases": clean_served,
            "seconds": clean_seconds,
            "rps": clean_rps,
            "speedup": None,
        },
        {
            "op": "drain_injector_idle",
            "releases": idle_served,
            "seconds": idle_seconds,
            "rps": idle_rps,
            "speedup": idle_rps / clean_rps,
        },
        {
            "op": "drain_chaos",
            "releases": chaos_served,
            "seconds": chaos_seconds,
            "rps": chaos_rps,
            "speedup": chaos_rps / clean_rps,
            "faults_fired": faults_fired,
        },
    ]
    record_trajectory(
        "chaos",
        entries,
        meta={
            "store": "sqlite+retry",
            "epsilon": EPSILON,
            "cap": CAP,
            "clean_exact": snapshots["clean"]["n_releases"] == CAP,
            "chaos_exact": snapshots["chaos"]["n_releases"] == CAP,
            "replay_exact": replay_exact,
        },
    )
    return {
        "entries": entries,
        "served": {
            "clean": clean_served,
            "idle": idle_served,
            "chaos": chaos_served,
        },
        "snapshots": snapshots,
        "faults_fired": faults_fired,
        "replay_exact": replay_exact,
    }


def test_chaos_trajectory_recorded(chaos_report):
    """The measurement runs in every mode and records sane rates."""
    assert all(
        entry["rps"] > 0 and entry["seconds"] > 0
        for entry in chaos_report["entries"]
    )


def test_clean_drain_exactness(chaos_report):
    """Deterministic gate: the fault-point-instrumented path still serves
    exactly floor(budget/eps) with no injector installed."""
    assert chaos_report["served"]["clean"] == CAP
    assert chaos_report["snapshots"]["clean"]["n_releases"] == CAP
    assert chaos_report["snapshots"]["clean"]["spent_epsilon"] == pytest.approx(
        BUDGET
    )


def test_chaos_drain_exactness(chaos_report):
    """Deterministic gate: transient faults cost wall time, never budget —
    the chaos drain lands on the identical cap, nothing stranded."""
    assert chaos_report["faults_fired"] > 0, "schedule never fired: dead gate"
    assert chaos_report["served"]["chaos"] == CAP
    snapshot = chaos_report["snapshots"]["chaos"]
    assert snapshot["n_releases"] == CAP
    assert snapshot["spent_epsilon"] == pytest.approx(BUDGET)
    assert snapshot["reserved_releases"] == 0


def test_idempotent_replay_never_redebits(chaos_report):
    """Deterministic gate: same key, second call → original response, one
    debit (the mechanism HTTP retries rely on for exactly-once)."""
    assert chaos_report["replay_exact"]
