"""Benchmark E3 — regenerate Table 1 (activity L1 errors, aggregate and
individual tasks) and time the cohort noise-scale computation."""

import pytest

from benchmarks.recording import record
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.data.activity import generate_study
from repro.data.estimation import empirical_chain
from repro.distributions.chain_family import FiniteChainFamily
from repro.experiments.config import FAST
from repro.experiments.table1_activity import check_orderings, run

CONFIG = FAST.activity


@pytest.fixture(scope="module")
def table1():
    table = run(CONFIG)
    violations = check_orderings(table)
    text = table.render()
    text += "\n\nOrdering check: " + ("; ".join(violations) if violations else "all hold")
    record("table1_activity", text)
    return table, violations


def test_table1_orderings(benchmark, table1):
    """The paper's orderings hold; time MQMExact's scale on one cohort."""
    table, violations = table1
    assert violations == []
    group = generate_study(rng=CONFIG.seed, scale=CONFIG.scale)[0]
    pooled = group.pooled_dataset()
    chain = empirical_chain(group, smoothing=CONFIG.smoothing)
    family = FiniteChainFamily.singleton(chain)
    approx = MQMApprox(family, CONFIG.epsilon)
    window = approx.optimal_quilt_extent(pooled.longest_segment) or 64

    def compute_scale():
        mech = MQMExact(family, CONFIG.epsilon, max_window=window)
        return mech.sigma_max(pooled.segment_lengths)

    sigma = benchmark.pedantic(compute_scale, rounds=1, iterations=1)
    assert sigma > 0


def test_table1_approx_scale_timing(benchmark):
    """MQMApprox cohort scale computation (the fast path of Table 2)."""
    group = generate_study(rng=CONFIG.seed, scale=CONFIG.scale)[0]
    pooled = group.pooled_dataset()
    chain = empirical_chain(group, smoothing=CONFIG.smoothing)
    family = FiniteChainFamily.singleton(chain)

    def compute_scale():
        return MQMApprox(family, CONFIG.epsilon).sigma_max(pooled.segment_lengths)

    sigma = benchmark.pedantic(compute_scale, rounds=2, iterations=1)
    assert sigma > 0
