"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure), records the
rendered text under ``results/`` so EXPERIMENTS.md can be assembled from
actual runs, and uses pytest-benchmark to time the representative
noise-scale computation (the quantity Table 2 reports).

Two cross-cutting facilities live here:

* **Quick mode** (:data:`QUICK`, set via the ``REPRO_BENCH_QUICK``
  environment variable): benchmarks shrink their grids to smoke-test sizes
  and *skip speedup gates* (tiny workloads cannot demonstrate them), so CI
  can execute every benchmark body on every PR without paying full
  benchmark wall time.  Full runs (no env var) keep the real grids and
  enforce the gates.
* **Perf trajectory recording** (:func:`record_trajectory`): performance
  benchmarks write machine-readable ``results/BENCH_<name>.json`` files —
  op, size grid, wall times, speedups versus the baseline — so the perf
  trajectory is comparable across PRs, not just eyeballed from text logs.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any, Sequence

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Quick (smoke) mode: tiny grids, no speedup gates.  Set by the CI
#: benchmarks-smoke lane via ``REPRO_BENCH_QUICK=1``.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Reason string for speedup-gate skips in quick mode.
QUICK_SKIP_REASON = "speedup gates are meaningless on quick-mode grids"


def record(name: str, text: str) -> Path:
    """Write one artifact's rendered output under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path


def record_json(name: str, payload: Any) -> Path:
    """Write one artifact as JSON under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True)
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path


def record_trajectory(
    name: str, entries: Sequence[dict], meta: dict | None = None
) -> Path:
    """Write a perf-trajectory artifact ``results/BENCH_<name>.json``.

    ``entries`` is a list of measurement dicts — by convention each carries
    ``op`` (what was measured), a size field (``size`` / ``length`` / ...),
    wall times in seconds, and ``speedup`` versus the relevant baseline
    (``None`` where the baseline is infeasible, e.g. beyond the enumeration
    cap).  The envelope records quick mode and the host, so trajectories
    from different machines are never naively compared.
    """
    payload = {
        "benchmark": name,
        "quick": QUICK,
        "host": {
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "entries": list(entries),
    }
    if meta:
        payload["meta"] = meta
    return record_json(f"BENCH_{name}", payload)
