"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure), records the
rendered text under ``results/`` so EXPERIMENTS.md can be assembled from
actual runs, and uses pytest-benchmark to time the representative
noise-scale computation (the quantity Table 2 reports).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def record(name: str, text: str) -> Path:
    """Write one artifact's rendered output under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path
