"""Benchmark E2 — regenerate Figure 4 (lower row): private aggregate
activity histograms, and time the aggregate release."""

import numpy as np
import pytest

from benchmarks.recording import record
from repro.core.queries import RelativeFrequencyHistogram
from repro.data.activity import generate_study
from repro.experiments.config import FAST
from repro.experiments.fig4_activity import build_mechanisms, run

CONFIG = FAST.activity


@pytest.fixture(scope="module")
def histogram_tables():
    tables = run(CONFIG)
    record(
        "fig4_activity", "\n\n".join(t.render() for t in tables.values())
    )
    return tables


def test_histograms_preserve_patterns(benchmark, histogram_tables):
    """MQM histograms must track the exact ones closely enough that the
    cohort activity patterns are visible, and GK16 must be N/A."""
    sedentary = {}
    for cohort, table in histogram_tables.items():
        rows = table.to_dict()
        exact = np.asarray(rows["Exact"], dtype=float)
        for name in ("MQMApprox", "MQMExact"):
            released = np.asarray(rows[name], dtype=float)
            assert np.abs(released - exact).sum() < 0.75
        assert "N/A" in table.title
        sedentary[cohort] = np.asarray(rows["MQMExact"], dtype=float)[-1]
    # The overweight cohort's sedentary dominance survives the noise.
    assert sedentary["overweight_woman"] > sedentary["cyclist"]

    group = generate_study(rng=CONFIG.seed, scale=CONFIG.scale)[0]
    pooled = group.pooled_dataset()
    _, _, _, exact_mech = build_mechanisms(group, CONFIG)
    query = RelativeFrequencyHistogram(group.n_states, pooled.n_observations)

    def release_once():
        return exact_mech.release(pooled, query, rng=0)

    release = benchmark.pedantic(release_once, rounds=3, iterations=1)
    assert release.noise_scale > 0
