"""Benchmark E4 — regenerate Table 2 (noise-scale computation times).

This artifact *is* a timing table, so pytest-benchmark is the natural
harness: each benchmark times one (mechanism, dataset) cell; the recorded
table comes from the experiment module's own wall-clock measurements.
"""

import numpy as np
import pytest

from benchmarks.recording import QUICK, record
from repro.baselines.gk16 import GK16Mechanism
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import RelativeFrequencyHistogram
from repro.data.estimation import empirical_chain
from repro.data.power import generate_power_dataset
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.experiments.config import FAST
from repro.experiments.table2_runtime import dataset_timings, run, synthetic_timings
from repro.serving import PrivacyEngine


@pytest.fixture(scope="module")
def recorded_table():
    table = run(FAST.activity, FAST.power, include_power=True)
    record("table2_runtime", table.render())
    return table


def test_table2_orderings(benchmark, recorded_table):
    """MQMApprox must be much faster than MQMExact on every dataset.

    Timing orderings are speedup-shaped claims, so quick mode (tiny grids,
    shared CI hardware) records the table without enforcing them.
    """
    rows = recorded_table.to_dict()
    if not QUICK:
        for approx, exact in zip(rows["MQMApprox"], rows["MQMExact"]):
            assert approx < exact
    timings = benchmark.pedantic(
        lambda: synthetic_timings(grid_points=3 if QUICK else 5),
        rounds=1,
        iterations=1,
    )
    assert timings["MQMApprox"] is not None
    if not QUICK:
        assert timings["MQMApprox"] < timings["MQMExact"]


@pytest.fixture(scope="module")
def synthetic_theta():
    pi = IntervalChainFamily.stationary_for(0.5, 0.5)
    transition = IntervalChainFamily.transition_for(0.5, 0.5)
    return FiniteChainFamily.singleton(MarkovChain(pi, transition))


def test_synthetic_mqm_exact_cell(benchmark, synthetic_theta):
    def scale():
        return MQMExact(synthetic_theta, 1.0, max_window=100).sigma_max(100)

    assert benchmark.pedantic(scale, rounds=3, iterations=1) > 0


def test_synthetic_mqm_approx_cell(benchmark, synthetic_theta):
    def scale():
        return MQMApprox(synthetic_theta, 1.0).sigma_max(100)

    assert benchmark.pedantic(scale, rounds=3, iterations=1) > 0


def test_synthetic_gk16_cell(benchmark, synthetic_theta):
    def scale():
        return GK16Mechanism(synthetic_theta, 1.0, length=100).rho(100)

    assert benchmark.pedantic(scale, rounds=3, iterations=1) >= 0


@pytest.fixture(scope="module")
def power_family():
    dataset, _ = generate_power_dataset(FAST.power.length, rng=FAST.power.seed)
    chain = empirical_chain(dataset, smoothing=FAST.power.smoothing)
    return FiniteChainFamily.singleton(chain), dataset


def test_power_mqm_exact_cell(benchmark, power_family):
    """The paper's slowest cell (282 s on their desktop for T=1M, k=51)."""
    family, dataset = power_family
    approx = MQMApprox(family, 1.0)
    window = approx.optimal_quilt_extent(dataset.longest_segment) or 64

    def scale():
        return MQMExact(family, 1.0, max_window=window).sigma_max(
            dataset.segment_lengths
        )

    assert benchmark.pedantic(scale, rounds=1, iterations=1) > 0


def test_power_mqm_approx_cell(benchmark, power_family):
    family, dataset = power_family

    def scale():
        return MQMApprox(family, 1.0).sigma_max(dataset.segment_lengths)

    assert benchmark.pedantic(scale, rounds=2, iterations=1) > 0


def test_power_warm_engine_amortizes(power_family):
    """Table 2 measures the one-time calibration cost; a warm engine turns
    repeat traffic into cache lookups, so the warm column must collapse."""
    family, dataset = power_family
    timings = dataset_timings(family, dataset, include_warm=True)
    assert timings["MQMExact(warm)"] < timings["MQMExact"]


def test_power_engine_release_batch(benchmark, power_family):
    """Releases/second against the power dataset with a hot cache."""
    family, dataset = power_family
    approx = MQMApprox(family, 1.0)
    window = approx.optimal_quilt_extent(dataset.longest_segment) or 64
    engine = PrivacyEngine(MQMExact(family, 1.0, max_window=window), rng=0)
    query = RelativeFrequencyHistogram(dataset.n_states, dataset.n_observations)
    engine.calibrate(query, dataset)

    batch = benchmark.pedantic(
        lambda: engine.release_repeated(dataset, query, 64), rounds=2, iterations=1
    )
    assert len(batch) == 64
