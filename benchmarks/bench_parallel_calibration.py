"""Benchmark E8 — sharded versus serial calibration wall time.

The workload is the Table 2 synthetic calibration sweep (one MQMExact per
``(p0, p1)`` grid chain — the per-theta unit the paper times), calibrated
once serially and once sharded across 4 worker processes by
:class:`repro.parallel.ParallelCalibrator`.  Two assertions:

* **Correctness, always**: the sharded scales are bit-identical to the
  serial ones — a mismatch is a calibration bug, not a performance result.
* **Speedup, when the hardware can show it**: with >= 4 physical cores the
  sharded sweep must be at least 2x faster than serial.  On smaller hosts
  the speedup test is skipped (process parallelism cannot beat serial on a
  single core) but the run is still recorded.

The recorded artifact is ``results/parallel_calibration.json``, matching
the shape of ``python -m repro calibrate``.
"""

import json
import os

import pytest

from benchmarks.recording import QUICK, QUICK_SKIP_REASON, RESULTS_DIR, record
from repro.experiments.table2_runtime import parallel_sweep_timings, sweep_workload
from repro.parallel import ParallelCalibrator

WORKERS = 4
# Full: the paper's p0, p1 in {0.1, 0.11, ..., 0.9} resolution.
GRID_POINTS = 3 if QUICK else 9
LENGTH = 40 if QUICK else 100
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def sweep_report():
    report = parallel_sweep_timings(
        WORKERS, epsilon=1.0, length=LENGTH, grid_points=GRID_POINTS
    )
    report["cpu_count"] = os.cpu_count()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_calibration.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    record("parallel_calibration", json.dumps(report, indent=2))
    return report


def test_sharded_sweep_is_bit_identical(sweep_report):
    """Acceptance (correctness half): identical sigma values, always."""
    assert sweep_report["bit_identical"] is True
    assert sweep_report["n_shards"] == GRID_POINTS * GRID_POINTS


@pytest.mark.perf
@pytest.mark.skipif(QUICK, reason=QUICK_SKIP_REASON)
@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"needs >= {WORKERS} cores to demonstrate the speedup floor",
)
def test_sharded_sweep_speedup(sweep_report):
    """Acceptance (performance half): >= 2x with 4 workers on >= 4 cores."""
    assert sweep_report["speedup"] >= SPEEDUP_FLOOR


def test_serial_sweep_rate(benchmark):
    def serial():
        mechanisms, query, data = sweep_workload(1.0, LENGTH, GRID_POINTS)
        return [m.calibrate(query, data).scale for m in mechanisms]

    scales = benchmark.pedantic(serial, rounds=2, iterations=1)
    assert len(scales) == GRID_POINTS * GRID_POINTS


def test_sharded_sweep_rate(benchmark):
    calibrator = ParallelCalibrator(max_workers=WORKERS, min_parallel_cost=0.0)

    def sharded():
        mechanisms, query, data = sweep_workload(1.0, LENGTH, GRID_POINTS)
        return calibrator.calibrate_many(mechanisms, query, data)

    calibrations = benchmark.pedantic(sharded, rounds=2, iterations=1)
    assert len(calibrations) == GRID_POINTS * GRID_POINTS
