"""Benchmark E10 — tensorized Algorithm 1 hot paths versus the seed loops.

Two ops, both recorded to ``results/BENCH_wasserstein.json``:

* ``op = "wasserstein_bound"`` — the full Algorithm 1 supremum on a
  Markov-chain instantiation.  Baseline: the seed's per-secret generator
  walk (one full support enumeration per secret per model) with
  ``DiscreteDistribution``-based W-infinity.  Engine: the pooled
  :class:`~repro.core.wasserstein.ModelOutputTable` path (one support
  materialization + one batched query evaluation per model, conditionals by
  mask + bincount, W-infinity on the shared support).
* ``op = "group_sensitivity"`` — Definition B.1 over ``{0,1}^n``.
  Baseline: the seed's per-group ``itertools.product`` walk (re-evaluating
  the query for every group).  Engine: one mixed-radix assignment matrix,
  one batched query evaluation, per-group ``reduceat`` min/max.

Both paths must agree exactly (to float association) at every size — the
equality assertions run in quick mode too; the speedup gates only in full
mode.
"""

import itertools
import time

import numpy as np
import pytest

from benchmarks.recording import QUICK, QUICK_SKIP_REASON, record_trajectory
from repro.core.framework import entrywise_instantiation
from repro.core.models import MarkovChainModel
from repro.core.queries import CountQuery
from repro.core.wasserstein import group_sensitivity, wasserstein_bound
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.markov import MarkovChain
from repro.distributions.metrics import w_infinity

CHAIN = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]])
BOUND_LENGTHS = (5, 6) if QUICK else (8, 10, 12)
SENSITIVITY_RECORDS = 8 if QUICK else 14
SPEEDUP_FLOOR = 2.0


# ----------------------------------------------------------------------
# Seed-era loops, verbatim
# ----------------------------------------------------------------------
def _legacy_conditional(model, query, secret):
    pairs = []
    total = 0.0
    for row, prob in model.support():
        if row[secret.index] == secret.value:
            pairs.append((float(query(np.asarray(row))), prob))
            total += prob
    return DiscreteDistribution.from_pairs((v, p / total) for v, p in pairs)


def _legacy_wasserstein_bound(instantiation, query) -> float:
    supremum = 0.0
    for model in instantiation.models:
        cache: dict = {}

        def conditional(secret, model=model, cache=cache):
            if secret not in cache:
                cache[secret] = _legacy_conditional(model, query, secret)
            return cache[secret]

        for pair in instantiation.admissible_pairs(model):
            supremum = max(
                supremum, w_infinity(conditional(pair.left), conditional(pair.right))
            )
    return supremum


def _legacy_group_sensitivity(query, n_values, n_records, groups) -> float:
    indices = list(range(n_records))
    sensitivity = 0.0
    for group in groups:
        group = sorted(set(group))
        complement = [i for i in indices if i not in group]
        extremes: dict = {}
        for assignment in itertools.product(range(n_values), repeat=n_records):
            value = float(query(np.asarray(assignment)))
            key = tuple(assignment[i] for i in complement)
            low, high = extremes.get(key, (value, value))
            extremes[key] = (min(low, value), max(high, value))
        for low, high in extremes.values():
            sensitivity = max(sensitivity, high - low)
    return sensitivity


# ----------------------------------------------------------------------
# Measurements
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trajectory():
    entries = []
    query = CountQuery()
    for length in BOUND_LENGTHS:
        instantiation = entrywise_instantiation(
            length, 2, [MarkovChainModel(CHAIN, length)]
        )
        start = time.perf_counter()
        baseline_value = _legacy_wasserstein_bound(instantiation, query)
        baseline_seconds = time.perf_counter() - start
        start = time.perf_counter()
        engine_value = wasserstein_bound(instantiation, query)
        engine_seconds = time.perf_counter() - start
        entries.append(
            {
                "op": "wasserstein_bound",
                "size": 2**length,
                "records": length,
                "baseline_s": baseline_seconds,
                "engine_s": engine_seconds,
                "speedup": baseline_seconds / engine_seconds,
                "baseline_value": baseline_value,
                "engine_value": engine_value,
            }
        )

    n = SENSITIVITY_RECORDS
    groups = [[i, i + n // 2] for i in range(n // 2)]
    start = time.perf_counter()
    baseline_value = _legacy_group_sensitivity(query, 2, n, groups)
    baseline_seconds = time.perf_counter() - start
    start = time.perf_counter()
    engine_value = group_sensitivity(query, 2, n, groups)
    engine_seconds = time.perf_counter() - start
    entries.append(
        {
            "op": "group_sensitivity",
            "size": 2**n,
            "records": n,
            "n_groups": len(groups),
            "baseline_s": baseline_seconds,
            "engine_s": engine_seconds,
            "speedup": baseline_seconds / engine_seconds,
            "baseline_value": baseline_value,
            "engine_value": engine_value,
        }
    )
    record_trajectory(
        "wasserstein", entries, meta={"speedup_floor": SPEEDUP_FLOOR}
    )
    return entries


# ----------------------------------------------------------------------
# Correctness (always)
# ----------------------------------------------------------------------
def test_tensorized_values_match_seed_loops(trajectory):
    for entry in trajectory:
        np.testing.assert_allclose(
            entry["engine_value"], entry["baseline_value"], rtol=1e-12
        )


# ----------------------------------------------------------------------
# Speedup gates (full mode only)
# ----------------------------------------------------------------------
@pytest.mark.perf
@pytest.mark.skipif(QUICK, reason=QUICK_SKIP_REASON)
def test_wasserstein_bound_speedup(trajectory):
    largest = max(
        (e for e in trajectory if e["op"] == "wasserstein_bound"),
        key=lambda e: e["size"],
    )
    assert largest["speedup"] >= SPEEDUP_FLOOR, largest


@pytest.mark.perf
@pytest.mark.skipif(QUICK, reason=QUICK_SKIP_REASON)
def test_group_sensitivity_speedup(trajectory):
    entry = next(e for e in trajectory if e["op"] == "group_sensitivity")
    assert entry["speedup"] >= SPEEDUP_FLOOR, entry


# ----------------------------------------------------------------------
# pytest-benchmark rate probes
# ----------------------------------------------------------------------
def test_wasserstein_bound_rate(benchmark):
    length = BOUND_LENGTHS[-1]
    instantiation = entrywise_instantiation(
        length, 2, [MarkovChainModel(CHAIN, length)]
    )
    value = benchmark.pedantic(
        lambda: wasserstein_bound(instantiation, CountQuery()), rounds=3, iterations=1
    )
    assert value > 0


def test_group_sensitivity_rate(benchmark):
    n = SENSITIVITY_RECORDS
    groups = [[i] for i in range(n)]
    value = benchmark.pedantic(
        lambda: group_sensitivity(CountQuery(), 2, n, groups), rounds=3, iterations=1
    )
    assert value > 0
