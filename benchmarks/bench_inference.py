"""Benchmark E9 — variable-elimination inference versus joint enumeration.

The general Markov Quilt Mechanism's kernel is ``max_influence`` (Definition
4.1): conditional distributions of the quilt given each secret value.  The
seed computed it by enumerating the full joint (capped at 2M assignments) in
Python loops; the :mod:`repro.inference` engine computes it by einsum
variable elimination.  This benchmark measures both on a grid of binary
chains and records the trajectory to ``results/BENCH_inference.json``:

* ``op = "max_influence"`` — one quilt's influence, enumeration baseline
  versus engine, at every size where the baseline is feasible in benchmark
  time (the baseline here is already *better* than the seed: it memoizes
  the enumerated joint, where the seed re-enumerated per conditional);
* ``op = "algorithm2_calibration"`` — the full Algorithm 2 sigma search
  near the old ``MAX_JOINT_SIZE`` cap (2^20 of 2M assignments) and beyond
  it (2^24, where ``enumerate_joint`` raises), engine only.

Acceptance gates (full mode; quick mode shrinks grids and skips gates):

* the engine's ``max_influence`` is >= 10x the enumeration baseline at the
  largest baseline size;
* the engine's *entire* Algorithm 2 calibration near the cap is >= 10x
  faster than a *single* baseline ``max_influence`` op at a *smaller*
  network — a strict lower bound on what the enumeration-era calibration
  would cost there;
* the engine calibrates a network whose joint exceeds ``MAX_JOINT_SIZE``
  (impossible at seed), and its sigma matches the chain-specialized
  Algorithm 3 on the same path graph.
"""

import time

import numpy as np
import pytest

from benchmarks.recording import QUICK, QUICK_SKIP_REASON, record_trajectory
from repro.core.markov_quilt import MARGINAL_ATOL, MarkovQuiltMechanism, max_influence
from repro.core.mqm_chain import MQMExact
from repro.distributions.bayesnet import MAX_JOINT_SIZE, DiscreteBayesianNetwork
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import EnumerationError
from repro.inference import clear_engine_registry, engine_for

INITIAL = np.array([0.6, 0.4])
TRANSITION = np.array([[0.85, 0.15], [0.2, 0.8]])
EPSILON = 2.0
SPEEDUP_FLOOR = 10.0

#: Chain lengths (binary states, joint size 2^n) where the enumeration
#: baseline runs within benchmark budget.
BASELINE_LENGTHS = (8, 10) if QUICK else (12, 15, 18)
#: Engine-only lengths: near the old cap and beyond it.
NEAR_CAP_LENGTH = 12 if QUICK else 20  # 2^20 of the 2M-assignment cap
BEYOND_CAP_LENGTH = 24  # 2^24 > MAX_JOINT_SIZE; engine-only by construction


def _chain_net(length: int) -> DiscreteBayesianNetwork:
    return DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, length)


def _middle_quilt(net: DiscreteBayesianNetwork):
    """A symmetric two-sided quilt around the middle node."""
    nodes = net.nodes
    mid = len(nodes) // 2
    quilt = net.quilt_from_set(nodes[mid], {nodes[mid - 2], nodes[mid + 2]})
    assert quilt is not None
    return quilt


# ----------------------------------------------------------------------
# The enumeration-era kernel (the seed's max_influence, joint memoized)
# ----------------------------------------------------------------------
def _enumeration_conditional(net, targets, given):
    assignments, probs = net.enumerate_joint()
    index = {n: i for i, n in enumerate(net.nodes)}
    target_idx = [index[t] for t in targets]
    table: dict = {}
    total = 0.0
    for assignment, prob in zip(assignments, probs):
        if any(assignment[index[g]] != v for g, v in given.items()):
            continue
        total += prob
        key = tuple(assignment[i] for i in target_idx)
        table[key] = table.get(key, 0.0) + prob
    return {key: value / total for key, value in table.items()}


def _enumeration_max_influence(net, quilt) -> float:
    assignments, probs = net.enumerate_joint()
    index = {n: i for i, n in enumerate(net.nodes)}[quilt.node]
    marginal = np.zeros(net.n_states(quilt.node))
    for assignment, prob in zip(assignments, probs):
        marginal[assignment[index]] += prob
    targets = sorted(quilt.quilt)
    values = [v for v in range(marginal.size) if marginal[v] > MARGINAL_ATOL]
    tables = {
        value: _enumeration_conditional(net, targets, {quilt.node: value})
        for value in values
    }
    supremum = 0.0
    for a in values:
        for b in values:
            if a == b:
                continue
            for key, p in tables[a].items():
                if p <= MARGINAL_ATOL:
                    continue
                q = tables[b].get(key, 0.0)
                if q <= MARGINAL_ATOL:
                    return float("inf")
                supremum = max(supremum, float(np.log(p / q)))
    return supremum


# ----------------------------------------------------------------------
# Measurements (module-scoped: every test reads one trajectory)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trajectory():
    entries = []
    for length in BASELINE_LENGTHS:
        baseline_net = _chain_net(length)
        quilt = _middle_quilt(baseline_net)
        start = time.perf_counter()
        baseline_value = _enumeration_max_influence(baseline_net, quilt)
        baseline_seconds = time.perf_counter() - start

        engine_net = _chain_net(length)
        # engine_for() keys on content fingerprint, so a freshly built
        # equal-content network would still hit a warm engine from earlier
        # in this process — drop the registry to time a cold elimination.
        clear_engine_registry()
        start = time.perf_counter()
        engine_value = max_influence([engine_net], quilt)
        engine_seconds = time.perf_counter() - start
        entries.append(
            {
                "op": "max_influence",
                "size": baseline_net.joint_size(),
                "nodes": length,
                "baseline_s": baseline_seconds,
                "engine_s": engine_seconds,
                "speedup": baseline_seconds / engine_seconds,
                "baseline_value": baseline_value,
                "engine_value": engine_value,
            }
        )

    largest_op = max(
        (e for e in entries if e["op"] == "max_influence"), key=lambda e: e["size"]
    )
    for length, label in (
        (NEAR_CAP_LENGTH, "near-cap"),
        (BEYOND_CAP_LENGTH, "beyond-cap"),
    ):
        net = _chain_net(length)
        mechanism = MarkovQuiltMechanism([net], epsilon=EPSILON)
        start = time.perf_counter()
        sigma = mechanism.sigma_max()
        seconds = time.perf_counter() - start
        evaluations = sum(
            sum(1 for quilt in quilts if not quilt.is_trivial)
            for quilts in mechanism.quilt_sets.values()
        )
        # A strict lower bound on what this calibration costs by
        # enumeration: ONE max_influence op, with the measured per-op
        # baseline scaled linearly to this joint size (enumeration walks
        # every assignment, so its cost is at least linear in the joint) —
        # the real calibration needs `evaluations` such ops.
        baseline_floor = (
            largest_op["baseline_s"] * net.joint_size() / largest_op["size"]
            if net.joint_size() <= MAX_JOINT_SIZE
            else None
        )
        entries.append(
            {
                "op": "algorithm2_calibration",
                "label": label,
                "size": net.joint_size(),
                "nodes": length,
                "influence_evaluations": evaluations,
                "baseline_s": None,  # enumeration infeasible at benchmark scale
                "baseline_floor_s": baseline_floor,
                "engine_s": seconds,
                "speedup": None,
                "speedup_floor_estimate": (
                    baseline_floor / seconds if baseline_floor else None
                ),
                "sigma_max": sigma,
            }
        )
    record_trajectory(
        "inference",
        entries,
        meta={
            "epsilon": EPSILON,
            "max_joint_size": MAX_JOINT_SIZE,
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )
    return entries


def _by_op(trajectory, op):
    return [entry for entry in trajectory if entry["op"] == op]


# ----------------------------------------------------------------------
# Correctness (always, including quick mode)
# ----------------------------------------------------------------------
def test_engine_matches_enumeration_baseline(trajectory):
    """The engine's influence equals the enumeration kernel's wherever the
    baseline runs — the speedup must not buy a different answer."""
    ops = _by_op(trajectory, "max_influence")
    assert len(ops) == len(BASELINE_LENGTHS)
    for entry in ops:
        np.testing.assert_allclose(
            entry["engine_value"], entry["baseline_value"], rtol=1e-10
        )


def test_beyond_cap_is_enumeration_infeasible_but_calibrates():
    """Acceptance: a joint past MAX_JOINT_SIZE raises in the oracle while
    Algorithm 2 still calibrates through the engine, matching Algorithm 3."""
    net = _chain_net(BEYOND_CAP_LENGTH)
    assert net.joint_size() > MAX_JOINT_SIZE
    with pytest.raises(EnumerationError):
        net.enumerate_joint()
    quilt_sets = {node: net.chain_quilts(node) for node in net.nodes}
    general = MarkovQuiltMechanism([net], epsilon=EPSILON, quilt_sets=quilt_sets)
    chain = MarkovChain(INITIAL, TRANSITION)
    exact = MQMExact(
        FiniteChainFamily([chain]), EPSILON, max_window=BEYOND_CAP_LENGTH
    )
    np.testing.assert_allclose(
        general.sigma_max(), exact.sigma_max(BEYOND_CAP_LENGTH), rtol=1e-9
    )


# ----------------------------------------------------------------------
# Speedup gates (full mode only)
# ----------------------------------------------------------------------
@pytest.mark.perf
@pytest.mark.skipif(QUICK, reason=QUICK_SKIP_REASON)
def test_per_op_speedup_floor(trajectory):
    """Acceptance: >= 10x over the enumeration baseline at the largest
    baseline size (measured ~10^3-10^4x)."""
    largest = max(_by_op(trajectory, "max_influence"), key=lambda e: e["size"])
    assert largest["speedup"] >= SPEEDUP_FLOOR, largest


@pytest.mark.perf
@pytest.mark.skipif(QUICK, reason=QUICK_SKIP_REASON)
def test_near_cap_calibration_beats_enumeration_floor(trajectory):
    """Acceptance: the *whole* Algorithm 2 calibration at 2^20 (near the
    old 2M cap) is >= 10x faster than ``baseline_floor_s`` — the measured
    per-op enumeration baseline scaled to the 2^20 joint, i.e. the cost of
    a *single* enumeration-based max_influence op there, where the real
    enumeration-era calibration needs hundreds
    (``influence_evaluations``)."""
    near_cap = next(
        e for e in _by_op(trajectory, "algorithm2_calibration") if e["label"] == "near-cap"
    )
    assert near_cap["influence_evaluations"] > 100
    assert near_cap["engine_s"] * SPEEDUP_FLOOR <= near_cap["baseline_floor_s"], near_cap


# ----------------------------------------------------------------------
# pytest-benchmark rate probes
# ----------------------------------------------------------------------
def test_engine_max_influence_rate(benchmark):
    net = _chain_net(NEAR_CAP_LENGTH)
    quilt = _middle_quilt(net)
    engine_for(net)  # warm the factor/order caches: steady-state rate
    value = benchmark.pedantic(
        lambda: max_influence([net], quilt), rounds=3, iterations=1
    )
    assert np.isfinite(value)


def test_engine_conditional_tables_rate(benchmark):
    net = _chain_net(NEAR_CAP_LENGTH)
    engine = engine_for(net)
    nodes = net.nodes
    targets = (nodes[2], nodes[-3])

    def run():
        engine._table_cache.clear()  # measure the elimination, not the memo
        return engine.conditional_tables(targets, nodes[len(nodes) // 2])

    tensor = benchmark.pedantic(run, rounds=3, iterations=1)
    assert tensor.shape[0] == 2
