"""Benchmark E9 — accounting: releases served per budget, Rényi vs linear.

The serving question this answers: from one fixed privacy budget, how many
more releases does Rényi-Pufferfish strong composition serve than the
Theorem 4.4 linear ledger?  The measurement is **deterministic** — stop
counts depend only on the accounting arithmetic, not on wall-clock — so the
acceptance gate runs in every mode, quick included:

* ``RenyiAccountant`` must serve at least **1.5x** the linear release count
  on the paper-scale workload (epsilon = 0.2 per release, delta = 1e-5,
  budget = 12) — the headline claim of the accounting subsystem.
* The Gaussian mechanism under Rényi accounting must beat the Laplace
  Rényi count again (its cost curve is a genuine curve, not a pure-epsilon
  envelope), and the linear count must equal ``floor(budget / epsilon)``
  exactly.

A throughput entry rides along for regression tracking (ledger appends per
second under streaming for both accountants), and the machine-readable
trajectory is recorded to ``results/BENCH_accounting.json``.
"""

import time

import numpy as np
import pytest

from benchmarks.recording import QUICK, record_trajectory
from repro.core.accounting import RenyiAccountant
from repro.core.composition import CompositionAccountant
from repro.core.gaussian import GaussianMarkovQuiltMechanism
from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.core.queries import CountQuery
from repro.distributions.structured import hub_and_spoke_network
from repro.exceptions import BudgetExhaustedError
from repro.serving import PrivacyEngine

EPSILON = 0.2
DELTA = 1e-5
BUDGET = 12.0
GATE = 1.5
BLOCK_SIZE = 64
THROUGHPUT_RELEASES = 200 if QUICK else 2000


@pytest.fixture(scope="module")
def workload():
    network = hub_and_spoke_network(3, 2)
    data = np.ones(len(network.nodes))
    return network, data, CountQuery()


def _drain(network, data, query, mechanism, accountant):
    """Serve one stream until the accountant refuses; count and time it."""
    engine = PrivacyEngine(mechanism, accountant=accountant, rng=0)
    start = time.perf_counter()
    with engine.stream(data, query, block_size=BLOCK_SIZE) as session:
        try:
            while True:
                next(session)
        except BudgetExhaustedError:
            pass
        seconds = time.perf_counter() - start
        return session.n_yielded, engine.spent_epsilon(), seconds


@pytest.fixture(scope="module")
def accounting_report(workload):
    network, data, query = workload

    def laplace():
        return MarkovQuiltMechanism([network], EPSILON)

    def gaussian():
        return GaussianMarkovQuiltMechanism([network], EPSILON, delta=DELTA)

    def renyi():
        return RenyiAccountant(budget=BUDGET, delta=DELTA)

    linear_served, linear_spent, linear_seconds = _drain(
        network, data, query, laplace(), CompositionAccountant(budget=BUDGET)
    )
    renyi_served, renyi_spent, renyi_seconds = _drain(
        network, data, query, laplace(), renyi()
    )
    gaussian_served, gaussian_spent, _ = _drain(
        network, data, query, gaussian(), renyi()
    )

    ratio = renyi_served / linear_served
    entries = [
        {
            "op": "releases_per_budget",
            "mechanism": "MarkovQuilt(laplace)",
            "accountant": "CompositionAccountant",
            "served": linear_served,
            "spent": linear_spent,
            "seconds": linear_seconds,
            "speedup": None,
        },
        {
            "op": "releases_per_budget",
            "mechanism": "MarkovQuilt(laplace)",
            "accountant": "RenyiAccountant",
            "served": renyi_served,
            "spent": renyi_spent,
            "seconds": renyi_seconds,
            "speedup": ratio,
        },
        {
            "op": "releases_per_budget",
            "mechanism": "GaussianMarkovQuilt",
            "accountant": "RenyiAccountant",
            "served": gaussian_served,
            "spent": gaussian_spent,
            "speedup": gaussian_served / linear_served,
        },
    ]
    record_trajectory(
        "accounting",
        entries,
        meta={
            "network": "hub_and_spoke(3, 2)",
            "epsilon": EPSILON,
            "delta": DELTA,
            "budget": BUDGET,
            "gate": GATE,
        },
    )
    return {
        "entries": entries,
        "linear": linear_served,
        "renyi": renyi_served,
        "gaussian": gaussian_served,
        "ratio": ratio,
    }


def test_accounting_trajectory_recorded(accounting_report):
    """The measurement runs in every mode and records sane counts."""
    assert all(e["served"] > 0 for e in accounting_report["entries"])


def test_linear_count_is_exact(accounting_report):
    """Theorem 4.4 arithmetic: floor(budget / epsilon) releases, exactly."""
    assert accounting_report["linear"] == int(BUDGET / EPSILON)


def test_renyi_serves_1_5x_gate(accounting_report):
    """Acceptance (deterministic, every mode): Rényi accounting serves at
    least 1.5x the linear release count from the same budget."""
    assert accounting_report["ratio"] >= GATE


def test_gaussian_renyi_beats_laplace_renyi(accounting_report):
    """The Gaussian curve composes strictly tighter than the pure-epsilon
    envelope the Laplace mechanism is charged with."""
    assert accounting_report["gaussian"] > accounting_report["renyi"]


def test_renyi_never_overspends(accounting_report):
    entries = accounting_report["entries"]
    assert all(e["spent"] <= BUDGET + 1e-9 for e in entries)


def test_renyi_ledger_append_rate(benchmark, workload):
    """Regression tracker: RDP grid updates per ledger append stay cheap."""
    network, data, query = workload
    engine = PrivacyEngine(
        MarkovQuiltMechanism([network], EPSILON),
        accountant=RenyiAccountant(delta=DELTA),
        rng=1,
    )
    session = engine.stream(data, query, rng=2, block_size=BLOCK_SIZE)
    chunk = benchmark.pedantic(
        lambda: session.take(THROUGHPUT_RELEASES), rounds=3, iterations=1
    )
    assert len(chunk) == THROUGHPUT_RELEASES
