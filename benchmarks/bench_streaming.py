"""Benchmark E8 — streaming sessions: steady-state latency vs single releases.

The serving question this answers: once the cache is warm, what does *one
more release* cost?  Repeated single ``PrivacyEngine.release()`` calls pay a
cache-key computation, a query evaluation, and a scalar-sized noise draw per
release; a :class:`~repro.serving.ReleaseSession` pays those once per
session and amortizes noise over vectorized blocks, leaving a slice plus a
ledger append per release.  The acceptance gate is streamed steady-state
throughput at least 5x repeated single releases; in practice it is far
higher.

Correctness rides along in every mode (quick included): the streamed values
are asserted bit-identical to the ``release_batch`` prefix under a shared
seed, and a budget-capped session is asserted to stop at exactly the
budgeted count with an exact ledger.  The machine-readable trajectory is
recorded to ``results/BENCH_streaming.json``.
"""

import time

import numpy as np
import pytest

from benchmarks.recording import QUICK, QUICK_SKIP_REASON, record_trajectory
from repro.core.mqm_chain import MQMExact
from repro.core.queries import StateFrequencyQuery
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import BudgetExhaustedError
from repro.serving import PrivacyEngine

EPSILON = 1.0
LENGTH = 400 if QUICK else 2000
WINDOW = 32 if QUICK else 64
STREAM_RELEASES = 500 if QUICK else 20000
SINGLE_RELEASES = 50 if QUICK else 500
BLOCK_SIZE = 256
CHUNK = 100
PREFIX_CHECK = 64


@pytest.fixture(scope="module")
def workload():
    chain = MarkovChain(
        np.full(4, 0.25),
        [
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.1, 0.1, 0.7, 0.1],
            [0.1, 0.1, 0.1, 0.7],
        ],
    ).with_stationary_initial()
    family = FiniteChainFamily([chain])
    data = chain.sample(LENGTH, rng=0)
    query = StateFrequencyQuery(1, LENGTH)
    return family, data, query


def _engine(family, **kwargs) -> PrivacyEngine:
    return PrivacyEngine(MQMExact(family, EPSILON, max_window=WINDOW), rng=1, **kwargs)


def _single_release_seconds(engine, data, query, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        engine.release(data, query)
    return time.perf_counter() - start


def _streamed_seconds(engine, data, query, n: int) -> float:
    session = engine.stream(
        data, query, rng=2, block_size=BLOCK_SIZE, max_releases=n
    )
    start = time.perf_counter()
    while session.take(CHUNK):
        pass
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def streaming_report(workload):
    family, data, query = workload

    single_engine = _engine(family)
    single_engine.calibrate(query, data)
    single_seconds = _single_release_seconds(
        single_engine, data, query, SINGLE_RELEASES
    )

    stream_engine = _engine(family)
    stream_engine.calibrate(query, data)
    stream_seconds = _streamed_seconds(stream_engine, data, query, STREAM_RELEASES)

    # Correctness (every mode): seeded stream == release_batch prefix.
    prefix = [
        r.value
        for r in _engine(family).stream(data, query, rng=3, block_size=7).take(
            PREFIX_CHECK
        )
    ]
    batch = [
        r.value
        for r in _engine(family).release_batch([(data, query)] * PREFIX_CHECK, rng=3)
    ]
    identical = prefix == batch

    # Correctness (every mode): a budgeted session stops at exactly the
    # budgeted count with an exact ledger and never over-spends.
    budget_n = 25
    budgeted = _engine(family, epsilon_budget=budget_n * EPSILON)
    session = budgeted.stream(data, query, rng=4, block_size=BLOCK_SIZE)
    yielded = 0
    ledger = None
    try:
        for _ in session:
            yielded += 1
    except BudgetExhaustedError as error:
        ledger = error.ledger()

    single_rps = SINGLE_RELEASES / single_seconds
    stream_rps = STREAM_RELEASES / stream_seconds
    entries = [
        {
            "op": "steady_state",
            "length": LENGTH,
            "single_releases": SINGLE_RELEASES,
            "single_seconds": single_seconds,
            "single_rps": single_rps,
            "stream_releases": STREAM_RELEASES,
            "stream_seconds": stream_seconds,
            "stream_rps": stream_rps,
            "stream_per_release_us": 1e6 * stream_seconds / STREAM_RELEASES,
            "block_size": BLOCK_SIZE,
            "chunk": CHUNK,
            "speedup": stream_rps / single_rps,
        },
        {
            "op": "prefix_bit_identity",
            "length": LENGTH,
            "n": PREFIX_CHECK,
            "identical": identical,
            "speedup": None,
        },
        {
            "op": "budget_ledger",
            "length": LENGTH,
            "budget": budget_n * EPSILON,
            "yielded": yielded,
            "ledger": ledger,
            "speedup": None,
        },
    ]
    record_trajectory(
        "streaming",
        entries,
        meta={
            "mechanism": "MQMExact",
            "epsilon": EPSILON,
            "max_window": WINDOW,
            "k": 4,
        },
    )
    return {
        "entries": entries,
        "identical": identical,
        "yielded": yielded,
        "ledger": ledger,
        "speedup": stream_rps / single_rps,
    }


def test_streaming_trajectory_recorded(streaming_report):
    """The measurement runs in every mode and records sane numbers."""
    steady = streaming_report["entries"][0]
    assert steady["stream_rps"] > 0 and steady["single_rps"] > 0


def test_streamed_prefix_is_bit_identical(streaming_report):
    """Correctness in every mode: stream == release_batch prefix, bit for
    bit, under a shared seed."""
    assert streaming_report["identical"] is True


def test_budgeted_session_never_overspends(streaming_report):
    """Correctness in every mode: a budget of 25*eps yields exactly 25
    releases and the refusal carries the exact ledger."""
    assert streaming_report["yielded"] == 25
    ledger = streaming_report["ledger"]
    assert ledger is not None
    assert ledger["spent"] == pytest.approx(25 * EPSILON)
    assert ledger["remaining"] == pytest.approx(0.0)
    assert ledger["n_completed"] == 25


@pytest.mark.perf
@pytest.mark.skipif(QUICK, reason=QUICK_SKIP_REASON)
def test_streaming_speedup_gate(streaming_report):
    """Acceptance: steady-state streamed releases >= 5x repeated single
    release() calls on the warm MQM chain workload."""
    assert streaming_report["speedup"] >= 5.0


def test_streamed_release_rate(benchmark, workload):
    family, data, query = workload
    engine = _engine(family)
    engine.calibrate(query, data)
    session = engine.stream(data, query, rng=2, block_size=BLOCK_SIZE)
    chunk = benchmark.pedantic(lambda: session.take(256), rounds=3, iterations=1)
    assert len(chunk) == 256


def test_single_release_rate(benchmark, workload):
    family, data, query = workload
    engine = _engine(family)
    engine.calibrate(query, data)
    result = benchmark.pedantic(
        lambda: engine.release(data, query), rounds=3, iterations=1
    )
    assert result.noise_scale > 0
