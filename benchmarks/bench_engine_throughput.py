"""Benchmark E7 — serving-engine throughput: cold vs warm-cache releases.

The quantity that matters for the serving north star is releases/second.
Cold = a fresh mechanism per release (per-release recalibration, what naive
use of the paper's algorithms costs); warm = one :class:`PrivacyEngine` whose
calibration cache is hot, answering batches with a single vectorized noise
draw.  The recorded artifact is JSON (``results/engine_throughput.json``)
matching the shape of ``python -m repro throughput``.

The MQM chain workload here is the acceptance workload for the engine: the
warm/batched path must be at least 10x faster than per-release
recalibration.  In practice it is orders of magnitude faster.
"""

import json
import time

import numpy as np
import pytest

from benchmarks.recording import QUICK, QUICK_SKIP_REASON, RESULTS_DIR, record
from repro.core.mqm_chain import MQMExact
from repro.core.queries import StateFrequencyQuery
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.serving import PrivacyEngine

EPSILON = 1.0
LENGTH = 400 if QUICK else 2000
WINDOW = 32 if QUICK else 64
WARM_RELEASES = 200 if QUICK else 2000
COLD_RELEASES = 3 if QUICK else 10


@pytest.fixture(scope="module")
def workload():
    chain = MarkovChain(
        np.full(4, 0.25),
        [
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.1, 0.1, 0.7, 0.1],
            [0.1, 0.1, 0.1, 0.7],
        ],
    ).with_stationary_initial()
    family = FiniteChainFamily([chain])
    data = chain.sample(LENGTH, rng=0)
    query = StateFrequencyQuery(1, LENGTH)
    return family, data, query


def _cold_seconds(family, data, query, n_releases: int) -> float:
    start = time.perf_counter()
    for _ in range(n_releases):
        MQMExact(family, EPSILON, max_window=WINDOW).release(data, query, rng=1)
    return time.perf_counter() - start


def _warm_seconds(engine, data, query, n_releases: int) -> float:
    start = time.perf_counter()
    engine.release_repeated(data, query, n_releases)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def throughput_report(workload):
    family, data, query = workload
    cold_seconds = _cold_seconds(family, data, query, COLD_RELEASES)
    engine = PrivacyEngine(MQMExact(family, EPSILON, max_window=WINDOW), rng=1)
    engine.calibrate(query, data)  # one cache miss, paid up front
    warm_seconds = _warm_seconds(engine, data, query, WARM_RELEASES)
    report = {
        "workload": {
            "mechanism": "MQMExact",
            "length": LENGTH,
            "k": 4,
            "max_window": WINDOW,
            "epsilon": EPSILON,
        },
        "cold": {
            "releases": COLD_RELEASES,
            "seconds": cold_seconds,
            "rps": COLD_RELEASES / cold_seconds,
        },
        "warm": {
            "releases": WARM_RELEASES,
            "seconds": warm_seconds,
            "rps": WARM_RELEASES / warm_seconds,
        },
        "speedup": (WARM_RELEASES / warm_seconds) / (COLD_RELEASES / cold_seconds),
        "engine_stats": engine.stats(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_throughput.json").write_text(json.dumps(report, indent=2) + "\n")
    record("engine_throughput", json.dumps(report, indent=2))
    return report


def test_throughput_report_recorded(throughput_report):
    """The measurement itself runs in every mode (quick included) and the
    cache behaves: exactly one miss however many releases follow."""
    assert throughput_report["warm"]["rps"] > 0
    assert throughput_report["engine_stats"]["cache_misses"] == 1


@pytest.mark.perf
@pytest.mark.skipif(QUICK, reason=QUICK_SKIP_REASON)
def test_warm_cache_amortization(throughput_report):
    """Acceptance: warm-cache batched releases are >= 10x per-release
    recalibration on the MQM chain workload."""
    assert throughput_report["speedup"] >= 10.0


def test_cold_release_rate(benchmark, workload):
    family, data, query = workload
    result = benchmark.pedantic(
        lambda: MQMExact(family, EPSILON, max_window=WINDOW).release(data, query, rng=1),
        rounds=3,
        iterations=1,
    )
    assert result.noise_scale > 0


def test_warm_batch_release_rate(benchmark, workload):
    family, data, query = workload
    engine = PrivacyEngine(MQMExact(family, EPSILON, max_window=WINDOW), rng=1)
    engine.calibrate(query, data)
    batch = benchmark.pedantic(
        lambda: engine.release_repeated(data, query, 256), rounds=3, iterations=1
    )
    assert len(batch) == 256


def test_disk_cache_round_trip_speed(tmp_path, workload):
    """A second process (simulated by a fresh mechanism + cache object over
    the same JSON file) skips the quilt search entirely."""
    from repro.serving import CalibrationCache, JSONFileCache

    family, data, query = workload
    path = tmp_path / "calibrations.json"
    first = PrivacyEngine(
        MQMExact(family, EPSILON, max_window=WINDOW),
        cache=CalibrationCache(JSONFileCache(path)),
    )
    cold = time.perf_counter()
    first.calibrate(query, data)
    cold = time.perf_counter() - cold

    second = PrivacyEngine(
        MQMExact(family, EPSILON, max_window=WINDOW),
        cache=CalibrationCache(JSONFileCache(path)),
    )
    warm = time.perf_counter()
    calibration = second.calibrate(query, data)
    warm = time.perf_counter() - warm
    assert second.cache.hits == 1
    assert calibration.scale == first.calibrate(query, data).scale
    assert warm < cold
