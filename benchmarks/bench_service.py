"""Benchmark E10 — the multi-tenant privacy service end to end.

The serving question: what does the durable-ledger HTTP front-end cost per
release, cold versus warm?  *Cold* is a fresh service process against a
fresh store — the first release pays calibration plus tenant-ledger
creation.  *Warm* comes in two shapes: single releases (every request pays
the full reservation cycle — reserve + consume + release-unused, three
exclusive store transactions — plus HTTP dispatch: the service's worst
case and its per-request durability price) and batched releases (one
reservation cycle amortized over ``n`` releases: the steady state a
throughput deployment actually runs).  A streamed session sits between —
admission amortized over the whole reservation, one durable consume per
yield.

Two deterministic correctness gates run in every mode, quick included:

* **Restart rehydration is bit-identical**: Gaussian releases (mechanism-
  supplied RDP curves) through the service, then a simulated restart over
  the same store — the rehydrated tenant's ``eps(delta)`` must equal the
  pre-restart value exactly (``==``, no envelope slack), and the
  continuation must refuse at the same point.
* **Admission exactness**: a linear tenant must serve exactly
  ``floor(budget / epsilon)`` releases before 429, however the requests
  are sliced.

Wall-clock entries (requests/second for cold, warm, and streamed paths)
are recorded to ``results/BENCH_service.json`` for trajectory tracking;
the warm-vs-cold speedup gate only runs in full mode on the perf lane.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.recording import QUICK, QUICK_SKIP_REASON, record_trajectory
from repro.service import create_app
from repro.service.testing import TestClient

EPSILON = 0.5  # the demo workloads' per-release epsilon
SINGLE_RELEASES = 10 if QUICK else 40
BATCH_SIZE = 50
N_BATCHES = 2 if QUICK else 8
STREAM_RELEASES = 40 if QUICK else 200
COLD_TRIALS = 2 if QUICK else 5
WARM_VS_COLD_GATE = 2.0


def _new_client(store_path) -> TestClient:
    return TestClient(create_app(str(store_path)))


@pytest.fixture(scope="module")
def service_report(tmp_path_factory):
    base = tmp_path_factory.mktemp("bench_service")

    # -- cold: fresh process, fresh store, first release pays everything --
    cold_seconds = []
    for trial in range(COLD_TRIALS):
        store_path = base / f"cold_{trial}.sqlite"
        client = _new_client(store_path)
        start = time.perf_counter()
        assert client.post("/tenants/t", {"budget": 1e6}).status == 200
        response = client.post(
            "/tenants/t/release", {"workload": "hub-laplace", "n": 1}
        )
        cold_seconds.append(time.perf_counter() - start)
        assert response.status == 200
        client.app.service.close()
    cold_rps = 1.0 / (sum(cold_seconds) / len(cold_seconds))

    # -- warm: steady state on one long-lived service + store --------------
    store_path = base / "warm.sqlite"
    client = _new_client(store_path)
    client.post("/tenants/t", {"budget": 1e6, "audit_trail": False})
    client.post("/tenants/t/release", {"workload": "hub-laplace", "n": 1})

    # Single releases: the per-request durability price (3 transactions).
    start = time.perf_counter()
    for _ in range(SINGLE_RELEASES):
        assert (
            client.post(
                "/tenants/t/release", {"workload": "hub-laplace", "n": 1}
            ).status
            == 200
        )
    single_seconds = time.perf_counter() - start
    single_rps = SINGLE_RELEASES / single_seconds

    # Batched releases: one reservation cycle per BATCH_SIZE releases.
    start = time.perf_counter()
    for _ in range(N_BATCHES):
        response = client.post(
            "/tenants/t/release", {"workload": "hub-laplace", "n": BATCH_SIZE}
        )
        assert response.status == 200
    warm_seconds = time.perf_counter() - start
    warm_releases = N_BATCHES * BATCH_SIZE
    warm_rps = warm_releases / warm_seconds

    # -- streamed: admission amortized over one reservation ---------------
    sid = client.post(
        "/tenants/t/stream",
        {"workload": "hub-laplace", "n_reserved": STREAM_RELEASES},
    ).json()["session_id"]
    start = time.perf_counter()
    drained = 0
    while drained < STREAM_RELEASES:
        chunk = client.post(f"/sessions/{sid}/next", {"n": 50}).json()
        assert chunk["n"] > 0
        drained += chunk["n"]
    stream_seconds = time.perf_counter() - start
    client.delete(f"/sessions/{sid}")
    stream_rps = drained / stream_seconds
    client.app.service.close()

    # -- gate: restart rehydration is bit-identical -----------------------
    rehydrate_path = base / "rehydrate.sqlite"
    first = _new_client(rehydrate_path)
    first.post(
        "/tenants/r", {"budget": 6.0, "accountant": "renyi", "delta": 1e-5}
    )
    spent = first.post(
        "/tenants/r/release", {"workload": "hub-gaussian", "n": 9, "seed": 0}
    ).json()["ledger"]["spent_epsilon"]
    first.app.service.close()
    reborn = _new_client(rehydrate_path)
    snapshot = reborn.get("/tenants/r").json()
    rehydration_exact = (
        snapshot["spent_epsilon"] == spent and snapshot["n_releases"] == 9
    )
    reborn.app.service.close()

    # -- gate: admission exactness ----------------------------------------
    exact_path = base / "exact.sqlite"
    exact = _new_client(exact_path)
    exact.post("/tenants/x", {"budget": 3.0, "accountant": "linear"})
    served = 0
    for n in (2, 1, 2, 1, 1, 1, 1):  # 9 requested > floor(3.0/0.5) = 6
        response = exact.post(
            "/tenants/x/release", {"workload": "hub-laplace", "n": n}
        )
        if response.status == 200:
            served += response.json()["n"]
    refused = exact.post(
        "/tenants/x/release", {"workload": "hub-laplace", "n": 1}
    )
    admission_exact = served == int(3.0 / EPSILON) and refused.status == 429
    exact.app.service.close()

    entries = [
        {
            "op": "release_cold",
            "trials": COLD_TRIALS,
            "seconds": sum(cold_seconds) / len(cold_seconds),
            "rps": cold_rps,
            "speedup": None,
        },
        {
            "op": "release_warm_single",
            "releases": SINGLE_RELEASES,
            "seconds": single_seconds,
            "rps": single_rps,
            "speedup": single_rps / cold_rps,
        },
        {
            "op": "release_warm_batched",
            "releases": warm_releases,
            "batch_size": BATCH_SIZE,
            "seconds": warm_seconds,
            "rps": warm_rps,
            "speedup": warm_rps / cold_rps,
        },
        {
            "op": "stream_warm",
            "releases": drained,
            "seconds": stream_seconds,
            "rps": stream_rps,
            "speedup": stream_rps / cold_rps,
        },
    ]
    record_trajectory(
        "service",
        entries,
        meta={
            "store": "sqlite",
            "workload": "hub-laplace",
            "epsilon": EPSILON,
            "gate": WARM_VS_COLD_GATE,
            "rehydration_exact": rehydration_exact,
            "admission_exact": admission_exact,
        },
    )
    return {
        "entries": entries,
        "cold_rps": cold_rps,
        "single_rps": single_rps,
        "warm_rps": warm_rps,
        "stream_rps": stream_rps,
        "rehydration_exact": rehydration_exact,
        "admission_exact": admission_exact,
    }


def test_service_trajectory_recorded(service_report):
    """The measurement runs in every mode and records sane rates."""
    assert all(
        entry["rps"] > 0 and entry["seconds"] > 0
        for entry in service_report["entries"]
    )


def test_restart_rehydration_bit_identical(service_report):
    """Deterministic gate, every mode: no envelope slack across restarts."""
    assert service_report["rehydration_exact"]


def test_admission_exactness(service_report):
    """Deterministic gate, every mode: exactly floor(budget/eps) served."""
    assert service_report["admission_exact"]


@pytest.mark.perf
def test_warm_batched_beats_cold(service_report):
    """Steady-state batched releases must beat the cold path by the gate
    factor (single warm releases are *expected* to lose to cold — they pay
    three durable transactions per release; the trajectory records them
    for regression tracking, not as a speedup claim)."""
    if QUICK:
        pytest.skip(QUICK_SKIP_REASON)
    assert (
        service_report["warm_rps"]
        >= WARM_VS_COLD_GATE * service_report["cold_rps"]
    )
