"""Benchmark E5 — regenerate Table 3 (electricity L1 errors) and time the
51-state releases."""

import pytest

from benchmarks.recording import record
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import RelativeFrequencyHistogram
from repro.data.estimation import empirical_chain
from repro.data.power import generate_power_dataset
from repro.distributions.chain_family import FiniteChainFamily
from repro.experiments.config import FAST
from repro.experiments.table3_power import check_orderings, run

CONFIG = FAST.power


@pytest.fixture(scope="module")
def table3():
    table = run(CONFIG)
    violations = check_orderings(table)
    text = table.render()
    text += "\n\nOrdering check: " + ("; ".join(violations) if violations else "all hold")
    record("table3_power", text)
    return table, violations


def test_table3_orderings(benchmark, table3):
    """GK16 N/A; MQMExact <= MQMApprox << GroupDP; errors fall with eps."""
    table, violations = table3
    assert violations == []
    dataset, _ = generate_power_dataset(CONFIG.length, rng=CONFIG.seed)
    chain = empirical_chain(dataset, smoothing=CONFIG.smoothing)
    family = FiniteChainFamily.singleton(chain)
    approx = MQMApprox(family, 1.0)
    window = approx.optimal_quilt_extent(dataset.longest_segment) or 64
    exact = MQMExact(family, 1.0, max_window=window)
    query = RelativeFrequencyHistogram(dataset.n_states, dataset.n_observations)

    def release_once():
        return exact.release(dataset, query, rng=0)

    release = benchmark.pedantic(release_once, rounds=1, iterations=1)
    assert release.noise_scale > 0
