"""Benchmark E1 — regenerate Figure 4 (upper row) and time its scale
computations.

``pytest benchmarks/bench_fig4_synthetic.py --benchmark-only`` reproduces
the three error curves (eps = 0.2, 1, 5) on the fast profile, asserts the
paper's qualitative shape, and times the per-family noise-scale computation
of each mechanism.
"""

import dataclasses

import pytest

from benchmarks.recording import QUICK, record
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import StateFrequencyQuery
from repro.baselines.gk16 import GK16Mechanism
from repro.distributions.chain_family import IntervalChainFamily
from repro.experiments.config import FAST
from repro.experiments.fig4_synthetic import gk16_cutoff, run

CONFIG = (
    dataclasses.replace(FAST.synthetic, n_trials=40) if QUICK else FAST.synthetic
)


@pytest.fixture(scope="module")
def figure_tables():
    tables = run(CONFIG)
    text = "\n\n".join(t.render() for t in tables.values())
    cutoff = gk16_cutoff(CONFIG)
    text += f"\n\nGK16 applicability line: alpha >= {cutoff}"
    record("fig4_synthetic", text)
    return tables


def test_fig4_shape_and_timing(benchmark, figure_tables):
    """Assert the paper's qualitative shape, then time MQMExact's scale."""
    for epsilon, table in figure_tables.items():
        rows = table.to_dict()
        # GK16 is N/A at alpha = 0.1 for every epsilon (line is eps-free).
        assert rows["GK16"][0] is None
        # MQM errors decrease as the family narrows.
        for name in ("MQMApprox", "MQMExact"):
            series = rows[name]
            assert series[0] > series[-1]
        # MQMExact is at least as accurate as MQMApprox everywhere.
        for exact, approx in zip(rows["MQMExact"], rows["MQMApprox"]):
            assert exact <= approx * 1.10  # trial noise tolerance
        # GroupDP sits near 1/eps.
        for value in rows["GroupDP"]:
            assert value == pytest.approx(1.0 / epsilon, rel=0.35)
    family = IntervalChainFamily(0.3, grid_step=CONFIG.grid_step)
    query = StateFrequencyQuery(1, CONFIG.length)

    def compute_scale():
        mech = MQMExact(family, 1.0, max_window=CONFIG.length)
        return mech.sigma_max(CONFIG.length)

    sigma = benchmark.pedantic(compute_scale, rounds=1, iterations=1)
    assert sigma > 0


def test_fig4_approx_scale_timing(benchmark):
    """MQMApprox's closed-form scale is orders of magnitude faster."""
    family = IntervalChainFamily(0.3, grid_step=CONFIG.grid_step)

    def compute_scale():
        return MQMApprox(family, 1.0).sigma_max(CONFIG.length)

    sigma = benchmark.pedantic(compute_scale, rounds=3, iterations=1)
    assert sigma > 0


def test_fig4_gk16_scale_timing(benchmark):
    """GK16 scale computation over the family grid."""
    family = IntervalChainFamily(0.35, grid_step=CONFIG.grid_step)
    query = StateFrequencyQuery(1, CONFIG.length)

    def compute_scale():
        mech = GK16Mechanism(family, 1.0, length=CONFIG.length)
        return mech.rho(CONFIG.length)

    rho = benchmark.pedantic(compute_scale, rounds=3, iterations=1)
    assert 0 < rho < 1
