#!/usr/bin/env python
"""One-command repository health gate: docs, imports, invariant lint.

Folds the standalone checkers into a single runner so CI lanes (and
humans) need exactly one invocation::

    python scripts/check_all.py            # everything
    python scripts/check_all.py --bare     # stdlib-only subset (no numpy)

Checks, in order:

1. **doc-links** — every path referenced by README.md / docs resolves
   (:mod:`check_doc_links`).
2. **import-safety** — the stdlib-only floor imports with numpy blocked
   (:func:`check_benchmarks_import.check_stdlib_only_imports`).
3. **lint** — ``python -m repro lint --strict`` over the repo
   (:mod:`repro.staticcheck`).
4. **benchmarks-import** — every ``benchmarks/*.py`` imports (needs
   numpy; skipped under ``--bare``).

``--bare`` runs only what a dependency-less container can: doc-links,
import-safety, and the lint (all pure stdlib).  Exit status is non-zero
if any selected check fails; every check runs even after a failure so
one pass reports everything.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _ensure_paths() -> None:
    for entry in (str(ROOT / "scripts"), str(ROOT / "src"), str(ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def check_doc_links() -> int:
    import check_doc_links as docs

    missing = docs.missing_references()
    if missing:
        for document, reference in missing:
            print(f"FAIL: {document}: broken reference '{reference}'")
        return 1
    print(f"doc-links: all references in {', '.join(docs.DOCUMENTS)} resolve")
    return 0


def check_import_safety() -> int:
    import check_benchmarks_import as bench

    return bench.check_stdlib_only_imports()


def check_lint() -> int:
    from repro.staticcheck.cli import main as lint_main

    return lint_main([str(ROOT), "--strict"])


def check_benchmarks() -> int:
    import check_benchmarks_import as bench

    missing = bench.REQUIRED - set(bench.benchmark_modules())
    if missing:
        print(f"FAIL: required benchmark module(s) missing: {sorted(missing)}")
        return 1
    import importlib

    failures = 0
    for name in bench.benchmark_modules():
        try:
            importlib.import_module(name)
        except Exception as error:  # noqa: BLE001 - report every breakage
            failures += 1
            print(f"FAIL: {name}: {error!r}")
    if failures:
        return 1
    print(
        f"benchmarks-import: all {len(bench.benchmark_modules())} "
        "benchmark modules import cleanly"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bare",
        action="store_true",
        help="run only the stdlib-only checks (no numpy required)",
    )
    args = parser.parse_args(argv)
    _ensure_paths()

    checks = [
        ("doc-links", check_doc_links),
        ("import-safety", check_import_safety),
        ("lint", check_lint),
    ]
    if not args.bare:
        checks.append(("benchmarks-import", check_benchmarks))

    failed = []
    for name, runner in checks:
        print(f"== {name} ==")
        try:
            status = runner()
        except Exception as error:  # noqa: BLE001 - a crash is a failure too
            print(f"FAIL: {name} crashed: {error!r}")
            status = 1
        if status != 0:
            failed.append(name)
        print()
    if failed:
        print(f"FAILED: {', '.join(failed)}")
        return 1
    print(f"all {len(checks)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
