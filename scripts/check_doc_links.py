#!/usr/bin/env python
"""Verify that every file path referenced in README.md and docs/ exists.

The docs promise specific code paths (``src/repro/serving/engine.py``,
``benchmarks/bench_engine_throughput.py``, ...).  This check keeps them
honest: it extracts

* markdown links ``[text](target)`` (local targets only), and
* inline-code path references (backticked strings that look like repo paths
  — contain a ``/`` and end in a known extension, or start with a known
  top-level directory),

resolves them against the repo root, and fails listing anything missing.
Run directly (``python scripts/check_doc_links.py``), via the tier-1 test
wrapper (``tests/test_docs_links.py``), or in CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documents whose references must resolve.
DOCUMENTS = ("README.md", "docs/architecture.md", "docs/api.md")

#: Extensions that make a backticked token a file reference.
PATH_EXTENSIONS = (".py", ".md", ".json", ".txt", ".yml", ".yaml", ".toml", ".cfg")

#: Top-level directories that make an extensionless token a path reference.
TOP_LEVEL_DIRS = ("src/", "docs/", "tests/", "benchmarks/", "examples/", "scripts/")

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)[^)]*\)")
INLINE_CODE = re.compile(r"`([^`\n]+)`")


def referenced_paths(text: str) -> set[str]:
    """Candidate repo-relative paths mentioned in one document."""
    candidates: set[str] = set()
    for target in MARKDOWN_LINK.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        candidates.add(target)
    for token in INLINE_CODE.findall(text):
        token = token.strip().rstrip("/")
        if " " in token or "*" in token or "{" in token:
            continue
        looks_like_file = "/" in token and token.endswith(PATH_EXTENSIONS)
        looks_like_dir = token.startswith(TOP_LEVEL_DIRS) or (
            token + "/"
        ) in TOP_LEVEL_DIRS
        if looks_like_file or looks_like_dir:
            candidates.add(token)
    return candidates


def missing_references(root: Path = REPO_ROOT) -> list[tuple[str, str]]:
    """``(document, reference)`` pairs that do not resolve to real files."""
    missing: list[tuple[str, str]] = []
    for name in DOCUMENTS:
        document = root / name
        if not document.exists():
            missing.append(("<repo>", name))
            continue
        base = document.parent
        for reference in sorted(referenced_paths(document.read_text())):
            # Relative links resolve against the document; bare repo paths
            # against the root.  Accept either.
            if (base / reference).exists() or (root / reference).exists():
                continue
            missing.append((name, reference))
    return missing


def main() -> int:
    missing = missing_references()
    if missing:
        print("Broken documentation references:")
        for document, reference in missing:
            print(f"  {document}: {reference}")
        return 1
    print(f"doc link check OK ({', '.join(DOCUMENTS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
