"""CI gate: every benchmark script must at least import.

Benchmarks are not collected by the tier-1 suite (``bench_*.py`` naming), so
a refactor can silently break them.  This script imports each module under
``benchmarks/`` (which executes its module level: imports, constants,
fixture definitions — not the timed bodies) and fails loudly on the first
error.  Run from the repository root; also exercised as a tier-1 test by
``tests/test_benchmarks_import.py``.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Benchmarks that must exist — a rename or deletion of one of these is a
#: coverage regression the glob alone would silently absorb.
REQUIRED = frozenset(
    {
        "benchmarks.bench_accounting",
        "benchmarks.bench_chaos",
        "benchmarks.bench_engine_throughput",
        "benchmarks.bench_inference",
        "benchmarks.bench_parallel_calibration",
        "benchmarks.bench_service",
        "benchmarks.bench_streaming",
        "benchmarks.bench_structured",
        "benchmarks.bench_temporal",
        "benchmarks.bench_wasserstein",
    }
)


#: Modules that must import with **numpy blocked** — the stdlib-only
#: tooling floor.  These run in a bare CI container before dependencies
#: install (``python -m repro lint``, fault-injection arming), so a
#: stray numpy import at any of their module levels is a regression.
STDLIB_ONLY = frozenset(
    {
        "repro",
        "repro.exceptions",
        "repro.faults",
        "repro.faults.points",
        "repro.staticcheck",
        "repro.staticcheck.cli",
        "repro.staticcheck.rules",
        "repro.utils.filelock",
        "repro.__main__",
    }
)


def benchmark_modules() -> list[str]:
    """Dotted module names for every ``benchmarks/*.py`` file."""
    return sorted(
        f"benchmarks.{path.stem}"
        for path in (ROOT / "benchmarks").glob("*.py")
        if path.stem != "__init__"
    )


def check_stdlib_only_imports() -> int:
    """Import every :data:`STDLIB_ONLY` module in a numpy-less subprocess.

    Blocking is simulated by pre-seeding ``sys.modules['numpy'] = None``
    (the stdlib convention: importing a ``None`` entry raises
    ``ImportError``), which behaves exactly like the module being absent.
    """
    import os
    import subprocess

    probe = (
        "import sys; sys.modules['numpy'] = None; import importlib; "
        f"[importlib.import_module(m) for m in {sorted(STDLIB_ONLY)!r}]; "
        "print('stdlib-only floor imports cleanly without numpy')"
    )
    env = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    result = subprocess.run(
        [sys.executable, "-c", probe], env=env, capture_output=True, text=True
    )
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        print("FAIL: stdlib-only floor pulled in numpy (or failed to import)")
    return result.returncode


def main() -> int:
    # The repo root (for the ``benchmarks`` namespace package) and ``src``
    # (for ``repro``) must both be importable, however the script is invoked.
    for entry in (str(ROOT), str(ROOT / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    if check_stdlib_only_imports() != 0:
        return 1
    missing = REQUIRED - set(benchmark_modules())
    if missing:
        print(f"required benchmark module(s) missing from benchmarks/: {sorted(missing)}")
        return 1
    failures = []
    for name in benchmark_modules():
        try:
            importlib.import_module(name)
            print(f"ok: {name}")
        except Exception as error:  # noqa: BLE001 - report every breakage
            failures.append((name, error))
            print(f"FAIL: {name}: {error!r}")
    if failures:
        print(f"{len(failures)} benchmark module(s) failed to import")
        return 1
    print(f"all {len(benchmark_modules())} benchmark modules import cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
