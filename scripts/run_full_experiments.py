"""Run every experiment at the full (paper-scale) profile and record the
output under results/full_<name>.txt.  Used to assemble EXPERIMENTS.md.

Usage:  python scripts/run_full_experiments.py [--skip-power]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
import time
from pathlib import Path

RESULTS = Path(__file__).resolve().parent.parent / "results"


def capture(name: str, func) -> None:
    RESULTS.mkdir(exist_ok=True)
    buffer = io.StringIO()
    start = time.perf_counter()
    with contextlib.redirect_stdout(buffer):
        func()
    elapsed = time.perf_counter() - start
    text = buffer.getvalue().rstrip() + f"\n\n[elapsed: {elapsed:.1f}s]\n"
    (RESULTS / f"full_{name}.txt").write_text(text)
    print(f"{name}: done in {elapsed:.1f}s", flush=True)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--skip-power", action="store_true")
    args = parser.parse_args()

    from repro.experiments import (
        fig4_activity,
        fig4_synthetic,
        section3_flu,
        section44_running_example,
        table1_activity,
        table2_runtime,
        table3_power,
    )

    capture("section44_running_example", section44_running_example.main)
    capture("section3_flu", section3_flu.main)
    capture("fig4_synthetic", fig4_synthetic.main)
    capture("fig4_activity", fig4_activity.main)
    capture("table1_activity", table1_activity.main)
    if not args.skip_power:
        capture("table3_power", table3_power.main)
        capture("table2_runtime", table2_runtime.main)
    print("all full-profile experiments recorded under results/")


if __name__ == "__main__":
    sys.exit(main())
