"""Unit tests for the Lipschitz query layer."""

import numpy as np
import pytest

from repro.core.queries import (
    CountQuery,
    MeanQuery,
    RelativeFrequencyHistogram,
    ScalarQuery,
    StateFrequencyQuery,
    SumQuery,
)
from repro.exceptions import ValidationError


class TestStateFrequency:
    def test_value(self):
        query = StateFrequencyQuery(1, 5)
        assert query(np.array([1, 0, 1, 1, 0])) == pytest.approx(0.6)

    def test_lipschitz(self):
        assert StateFrequencyQuery(0, 100).lipschitz == pytest.approx(0.01)

    def test_lipschitz_is_tight(self):
        """Changing one record changes the output by exactly 1/n."""
        query = StateFrequencyQuery(1, 4)
        base = np.array([0, 0, 0, 0])
        flipped = base.copy()
        flipped[2] = 1
        assert abs(query(flipped) - query(base)) == pytest.approx(query.lipschitz)

    def test_size_check(self):
        query = StateFrequencyQuery(1, 5)
        with pytest.raises(ValidationError):
            query(np.array([1, 0]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            StateFrequencyQuery(0, 0)


class TestRelativeFrequencyHistogram:
    def test_value(self):
        query = RelativeFrequencyHistogram(3, 4)
        np.testing.assert_allclose(query(np.array([0, 1, 1, 2])), [0.25, 0.5, 0.25])

    def test_sums_to_one(self):
        query = RelativeFrequencyHistogram(4, 10)
        data = np.array([0, 1, 2, 3, 0, 1, 2, 3, 0, 0])
        np.testing.assert_allclose(query(data).sum(), 1.0)

    def test_lipschitz_two_over_n(self):
        assert RelativeFrequencyHistogram(4, 50).lipschitz == pytest.approx(0.04)

    def test_lipschitz_is_tight(self):
        query = RelativeFrequencyHistogram(3, 5)
        base = np.array([0, 0, 1, 2, 2])
        changed = base.copy()
        changed[0] = 1
        l1 = np.abs(query(changed) - query(base)).sum()
        assert l1 == pytest.approx(query.lipschitz)

    def test_output_dim(self):
        assert RelativeFrequencyHistogram(7, 5).output_dim == 7


class TestCountAndSum:
    def test_count_default_sums(self):
        assert CountQuery()(np.array([1, 0, 1])) == 2.0

    def test_count_with_predicate(self):
        query = CountQuery(lambda x: x >= 2)
        assert query(np.array([0, 2, 3])) == 2.0

    def test_sum_clips_to_range(self):
        query = SumQuery(0.0, 1.0)
        assert query(np.array([0.5, 2.0, -1.0])) == pytest.approx(0.5 + 1.0 + 0.0)

    def test_sum_lipschitz(self):
        assert SumQuery(-1.0, 3.0).lipschitz == pytest.approx(4.0)

    def test_sum_rejects_bad_range(self):
        with pytest.raises(ValidationError):
            SumQuery(1.0, 1.0)


class TestMean:
    def test_value_and_lipschitz(self):
        query = MeanQuery(0.0, 10.0, 4)
        assert query(np.array([0.0, 10.0, 5.0, 5.0])) == pytest.approx(5.0)
        assert query.lipschitz == pytest.approx(2.5)

    def test_size_check(self):
        with pytest.raises(ValidationError):
            MeanQuery(0.0, 1.0, 3)(np.array([0.5]))


class TestScalarQuery:
    def test_wraps_function(self):
        query = ScalarQuery(lambda x: float(x.max()), lipschitz=1.0)
        assert query(np.array([3, 1, 4])) == 4.0

    def test_requires_positive_lipschitz(self):
        with pytest.raises(ValidationError):
            ScalarQuery(lambda x: 0.0, lipschitz=0.0)

    def test_describe_mentions_constant(self):
        query = ScalarQuery(lambda x: 0.0, lipschitz=2.0)
        assert "L=2" in query.describe()
