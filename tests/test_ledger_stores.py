"""Conformance of every :class:`~repro.service.stores.LedgerStore` backend.

One parametrized suite: whatever the backend (in-memory dict, JSON file,
SQLite), a store must provide exclusive read-modify-write transactions,
abandon changes on exception, expose lock-free-safe peeks, and isolate
tenants.  The cross-process guarantees get their own hammering in
``tests/test_ledger_concurrency.py``; this file is the functional floor."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ValidationError
from repro.service.stores import (
    InMemoryLedgerStore,
    JSONFileLedgerStore,
    SQLiteLedgerStore,
    ledger_store_from_path,
)

BACKENDS = ("memory", "json", "sqlite")


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    if request.param == "memory":
        built = InMemoryLedgerStore()
    elif request.param == "json":
        built = JSONFileLedgerStore(tmp_path / "ledgers.json")
    else:
        built = SQLiteLedgerStore(tmp_path / "ledgers.sqlite")
    yield built
    built.close()


def test_absent_tenant_reads_none(store):
    assert store.peek("ghost") is None
    assert store.tenants() == []
    with store.transact("ghost") as txn:
        assert txn.state is None
    # A transaction that never assigned state created nothing.
    assert store.peek("ghost") is None


def test_create_read_update(store):
    with store.transact("acme") as txn:
        txn.state = {"n": 1, "nested": {"values": [1.5, 2.5]}}
    assert store.peek("acme") == {"n": 1, "nested": {"values": [1.5, 2.5]}}
    with store.transact("acme") as txn:
        txn.state["n"] += 1
    assert store.peek("acme")["n"] == 2
    assert store.tenants() == ["acme"]


def test_exception_abandons_changes(store):
    with store.transact("acme") as txn:
        txn.state = {"n": 1}
    with pytest.raises(RuntimeError):
        with store.transact("acme") as txn:
            txn.state["n"] = 99
            raise RuntimeError("refused")
    assert store.peek("acme") == {"n": 1}


def test_tenants_are_isolated(store):
    with store.transact("a") as txn:
        txn.state = {"who": "a"}
    with store.transact("b") as txn:
        txn.state = {"who": "b"}
    assert store.tenants() == ["a", "b"]
    assert store.peek("a") == {"who": "a"}
    assert store.peek("b") == {"who": "b"}


def test_peek_returns_a_copy(store):
    with store.transact("acme") as txn:
        txn.state = {"n": 1}
    snapshot = store.peek("acme")
    snapshot["n"] = 999
    assert store.peek("acme")["n"] == 1


def test_threaded_increments_never_lost(store):
    """The transactional core: 8 threads x 25 increments on one counter
    must total exactly 200 — any lost update means the read-modify-write
    cycle was not exclusive."""
    with store.transact("counter") as txn:
        txn.state = {"n": 0}
    errors: list = []

    def bump() -> None:
        try:
            for _ in range(25):
                with store.transact("counter") as txn:
                    txn.state["n"] += 1
        except BaseException as error:  # pragma: no cover - regression only
            errors.append(error)

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert store.peek("counter")["n"] == 200


def test_json_store_corrupt_file_refused(tmp_path):
    path = tmp_path / "ledgers.json"
    path.write_text("{not json")
    store = JSONFileLedgerStore(path)
    with pytest.raises(ValidationError, match="corrupt"):
        store.peek("acme")


def test_json_store_survives_missing_file(tmp_path):
    store = JSONFileLedgerStore(tmp_path / "sub" / "ledgers.json")
    assert store.peek("acme") is None
    with store.transact("acme") as txn:
        txn.state = {"n": 1}
    assert store.peek("acme") == {"n": 1}


def test_sqlite_store_persists_across_instances(tmp_path):
    path = tmp_path / "ledgers.sqlite"
    first = SQLiteLedgerStore(path)
    with first.transact("acme") as txn:
        txn.state = {"n": 7}
    first.close()
    second = SQLiteLedgerStore(path)
    try:
        assert second.peek("acme") == {"n": 7}
    finally:
        second.close()


@pytest.mark.parametrize(
    "path, expected",
    [
        (None, InMemoryLedgerStore),
        ("ledgers.sqlite", SQLiteLedgerStore),
        ("ledgers.sqlite3", SQLiteLedgerStore),
        ("ledgers.db", SQLiteLedgerStore),
        ("ledgers.json", JSONFileLedgerStore),
        ("ledgers", JSONFileLedgerStore),
    ],
)
def test_store_from_path_dispatch(tmp_path, path, expected):
    store = ledger_store_from_path(
        None if path is None else tmp_path / path
    )
    try:
        assert isinstance(store, expected)
    finally:
        store.close()


# -- close(): idempotent, safe mid-transact ---------------------------------
def test_close_is_idempotent(store):
    store.close()
    store.close()  # second close must be a no-op, not an error


def test_closed_durable_store_refuses_new_transactions(store):
    if isinstance(store, InMemoryLedgerStore):
        pytest.skip("the in-memory store has nothing to close")
    store.close()
    with pytest.raises(ValidationError, match="closed"):
        with store.transact("acme"):
            pass


def test_close_during_transact_lets_the_commit_finish(store):
    """close() racing an in-flight transaction: the transaction commits
    (its atomicity is the whole point), only *new* ones are refused."""
    if isinstance(store, InMemoryLedgerStore):
        pytest.skip("the in-memory store has nothing to close")
    with store.transact("acme") as txn:
        txn.state = {"n": 1}
        store.close()  # mid-transaction: must not poison the commit
    with pytest.raises(ValidationError, match="closed"):
        with store.transact("acme"):
            pass
    # The commit landed: a fresh store on the same path sees it.
    if isinstance(store, SQLiteLedgerStore):
        reborn = SQLiteLedgerStore(store.path)
    else:
        reborn = JSONFileLedgerStore(store.path)
    try:
        assert reborn.peek("acme") == {"n": 1}
    finally:
        reborn.close()


def test_sqlite_close_from_another_thread_waits_for_commit(tmp_path):
    store = SQLiteLedgerStore(tmp_path / "ledgers.sqlite")
    entered = threading.Event()
    release = threading.Event()

    def writer() -> None:
        with store.transact("acme") as txn:
            txn.state = {"n": 7}
            entered.set()
            release.wait(timeout=10)

    thread = threading.Thread(target=writer)
    thread.start()
    assert entered.wait(timeout=10)
    closer = threading.Thread(target=store.close)
    closer.start()
    release.set()
    thread.join(timeout=10)
    closer.join(timeout=10)
    # The writer's commit survived the concurrent close.
    reborn = SQLiteLedgerStore(tmp_path / "ledgers.sqlite")
    try:
        assert reborn.peek("acme") == {"n": 7}
    finally:
        reborn.close()


def test_json_close_never_strands_the_lock_sidecar(tmp_path):
    store = JSONFileLedgerStore(tmp_path / "ledgers.json")
    with store.transact("acme") as txn:
        txn.state = {"n": 1}
        store.close()
    # Another store (process) on the same path can transact immediately —
    # the per-transaction inter-process lock was released, not stranded.
    other = JSONFileLedgerStore(tmp_path / "ledgers.json", lock_timeout=2.0)
    try:
        with other.transact("acme") as txn:
            txn.state["n"] += 1
        assert other.peek("acme") == {"n": 2}
    finally:
        other.close()
