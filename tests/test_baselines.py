"""Unit tests for the DP, GroupDP and GK16 baselines."""

import numpy as np
import pytest

from repro.baselines.dp import EntryDPMechanism, IndividualDPMechanism
from repro.baselines.gk16 import GK16Mechanism, chain_influence_matrix
from repro.baselines.group_dp import GroupDPMechanism
from repro.core.queries import RelativeFrequencyHistogram, StateFrequencyQuery
from repro.data.datasets import TimeSeriesDataset
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import NotApplicableError, ValidationError


class TestEntryDP:
    def test_scale_is_lipschitz_over_epsilon(self):
        mech = EntryDPMechanism(2.0)
        query = StateFrequencyQuery(1, 100)
        assert mech.noise_scale(query, np.zeros(100, dtype=int)) == pytest.approx(
            0.01 / 2.0
        )


class TestIndividualDP:
    def test_sensitivity_equal_sizes(self):
        """m participants of equal size: sensitivity 2/m."""
        mech = IndividualDPMechanism(1.0, [100] * 40)
        assert mech.sensitivity() == pytest.approx(2.0 / 40)

    def test_sensitivity_dominated_by_largest(self):
        mech = IndividualDPMechanism(1.0, [10, 10, 80])
        assert mech.sensitivity() == pytest.approx(2 * 80 / 100)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            IndividualDPMechanism(1.0, [])

    def test_expected_error_shrinks_with_group_size(self):
        """Table 1's DP row: smaller cohorts have larger error."""
        small = IndividualDPMechanism(1.0, [100] * 16).sensitivity()
        large = IndividualDPMechanism(1.0, [100] * 40).sensitivity()
        assert small > large


class TestGroupDP:
    def test_single_chain_group_is_whole_series(self):
        mech = GroupDPMechanism(1.0)
        data = TimeSeriesDataset.from_sequence(np.zeros(100, dtype=int), 2)
        query = StateFrequencyQuery(0, 100)
        # L * M / eps = (1/100) * 100 / 1 = 1: the "error about 1" the paper
        # quotes for eps=1 on the synthetic chain.
        assert mech.noise_scale(query, data) == pytest.approx(1.0)

    def test_segments_bound_group_size(self):
        mech = GroupDPMechanism(1.0)
        data = TimeSeriesDataset([np.zeros(60, dtype=int), np.zeros(40, dtype=int)], 2)
        query = RelativeFrequencyHistogram(2, 100)
        assert mech.noise_scale(query, data) == pytest.approx((2 / 100) * 60)

    def test_raw_arrays_supported(self):
        mech = GroupDPMechanism(2.0)
        query = StateFrequencyQuery(0, 10)
        assert mech.noise_scale(query, np.zeros(10, dtype=int)) == pytest.approx(0.5)

    def test_epsilon_scaling(self):
        data = TimeSeriesDataset.from_sequence(np.zeros(50, dtype=int), 2)
        query = StateFrequencyQuery(0, 50)
        assert GroupDPMechanism(0.2).noise_scale(query, data) == pytest.approx(
            5 * GroupDPMechanism(1.0).noise_scale(query, data)
        )


class TestGK16InfluenceMatrix:
    def test_tridiagonal_structure(self):
        chain = MarkovChain([0.5, 0.5], [[0.6, 0.4], [0.4, 0.6]])
        gamma = chain_influence_matrix(chain, 6)
        for i in range(6):
            for j in range(6):
                if abs(i - j) > 1:
                    assert gamma[i, j] == 0.0
                elif abs(i - j) == 1:
                    assert gamma[i, j] > 0.0

    def test_weak_correlation_small_influence(self):
        near_iid = MarkovChain([0.5, 0.5], [[0.51, 0.49], [0.49, 0.51]])
        gamma = chain_influence_matrix(near_iid, 5)
        assert gamma.max() < 0.05

    def test_strong_correlation_large_influence(self):
        sticky = MarkovChain([0.5, 0.5], [[0.95, 0.05], [0.05, 0.95]])
        gamma = chain_influence_matrix(sticky, 5)
        assert gamma.max() > 0.5

    def test_single_node_no_influence(self):
        chain = MarkovChain([0.5, 0.5], [[0.6, 0.4], [0.4, 0.6]])
        assert chain_influence_matrix(chain, 1).max() == 0.0


class TestGK16Mechanism:
    def test_applicable_for_weak_correlation(self):
        family = IntervalChainFamily(0.45, grid_step=0.05)
        mech = GK16Mechanism(family, 1.0, length=100)
        assert mech.is_applicable()

    def test_not_applicable_for_strong_correlation(self):
        """The dashed-line region of Figure 4: rho >= 1 for wide families."""
        family = IntervalChainFamily(0.1, grid_step=0.1)
        mech = GK16Mechanism(family, 1.0, length=100)
        assert not mech.is_applicable()
        with pytest.raises(NotApplicableError):
            mech.noise_scale(StateFrequencyQuery(1, 100), np.zeros(100, dtype=int))

    def test_applicability_epsilon_independent(self):
        """The paper: 'the position of this line does not change with eps'."""
        family = IntervalChainFamily(0.2, grid_step=0.1)
        flags = {
            eps: GK16Mechanism(family, eps, length=100).is_applicable()
            for eps in (0.2, 1.0, 5.0)
        }
        assert len(set(flags.values())) == 1

    def test_noise_increases_with_rho(self):
        weak = GK16Mechanism(IntervalChainFamily(0.45, grid_step=0.05), 1.0, length=100)
        stronger = GK16Mechanism(IntervalChainFamily(0.42, grid_step=0.02), 1.0, length=100)
        query = StateFrequencyQuery(1, 100)
        data = np.zeros(100, dtype=int)
        assert stronger.noise_scale(query, data) > weak.noise_scale(query, data)

    def test_amplification_formula(self):
        chain = MarkovChain([0.5, 0.5], [[0.55, 0.45], [0.45, 0.55]])
        mech = GK16Mechanism(chain, 1.0, length=50)
        rho = mech.rho(50)
        assert mech.amplification(50) == pytest.approx((1 + rho) / (1 - rho))

    def test_sticky_activity_like_chain_not_applicable(self):
        """Real sticky chains (self-loops ~0.99) violate the spectral
        condition — the paper's N/A entries in Tables 1-3."""
        matrix = np.full((4, 4), 0.01 / 3) + np.eye(4) * (0.99 - 0.01 / 3)
        sticky = MarkovChain([0.25, 0.25, 0.25, 0.25], matrix)
        mech = GK16Mechanism(sticky.with_stationary_initial(), 1.0, length=200)
        assert not mech.is_applicable()
