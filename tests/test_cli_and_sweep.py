"""Tests for the CLI entry point and the epsilon-sweep API."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.core.mqm_chain import MQMExact
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain


class TestEpsilonSweep:
    @pytest.fixture
    def mechanism(self):
        chain = MarkovChain([0.6, 0.4], [[0.9, 0.1], [0.2, 0.8]]).with_stationary_initial()
        return MQMExact(FiniteChainFamily([chain]), 1.0, max_window=60)

    def test_with_epsilon_shares_tables(self, mechanism):
        base = mechanism.sigma_max(500)
        clone = mechanism.with_epsilon(2.0)
        assert clone._table_cache is mechanism._table_cache
        assert clone.epsilon == 2.0
        # Same epsilon through the clone reproduces the base sigma.
        assert mechanism.with_epsilon(1.0).sigma_max(500) == pytest.approx(base)

    def test_sweep_matches_individual_instances(self, mechanism):
        sweep = mechanism.sigma_sweep(500, (0.5, 1.0, 5.0))
        chain = next(iter(mechanism.family.chains()))
        for eps, sigma in sweep.items():
            fresh = MQMExact(FiniteChainFamily([chain]), eps, max_window=60)
            assert sigma == pytest.approx(fresh.sigma_max(500), rel=1e-12)

    def test_sweep_monotone_in_epsilon(self, mechanism):
        sweep = mechanism.sigma_sweep(500, (0.2, 1.0, 5.0))
        assert sweep[0.2] > sweep[1.0] > sweep[5.0]

    def test_clone_preserves_flags(self):
        chain = MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]])
        mech = MQMExact(
            FiniteChainFamily([chain]), 1.0, max_window=40, restrict_support=False
        )
        clone = mech.with_epsilon(2.0)
        assert clone.max_window == 40
        assert clone.restrict_support is False


class TestCli:
    def test_info(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "pufferfish-repro" in out
        assert "fig4_synthetic" in out

    def test_verify_passes(self, capsys):
        assert cli_main(["verify", "--length", "4"]) == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_single_experiment(self, capsys):
        assert cli_main(["experiments", "section3_flu"]) == 0
        out = capsys.readouterr().out
        assert "Wasserstein bound" in out

    def test_running_example_experiment(self, capsys):
        assert cli_main(["experiments", "section44_running_example"]) == 0
        out = capsys.readouterr().out
        assert "13.02" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["experiments", "bogus"])
