"""Regression: rebuilding a Rényi accountant from its audit trail must not
drop mechanism-supplied RDP curves.

The bug: trail records used to store only ``epsilon``, so a
``RenyiAccountant(records=old.records)`` rebuild re-priced every release at
the conservative *pure-release* curve.  For Gaussian MQM releases (whose
own curve is far cheaper at moderate orders) the rebuilt ledger then showed
a **larger** ``eps(delta)`` than the live accountant that served the
releases — a restarted service would refuse work the budget actually
allows, and a rebuilt stream would stop at a strictly earlier index.

The fix serializes each release's curve values over the order grid into
the trail record (``rdp_orders`` / ``rdp_values``); the rebuild re-applies
them in the exact identity-grouped summation order, so every comparison
below is bit-identical (``==``, not ``approx``)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import GaussianMarkovQuiltMechanism
from repro.core.accounting import (
    RenyiAccountant,
    accountant_from_state,
    pure_rdp_curve,
)
from repro.core.queries import CountQuery
from repro.distributions.structured import hub_and_spoke_network
from repro.exceptions import BudgetExhaustedError, PrivacyParameterError
from repro.serving import PrivacyEngine

DELTA = 1e-5
EPSILON = 0.4
BUDGET = 6.0


@pytest.fixture()
def gaussian_workload():
    network = hub_and_spoke_network(3, 2)
    data = np.ones(len(network.nodes))
    return GaussianMarkovQuiltMechanism([network], EPSILON, delta=DELTA), data, CountQuery()


def _drain(mechanism, data, query, accountant):
    """Stream until the budget refuses; returns (accountant, stop_index)."""
    engine = PrivacyEngine(mechanism, accountant=accountant, rng=0)
    with engine.stream(data, query, block_size=32) as session:
        with pytest.raises(BudgetExhaustedError) as excinfo:
            while True:
                next(session)
    assert excinfo.value.n_completed == session.n_yielded
    return engine.accountant, session.n_yielded


def test_trail_records_carry_gaussian_curves(gaussian_workload):
    mechanism, data, query = gaussian_workload
    acc = RenyiAccountant(budget=BUDGET, delta=DELTA)
    PrivacyEngine(mechanism, accountant=acc, rng=0).release_repeated(data, query, 5)
    record = acc.records[0]
    assert record.rdp_orders == acc.orders
    values = np.asarray(record.rdp_values)
    orders = np.asarray(acc.orders, dtype=float)
    # The stored values are the mechanism's own curve evaluated on the
    # accountant's grid — not the conservative pure-release curve the
    # buggy rebuild used to substitute (the two genuinely differ here, so
    # dropping the curve would change the ledger).
    assert np.array_equal(values, mechanism.rdp_curve(orders))
    assert not np.allclose(values, pure_rdp_curve(EPSILON, orders))


def test_pickle_rebuild_bit_identical_eps(gaussian_workload):
    mechanism, data, query = gaussian_workload
    live, _ = _drain(mechanism, data, query, RenyiAccountant(budget=BUDGET, delta=DELTA))

    rebuilt = RenyiAccountant(
        budget=BUDGET,
        delta=DELTA,
        records=pickle.loads(pickle.dumps(live.records)),
    )
    # Bit-identical, not approximately equal: the rebuild repeats the exact
    # identity-grouped float summation the live accountant performed.
    assert rebuilt.total_epsilon() == live.total_epsilon()
    assert np.array_equal(rebuilt._rdp, live._rdp)
    assert rebuilt.remaining() == live.remaining()


def test_rebuilt_stream_stops_at_identical_index(gaussian_workload):
    mechanism, data, query = gaussian_workload
    live, stop_index = _drain(
        mechanism, data, query, RenyiAccountant(budget=BUDGET, delta=DELTA)
    )
    assert stop_index > 0

    # A fresh budget drained through a rebuilt-from-trail accountant must
    # stop at exactly the same index — the regression had it stopping
    # strictly earlier (pure-curve re-pricing).
    prefix = RenyiAccountant(
        budget=BUDGET,
        delta=DELTA,
        records=pickle.loads(pickle.dumps(live.records[: stop_index // 2])),
    )
    engine = PrivacyEngine(mechanism, accountant=prefix, rng=1)
    with engine.stream(data, query, block_size=32) as session:
        with pytest.raises(BudgetExhaustedError):
            while True:
                next(session)
    assert len(prefix) == stop_index

    # And the continuation refuses exactly where the live one does.
    with pytest.raises(BudgetExhaustedError):
        prefix.record(EPSILON, quilt_signature=live.records[0].quilt_signature,
                      rdp_curve=mechanism.rdp_curve)


def test_state_dict_round_trip_bit_identical(gaussian_workload):
    mechanism, data, query = gaussian_workload
    live, _ = _drain(mechanism, data, query, RenyiAccountant(budget=BUDGET, delta=DELTA))

    import json

    state = json.loads(json.dumps(live.state_dict()))
    restored = accountant_from_state(state)
    assert isinstance(restored, RenyiAccountant)
    assert restored.total_epsilon() == live.total_epsilon()
    assert np.array_equal(restored._rdp, live._rdp)
    assert len(restored) == len(live)
    # The restored ledger refuses the same next release.
    with pytest.raises(BudgetExhaustedError):
        restored.record(
            EPSILON,
            quilt_signature=live.records[0].quilt_signature if live.records else None,
            rdp_curve=mechanism.rdp_curve,
        )


def test_trailless_state_round_trip(gaussian_workload):
    """audit_trail=False ledgers (O(1) aggregates) round-trip too — the
    stored running curve, not the trail, is the source of truth."""
    mechanism, data, query = gaussian_workload
    acc = RenyiAccountant(budget=BUDGET, delta=DELTA, audit_trail=False)
    PrivacyEngine(mechanism, accountant=acc, rng=0).release_repeated(data, query, 7)
    assert acc.records == []
    restored = accountant_from_state(acc.state_dict())
    assert restored.total_epsilon() == acc.total_epsilon()
    assert len(restored) == 7


def test_rebuild_rejects_mismatched_order_grid(gaussian_workload):
    """Stored curve values are meaningless on a different grid; rebuilding
    with one must refuse loudly rather than re-price silently."""
    mechanism, data, query = gaussian_workload
    acc = RenyiAccountant(budget=BUDGET, delta=DELTA)
    PrivacyEngine(mechanism, accountant=acc, rng=0).release_repeated(data, query, 3)
    with pytest.raises(PrivacyParameterError, match="order grid"):
        RenyiAccountant(
            budget=BUDGET,
            delta=DELTA,
            orders=(2.0, 4.0, 8.0, float("inf")),
            records=pickle.loads(pickle.dumps(acc.records)),
        )


def test_pure_release_trail_stays_curveless():
    """Laplace MQM releases carry no curve: epsilon alone reproduces the
    cost, so their trail records stay lean (None fields) and still rebuild
    bit-identically."""
    acc = RenyiAccountant(budget=5.0, delta=DELTA)
    acc.record_many(4, 0.3, quilt_signature=("n", ("a", "b")))
    record = acc.records[0]
    assert record.rdp_orders is None and record.rdp_values is None
    rebuilt = RenyiAccountant(
        budget=5.0, delta=DELTA, records=pickle.loads(pickle.dumps(acc.records))
    )
    assert rebuilt.total_epsilon() == acc.total_epsilon()
    assert np.array_equal(rebuilt._rdp, acc._rdp)
