"""Unit tests for the Pufferfish framework containers."""

import pytest

from repro.core.framework import (
    PufferfishInstantiation,
    Secret,
    SecretPair,
    entrywise_instantiation,
    entrywise_pairs,
    entrywise_secrets,
)
from repro.core.models import TabularDataModel
from repro.exceptions import ValidationError


def two_record_model():
    return TabularDataModel([(0, 0), (0, 1), (1, 1)], [0.5, 0.25, 0.25])


class TestSecret:
    def test_describe_default(self):
        assert Secret(2, 1).describe() == "X_2 = 1"

    def test_describe_label(self):
        assert Secret(0, 1, label="Alice has flu").describe() == "Alice has flu"

    def test_rejects_negative_index(self):
        with pytest.raises(ValidationError):
            Secret(-1, 0)

    def test_hashable_and_equal(self):
        assert Secret(1, 2) == Secret(1, 2)
        assert len({Secret(1, 2), Secret(1, 2), Secret(1, 3)}) == 2


class TestSecretPair:
    def test_rejects_identical_secrets(self):
        with pytest.raises(ValidationError):
            SecretPair(Secret(0, 1), Secret(0, 1))

    def test_describe(self):
        pair = SecretPair(Secret(0, 0), Secret(0, 1))
        assert "X_0 = 0" in pair.describe()


class TestEntrywiseSets:
    def test_secret_count(self):
        assert len(entrywise_secrets(3, 4)) == 12

    def test_pair_count(self):
        # n * C(k, 2) unordered pairs.
        assert len(entrywise_pairs(3, 4)) == 3 * 6

    def test_pairs_within_record(self):
        for pair in entrywise_pairs(2, 2):
            assert pair.left.index == pair.right.index
            assert pair.left.value != pair.right.value


class TestInstantiation:
    def test_requires_pairs(self):
        with pytest.raises(ValidationError):
            PufferfishInstantiation([], [], [two_record_model()])

    def test_requires_models(self):
        pair = SecretPair(Secret(0, 0), Secret(0, 1))
        with pytest.raises(ValidationError):
            PufferfishInstantiation([], [pair], [])

    def test_collects_secrets_from_pairs(self):
        pair = SecretPair(Secret(0, 0), Secret(0, 1))
        inst = PufferfishInstantiation([], [pair], [two_record_model()])
        assert Secret(0, 0) in inst.secrets
        assert Secret(0, 1) in inst.secrets

    def test_admissible_pairs_drop_zero_probability(self):
        model = TabularDataModel([(0, 0), (0, 1)], [0.5, 0.5])  # record 0 always 0
        inst = entrywise_instantiation(2, 2, [model])
        admissible = list(inst.admissible_pairs(model))
        assert all(pair.left.index == 1 for pair in admissible)

    def test_entrywise_instantiation_shape(self):
        inst = entrywise_instantiation(2, 2, [two_record_model()])
        assert len(inst.pairs) == 2
        assert len(inst.models) == 1
