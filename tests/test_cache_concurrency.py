"""Concurrency hammering of the merge-on-write JSON calibration cache.

The lost-update race these tests target: two writers that each read the
store, then each atomically replace it, silently drop whichever side
replaced first.  ``JSONFileCache`` closes it with an exclusive ``fcntl``
lock on a sidecar held across every read-merge-replace cycle; these tests
hammer the store from many threads (each with its *own* backend instance,
so the per-instance thread lock cannot serialize them) and from a second
interpreter process, then assert no entry was lost and the file never held
corrupt JSON.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.serving.cache import CalibrationCache, InMemoryLRUCache, JSONFileCache

N_THREADS = 8
KEYS_PER_WRITER = 20

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Inline program for a second OS process sharing the cache file: writes
#: KEYS_PER_WRITER entries under a given prefix, one put per entry.
_SUBPROCESS_WRITER = """
import sys
from repro.serving.cache import JSONFileCache

path, prefix, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
backend = JSONFileCache(path)
for i in range(count):
    backend.put(f"{prefix}-{i}", {"scale": float(i), "writer": prefix})
"""


def _payload(writer: str, i: int) -> dict:
    return {"scale": float(i), "writer": writer}


def _write_keys(path: Path, prefix: str, errors: list) -> None:
    try:
        # A private backend instance per thread: the interesting interleaving
        # is between *instances*, whose only coordination is the file lock.
        backend = JSONFileCache(path)
        for i in range(KEYS_PER_WRITER):
            backend.put(f"{prefix}-{i}", _payload(prefix, i))
    except BaseException as error:  # pragma: no cover - only on regression
        errors.append(error)


def _read_store(path: Path) -> dict:
    text = path.read_text()
    store = json.loads(text)  # raises on corrupt JSON — part of the assertion
    assert isinstance(store, dict)
    return store


def test_threaded_writers_lose_no_entries(tmp_path):
    path = tmp_path / "calibrations.json"
    errors: list = []
    threads = [
        threading.Thread(target=_write_keys, args=(path, f"t{t}", errors))
        for t in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    store = _read_store(path)
    expected = {f"t{t}-{i}" for t in range(N_THREADS) for i in range(KEYS_PER_WRITER)}
    assert set(store) == expected
    for t in range(N_THREADS):
        for i in range(KEYS_PER_WRITER):
            assert store[f"t{t}-{i}"] == _payload(f"t{t}", i)


def test_second_process_and_threads_lose_no_entries(tmp_path):
    path = tmp_path / "calibrations.json"
    process = subprocess.Popen(
        [sys.executable, "-c", _SUBPROCESS_WRITER, str(path), "proc", str(KEYS_PER_WRITER)],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    errors: list = []
    threads = [
        threading.Thread(target=_write_keys, args=(path, f"t{t}", errors))
        for t in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert process.wait(timeout=120) == 0
    assert not errors
    store = _read_store(path)
    expected = {f"t{t}-{i}" for t in range(4) for i in range(KEYS_PER_WRITER)}
    expected |= {f"proc-{i}" for i in range(KEYS_PER_WRITER)}
    assert set(store) == expected


def test_get_miss_picks_up_entries_from_another_process(tmp_path):
    path = tmp_path / "calibrations.json"
    backend = JSONFileCache(path)  # constructed before the file exists
    backend.put("mine", {"scale": 1.0})
    subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_WRITER, str(path), "theirs", "1"],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        check=True,
        timeout=120,
    )
    # The other process's entry was written after our last read; the miss
    # path must re-read the changed file instead of answering from memory.
    assert backend.get("theirs-0") == {"scale": 0.0, "writer": "theirs"}
    assert backend.get("mine") == {"scale": 1.0}


def test_get_does_not_reread_unchanged_file(tmp_path):
    path = tmp_path / "calibrations.json"
    backend = JSONFileCache(path)
    backend.put("a", {"scale": 1.0})
    stat_before = backend._stat()
    assert backend.get("missing") is None
    # A miss on an unchanged file answers from memory — no write, no re-read
    # bookkeeping churn.
    assert backend._stat() == stat_before
    assert backend._disk_stat == stat_before


@pytest.mark.skipif(sys.platform == "win32", reason="fcntl sidecar is POSIX-only")
def test_lock_sidecar_is_created_next_to_the_store(tmp_path):
    path = tmp_path / "nested" / "calibrations.json"
    JSONFileCache(path).put("a", {"scale": 1.0})
    assert (tmp_path / "nested" / "calibrations.json.lock").exists()
    assert _read_store(path) == {"a": {"scale": 1.0}}


def test_interleaved_backends_agree_with_merge_semantics(tmp_path):
    """Two live backends alternating puts both converge to the union."""
    path = tmp_path / "calibrations.json"
    left = JSONFileCache(path)
    right = JSONFileCache(path)
    for i in range(10):
        left.put(f"left-{i}", _payload("left", i))
        right.put(f"right-{i}", _payload("right", i))
    store = _read_store(path)
    expected = {f"left-{i}" for i in range(10)} | {f"right-{i}" for i in range(10)}
    assert set(store) == expected
    # The last writer merged everything it saw, so its memory view is the
    # union too; the other side catches up via the miss path.
    assert right.get("left-9") == _payload("left", 9)
    assert left.get("right-9") == _payload("right", 9)


# ---------------------------------------------------------------------------
# Payload aliasing: a caller mutating what a backend handed out (or what it
# handed in) must never corrupt the stored entry.  The warm-start path feeds
# the payload's nested "state" dict straight into mechanism.warm_start, so
# without boundary copies the first tenant's mutation would poison every
# later tenant's calibration.
# ---------------------------------------------------------------------------

_NESTED = {"scale": 1.0, "state": {"sigmas": [1.0, 2.0], "order": ["a", "b"]}}


@pytest.fixture(params=["memory", "file"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryLRUCache()
    return JSONFileCache(tmp_path / "calibrations.json")


def test_mutating_a_hit_does_not_corrupt_the_entry(backend):
    backend.put("k", json.loads(json.dumps(_NESTED)))
    first = backend.get("k")
    first["scale"] = 99.0
    first["state"]["sigmas"].append(666.0)
    first["state"]["order"].clear()
    # A second hit sees the original payload, not the first caller's edits.
    assert backend.get("k") == _NESTED


def test_mutating_the_put_argument_does_not_corrupt_the_entry(backend):
    payload = json.loads(json.dumps(_NESTED))
    backend.put("k", payload)
    payload["state"]["sigmas"].append(666.0)
    payload["scale"] = -1.0
    assert backend.get("k") == _NESTED


def test_two_hits_never_share_mutable_state(backend):
    backend.put("k", json.loads(json.dumps(_NESTED)))
    first = backend.get("k")
    second = backend.get("k")
    assert first == second
    assert first["state"] is not second["state"]
    assert first["state"]["sigmas"] is not second["state"]["sigmas"]


# ---------------------------------------------------------------------------
# Hit/miss statistics: the engine shares one CalibrationCache across service
# worker threads, so the counters must be mutated under their lock — an
# unlocked `+= 1` read-modify-write silently drops increments under load.
# ---------------------------------------------------------------------------


def test_hit_miss_counters_are_exact_under_thread_hammering():
    import numpy as np

    from repro.core.markov_quilt import MarkovQuiltMechanism
    from repro.core.queries import CountQuery
    from repro.distributions.structured import hub_and_spoke_network

    network = hub_and_spoke_network(2, 1)
    data = np.ones(len(network.nodes))
    query = CountQuery()
    cache = CalibrationCache()
    cache.get_or_compute(MarkovQuiltMechanism([network], 0.5), query, data)

    per_thread = 200
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    errors: list = []
    try:

        def hammer():
            try:
                # Private mechanism per thread (content-identical key) so the
                # only shared mutable state is the cache and its counters.
                mechanism = MarkovQuiltMechanism([network], 0.5)
                for _ in range(per_thread):
                    _, was_hit = cache.get_or_compute(mechanism, query, data)
                    assert was_hit
            except BaseException as error:  # pragma: no cover - regression
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        sys.setswitchinterval(previous)
    assert not errors
    assert cache.misses == 1
    assert cache.hits == N_THREADS * per_thread
    assert cache.hit_rate == cache.hits / (cache.hits + cache.misses)
    cache.reset_stats()
    assert (cache.hits, cache.misses, cache.hit_rate) == (0, 0, 0.0)
