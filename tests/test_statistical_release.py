"""Statistical audits of the release distribution (deterministic seeds).

Marked ``@pytest.mark.statistical``: these tests draw thousands of releases
and test distribution-level claims — slower than unit tests and run as
their own CI lane.  All randomness is seeded, so outcomes are reproducible;
thresholds still leave comfortable margins over the seeded statistics.

Three claims are audited:

* **Empirical epsilon** — a likelihood-ratio count test on neighboring
  datasets (one record changed): for the half-line region at the midpoint
  of the two true answers — the asymptotically optimal distinguishing
  region for Laplace noise — the empirical log-ratio of acceptance
  frequencies must respect the mechanism's epsilon.  (MQM's released value
  distribution shifts by at most ``L <= L * sigma * eps`` per record
  change, since every sigma candidate score is at least ``1/eps``.)
* **Noise law** — the noise actually added by the batched engine path is
  Laplace with the calibrated scale (one-sample Kolmogorov–Smirnov against
  the closed-form CDF; no SciPy needed).
* **Batched = serial** — the batched vectorized draw equals sequential
  per-release draws bit-for-bit under the same generator seed, and matches
  the serial path's *distribution* under different seeds (two-sample KS).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.mqm_chain import MQMExact
from repro.core.queries import StateFrequencyQuery
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.serving import PrivacyEngine

EPSILON = 1.0
LENGTH = 30
N_SAMPLES = 4000

pytestmark = pytest.mark.statistical


@pytest.fixture(scope="module")
def workload():
    chain = MarkovChain(
        [0.5, 0.5], [[0.6, 0.4], [0.4, 0.6]]
    ).with_stationary_initial()
    family = FiniteChainFamily([chain])
    query = StateFrequencyQuery(1, LENGTH)
    data = np.zeros(LENGTH, dtype=int)
    return family, query, data


def laplace_cdf(x: np.ndarray, loc: float, scale: float) -> np.ndarray:
    z = (np.asarray(x, dtype=float) - loc) / scale
    return np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))


def ks_one_sample(samples: np.ndarray, cdf_values_at_sorted: np.ndarray) -> float:
    """KS statistic of ``samples`` against a continuous CDF (evaluated at
    the sorted samples)."""
    n = samples.size
    grid = np.arange(1, n + 1) / n
    return float(
        np.max(
            np.maximum(
                grid - cdf_values_at_sorted, cdf_values_at_sorted - (grid - 1.0 / n)
            )
        )
    )


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> float:
    values = np.concatenate([a, b])
    values.sort(kind="mergesort")
    cdf_a = np.searchsorted(np.sort(a), values, side="right") / a.size
    cdf_b = np.searchsorted(np.sort(b), values, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def _noise_samples(engine: PrivacyEngine, data, query, n: int, seed: int) -> np.ndarray:
    releases = engine.release_repeated(data, query, n, rng=seed)
    return np.array([r.value - r.true_value for r in releases])


def test_batched_noise_is_bit_identical_to_sequential(workload):
    family, query, data = workload
    mechanism = MQMExact(family, EPSILON, max_window=LENGTH)
    calibration = mechanism.calibrate(query, data)
    engine = PrivacyEngine(MQMExact(family, EPSILON, max_window=LENGTH))
    batch = engine.release_batch([(data, query)] * 64, rng=7)
    gen = np.random.default_rng(7)
    sequential = [
        mechanism.release(data, query, gen, calibration=calibration) for _ in range(64)
    ]
    assert [r.value for r in batch] == [r.value for r in sequential]


def test_release_noise_matches_calibrated_laplace_ks(workload):
    family, query, data = workload
    engine = PrivacyEngine(MQMExact(family, EPSILON, max_window=LENGTH))
    scale = engine.calibrate(query, data).scale
    noise = np.sort(_noise_samples(engine, data, query, N_SAMPLES, seed=11))
    statistic = ks_one_sample(noise, laplace_cdf(noise, 0.0, scale))
    # 1.63 / sqrt(n) is the alpha = 0.01 critical value; seeds are fixed, so
    # this is a deterministic regression gate with real statistical meaning.
    assert statistic < 1.63 / math.sqrt(N_SAMPLES)


def test_batched_draws_match_serial_distribution_ks(workload):
    family, query, data = workload
    mechanism = MQMExact(family, EPSILON, max_window=LENGTH)
    calibration = mechanism.calibrate(query, data)
    engine = PrivacyEngine(MQMExact(family, EPSILON, max_window=LENGTH))
    batched = _noise_samples(engine, data, query, N_SAMPLES, seed=13)
    gen = np.random.default_rng(17)
    serial = np.array(
        [
            release.value - release.true_value
            for release in (
                mechanism.release(data, query, gen, calibration=calibration)
                for _ in range(N_SAMPLES)
            )
        ]
    )
    statistic = ks_two_sample(batched, serial)
    # alpha = 0.01 two-sample critical value: 1.63 * sqrt(2 / n).
    assert statistic < 1.63 * math.sqrt(2.0 / N_SAMPLES)


def _empirical_epsilon(
    values_d: np.ndarray, values_d_prime: np.ndarray, midpoint: float
) -> float:
    p = float(np.mean(values_d >= midpoint))
    q = float(np.mean(values_d_prime >= midpoint))
    assert 0.0 < p < 1.0 and 0.0 < q < 1.0
    return abs(math.log(q / p))


@pytest.mark.parametrize("batched", [False, True], ids=["release", "release_batch"])
def test_empirical_epsilon_audit_on_neighboring_datasets(workload, batched):
    family, query, data = workload
    neighbor = data.copy()
    neighbor[LENGTH // 2] = 1  # one record changed
    engine_d = PrivacyEngine(MQMExact(family, EPSILON, max_window=LENGTH))
    engine_n = PrivacyEngine(MQMExact(family, EPSILON, max_window=LENGTH))
    if batched:
        rel_d = engine_d.release_batch([(data, query)] * N_SAMPLES, rng=23)
        rel_n = engine_n.release_batch([(neighbor, query)] * N_SAMPLES, rng=29)
    else:
        rel_d = [engine_d.release(data, query, rng=r) for r in range(N_SAMPLES)]
        rel_n = [
            engine_n.release(neighbor, query, rng=N_SAMPLES + r)
            for r in range(N_SAMPLES)
        ]
    values_d = np.array([r.value for r in rel_d])
    values_n = np.array([r.value for r in rel_n])
    midpoint = (float(query(data)) + float(query(neighbor))) / 2.0

    eps_hat = _empirical_epsilon(values_d, values_n, midpoint)
    # The guarantee: the log acceptance ratio of ANY region is at most
    # epsilon.  Slack covers binomial sampling error at n = 4000 (a few
    # standard errors of ~0.016 each side).
    assert eps_hat <= EPSILON + 0.10

    # Power check: the midpoint half-line achieves (asymptotically) the true
    # separation |F(D) - F(D')| / scale = 1 / sigma, so the audit is not
    # vacuously passing because the estimator collapsed to zero.
    sigma = engine_d.calibrate(query, data).details["sigma_max"]
    assert abs(eps_hat - 1.0 / sigma) < 0.12
