"""Unit tests for distribution distances: TV, KL, max-divergence, W-infinity."""

import numpy as np
import pytest

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.metrics import (
    kl_divergence,
    max_divergence,
    renyi_divergence,
    symmetric_max_divergence,
    total_variation,
    w_infinity,
)
from repro.exceptions import ValidationError


def dist(mapping):
    return DiscreteDistribution.from_mapping(mapping)


class TestTotalVariation:
    def test_identical_is_zero(self):
        d = dist({0: 0.5, 1: 0.5})
        assert total_variation(d, d) == 0.0

    def test_disjoint_is_one(self):
        a = dist({0: 1.0})
        b = dist({1: 1.0})
        assert total_variation(a, b) == 1.0

    def test_known_value(self):
        a = dist({0: 0.5, 1: 0.5})
        b = dist({0: 0.25, 1: 0.75})
        np.testing.assert_allclose(total_variation(a, b), 0.25)

    def test_symmetry(self):
        a = dist({0: 0.3, 1: 0.7})
        b = dist({0: 0.6, 2: 0.4})
        assert total_variation(a, b) == total_variation(b, a)


class TestMaxDivergence:
    def test_definition_2_3_example(self):
        """The worked example under Definition 2.3: D_inf = log 2."""
        p = dist({1: 1 / 3, 2: 1 / 2, 3: 1 / 6})
        q = dist({1: 1 / 2, 2: 1 / 4, 3: 1 / 4})
        np.testing.assert_allclose(max_divergence(p, q), np.log(2.0))

    def test_identical_is_zero(self):
        p = dist({0: 0.4, 1: 0.6})
        np.testing.assert_allclose(max_divergence(p, p), 0.0, atol=1e-12)

    def test_support_violation_is_infinite(self):
        p = dist({0: 0.5, 1: 0.5})
        q = dist({0: 1.0})
        assert max_divergence(p, q) == float("inf")
        assert np.isfinite(max_divergence(q, p))

    def test_symmetric_version(self):
        p = dist({0: 0.9, 1: 0.1})
        q = dist({0: 0.5, 1: 0.5})
        expected = max(max_divergence(p, q), max_divergence(q, p))
        assert symmetric_max_divergence(p, q) == expected


class TestKL:
    def test_zero_for_identical(self):
        p = dist({0: 0.5, 1: 0.5})
        np.testing.assert_allclose(kl_divergence(p, p), 0.0, atol=1e-12)

    def test_infinite_outside_support(self):
        p = dist({0: 0.5, 1: 0.5})
        q = dist({0: 1.0})
        assert kl_divergence(p, q) == float("inf")

    def test_bounded_by_max_divergence(self):
        p = dist({0: 0.7, 1: 0.3})
        q = dist({0: 0.4, 1: 0.6})
        assert kl_divergence(p, q) <= max_divergence(p, q) + 1e-12


class TestRenyi:
    def test_order_one_matches_kl(self):
        p = dist({0: 0.7, 1: 0.3})
        q = dist({0: 0.4, 1: 0.6})
        np.testing.assert_allclose(renyi_divergence(p, q, 1.0), kl_divergence(p, q))

    def test_order_inf_matches_max_divergence(self):
        p = dist({0: 0.7, 1: 0.3})
        q = dist({0: 0.4, 1: 0.6})
        np.testing.assert_allclose(
            renyi_divergence(p, q, float("inf")), max_divergence(p, q)
        )

    def test_monotone_in_order(self):
        p = dist({0: 0.7, 1: 0.3})
        q = dist({0: 0.4, 1: 0.6})
        values = [renyi_divergence(p, q, alpha) for alpha in (0.5, 2.0, 8.0, 64.0)]
        assert all(v1 <= v2 + 1e-12 for v1, v2 in zip(values, values[1:]))

    def test_rejects_non_positive_order(self):
        p = dist({0: 1.0})
        with pytest.raises(ValidationError):
            renyi_divergence(p, p, 0.0)


class TestWInfinity:
    def test_identical_is_zero(self):
        d = dist({0: 0.5, 2: 0.5})
        assert w_infinity(d, d) == 0.0

    def test_point_masses(self):
        assert w_infinity(
            DiscreteDistribution.point_mass(0.0), DiscreteDistribution.point_mass(3.5)
        ) == pytest.approx(3.5)

    def test_shift_law(self):
        """W_inf(mu, mu + c) = |c| (monotone coupling shifts every atom)."""
        mu = dist({0: 0.2, 1: 0.5, 4: 0.3})
        for c in (0.5, 2.0, -1.5):
            np.testing.assert_allclose(w_infinity(mu, mu.shift(c)), abs(c))

    def test_symmetry(self):
        a = dist({0: 0.3, 1: 0.7})
        b = dist({0: 0.6, 3: 0.4})
        np.testing.assert_allclose(w_infinity(a, b), w_infinity(b, a))

    def test_flu_example_distance_is_two(self):
        """Section 3.1: the conditional infected-count laws are W_inf = 2."""
        mu0 = DiscreteDistribution(
            np.arange(5, dtype=float), np.array([0.2, 0.225, 0.5, 0.075, 0.0])
        )
        mu1 = DiscreteDistribution(
            np.arange(5, dtype=float), np.array([0.0, 0.075, 0.5, 0.225, 0.2])
        )
        np.testing.assert_allclose(w_infinity(mu0, mu1), 2.0)

    def test_triangle_inequality(self):
        a = dist({0: 0.5, 1: 0.5})
        b = dist({0: 0.2, 2: 0.8})
        c = dist({1: 0.9, 5: 0.1})
        assert w_infinity(a, c) <= w_infinity(a, b) + w_infinity(b, c) + 1e-12

    def test_bounded_by_support_range(self):
        a = dist({0: 0.5, 4: 0.5})
        b = dist({1: 1.0})
        assert w_infinity(a, b) <= 4.0

    def test_dominates_mean_difference(self):
        """W_inf >= W_1 >= |mean difference|."""
        a = dist({0: 0.5, 2: 0.5})
        b = dist({1: 0.25, 3: 0.75})
        assert w_infinity(a, b) >= abs(a.mean() - b.mean()) - 1e-12
